//! Execution engines for sealed programs.
//!
//! [`run`] is the production engine: the analogue of jumping into Vcode's
//! generated native code. The program was validated once when sealed, so the
//! dispatch loop does no per-instruction validation beyond memory bounds
//! checks (which a correct conversion program never trips; they exist so a
//! malformed *message* cannot cause undefined behaviour).
//!
//! [`run_reference`] is a deliberately naive engine used only in tests: it
//! recomputes everything defensively on every step. Differential testing of
//! the two engines (plus the optimizer, see [`crate::opt`]) is the crate's
//! core correctness argument.

use std::fmt;

use crate::asm::Program;
use crate::inst::{Inst, Reg, Space, NUM_REGS};

/// Runtime failures. With a validated program these can only be caused by
/// buffers smaller than the program expects (e.g. a truncated message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A memory access fell outside the buffer.
    OutOfBounds {
        /// Program counter of the faulting instruction.
        pc: usize,
        /// Faulting byte address (space-relative).
        addr: u64,
        /// Access length.
        len: u64,
        /// Which space was accessed.
        space: Space,
        /// Size of that space's buffer.
        space_len: usize,
    },
    /// The step budget was exhausted (runaway loop).
    StepLimit {
        /// The budget that was exceeded.
        limit: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfBounds { pc, addr, len, space, space_len } => write!(
                f,
                "out-of-bounds access at pc {pc}: {len} bytes at {addr} in {space:?} (size {space_len})"
            ),
            ExecError::StepLimit { limit } => write!(f, "step limit {limit} exceeded"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Execution statistics, used by benchmarks to report dynamic instruction
/// counts (the paper's "raw number of operations" discussion in §4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Dynamically executed instruction count.
    pub executed: u64,
}

/// Default step budget. Conversion programs execute O(record size)
/// instructions; 2^32 steps is far beyond any record this workspace builds.
pub const DEFAULT_STEP_LIMIT: u64 = 1 << 32;

#[inline]
fn addr_of(regs: &[u64; NUM_REGS], base: Reg, disp: i32) -> u64 {
    (regs[base.0 as usize]).wrapping_add(disp as i64 as u64)
}

#[inline]
fn check_range(
    pc: usize,
    addr: u64,
    len: u64,
    space: Space,
    space_len: usize,
) -> Result<usize, ExecError> {
    let end = addr.checked_add(len);
    match end {
        Some(e) if e <= space_len as u64 => Ok(addr as usize),
        _ => Err(ExecError::OutOfBounds {
            pc,
            addr,
            len,
            space,
            space_len,
        }),
    }
}

#[inline]
fn load(buf: &[u8], at: usize, w: u8) -> u64 {
    // Little-endian register order; `at..at+w` is pre-checked.
    match w {
        1 => buf[at] as u64,
        2 => u16::from_le_bytes([buf[at], buf[at + 1]]) as u64,
        4 => u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]]) as u64,
        _ => u64::from_le_bytes([
            buf[at],
            buf[at + 1],
            buf[at + 2],
            buf[at + 3],
            buf[at + 4],
            buf[at + 5],
            buf[at + 6],
            buf[at + 7],
        ]),
    }
}

#[inline]
fn store(buf: &mut [u8], at: usize, w: u8, v: u64) {
    match w {
        1 => buf[at] = v as u8,
        2 => buf[at..at + 2].copy_from_slice(&(v as u16).to_le_bytes()),
        4 => buf[at..at + 4].copy_from_slice(&(v as u32).to_le_bytes()),
        _ => buf[at..at + 8].copy_from_slice(&v.to_le_bytes()),
    }
}

#[inline]
fn bswap(v: u64, w: u8) -> u64 {
    match w {
        2 => (v as u16).swap_bytes() as u64,
        4 => (v as u32).swap_bytes() as u64,
        _ => v.swap_bytes(),
    }
}

#[inline]
fn sext(v: u64, from: u8) -> u64 {
    let shift = 64 - (from as u32) * 8;
    (((v << shift) as i64) >> shift) as u64
}

/// Run a sealed program against a source and destination buffer with the
/// default step budget. `init` sets registers before execution (typically
/// the [`crate::inst::abi`] cursors).
pub fn run(
    prog: &Program,
    src: &[u8],
    dst: &mut [u8],
    init: &[(Reg, u64)],
) -> Result<Stats, ExecError> {
    run_with_limit(prog, src, dst, init, DEFAULT_STEP_LIMIT)
}

/// [`run`] with an explicit step budget.
pub fn run_with_limit(
    prog: &Program,
    src: &[u8],
    dst: &mut [u8],
    init: &[(Reg, u64)],
    limit: u64,
) -> Result<Stats, ExecError> {
    let mut regs = [0u64; NUM_REGS];
    for (r, v) in init {
        regs[r.0 as usize] = *v;
    }
    let insts = prog.insts();
    let mut pc = 0usize;
    let mut executed = 0u64;
    loop {
        executed += 1;
        if executed > limit {
            return Err(ExecError::StepLimit { limit });
        }
        // Targets were validated at seal time; pc is always in range.
        let inst = insts[pc];
        pc += 1;
        match inst {
            Inst::Ld {
                w,
                r,
                space,
                base,
                disp,
            } => {
                let addr = addr_of(&regs, base, disp);
                let buf: &[u8] = match space {
                    Space::Src => src,
                    Space::Dst => dst,
                };
                let at = check_range(pc - 1, addr, w as u64, space, buf.len())?;
                regs[r.0 as usize] = load(buf, at, w);
            }
            Inst::St { w, base, disp, r } => {
                let addr = addr_of(&regs, base, disp);
                let at = check_range(pc - 1, addr, w as u64, Space::Dst, dst.len())?;
                store(dst, at, w, regs[r.0 as usize]);
            }
            Inst::Bswap { w, r } => {
                let slot = &mut regs[r.0 as usize];
                *slot = bswap(*slot, w);
            }
            Inst::SExt { from, r } => {
                let slot = &mut regs[r.0 as usize];
                *slot = sext(*slot, from);
            }
            Inst::MovImm { r, v } => regs[r.0 as usize] = v,
            Inst::Mov { r, from } => regs[r.0 as usize] = regs[from.0 as usize],
            Inst::Add { r, a, b } => {
                regs[r.0 as usize] = regs[a.0 as usize].wrapping_add(regs[b.0 as usize])
            }
            Inst::AddImm { r, a, v } => {
                regs[r.0 as usize] = regs[a.0 as usize].wrapping_add(v as u64)
            }
            Inst::Sub { r, a, b } => {
                regs[r.0 as usize] = regs[a.0 as usize].wrapping_sub(regs[b.0 as usize])
            }
            Inst::And { r, a, b } => regs[r.0 as usize] = regs[a.0 as usize] & regs[b.0 as usize],
            Inst::Or { r, a, b } => regs[r.0 as usize] = regs[a.0 as usize] | regs[b.0 as usize],
            Inst::Slt { r, a, b } => {
                regs[r.0 as usize] =
                    ((regs[a.0 as usize] as i64) < (regs[b.0 as usize] as i64)) as u64
            }
            Inst::Sltu { r, a, b } => {
                regs[r.0 as usize] = (regs[a.0 as usize] < regs[b.0 as usize]) as u64
            }
            Inst::FltF64 { r, a, b } => {
                regs[r.0 as usize] =
                    (f64::from_bits(regs[a.0 as usize]) < f64::from_bits(regs[b.0 as usize])) as u64
            }
            Inst::SetEqZ { r, a } => regs[r.0 as usize] = (regs[a.0 as usize] == 0) as u64,
            Inst::CvtF32F64 { r } => {
                let slot = &mut regs[r.0 as usize];
                *slot = (f32::from_bits(*slot as u32) as f64).to_bits();
            }
            Inst::CvtF64F32 { r } => {
                let slot = &mut regs[r.0 as usize];
                *slot = (f64::from_bits(*slot) as f32).to_bits() as u64;
            }
            Inst::CvtI64F64 { r } => {
                let slot = &mut regs[r.0 as usize];
                *slot = ((*slot as i64) as f64).to_bits();
            }
            Inst::CvtF64I64 { r } => {
                let slot = &mut regs[r.0 as usize];
                *slot = (f64::from_bits(*slot) as i64) as u64;
            }
            Inst::Jmp { target } => pc = target as usize,
            Inst::Brnz { r, target } => {
                if regs[r.0 as usize] != 0 {
                    pc = target as usize;
                }
            }
            Inst::Brz { r, target } => {
                if regs[r.0 as usize] == 0 {
                    pc = target as usize;
                }
            }
            Inst::MemcpyImm {
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                len,
            } => {
                memcpy(
                    &regs,
                    pc - 1,
                    src,
                    dst,
                    src_base,
                    src_disp,
                    dst_base,
                    dst_disp,
                    len as u64,
                )?;
            }
            Inst::MemcpyReg {
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                len,
            } => {
                let n = regs[len.0 as usize];
                memcpy(
                    &regs,
                    pc - 1,
                    src,
                    dst,
                    src_base,
                    src_disp,
                    dst_base,
                    dst_disp,
                    n,
                )?;
            }
            Inst::MemsetZero { base, disp, len } => {
                let addr = addr_of(&regs, base, disp);
                let at = check_range(pc - 1, addr, len as u64, Space::Dst, dst.len())?;
                dst[at..at + len as usize].fill(0);
            }
            Inst::SwapMove {
                w,
                src_base,
                src_disp,
                dst_base,
                dst_disp,
            } => {
                let saddr = addr_of(&regs, src_base, src_disp);
                let daddr = addr_of(&regs, dst_base, dst_disp);
                let sat = check_range(pc - 1, saddr, w as u64, Space::Src, src.len())?;
                let dat = check_range(pc - 1, daddr, w as u64, Space::Dst, dst.len())?;
                swap_copy(src, sat, dst, dat, w);
            }
            Inst::SwapRun {
                w,
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                count,
            } => {
                let total = (w as u64) * (count as u64);
                let saddr = addr_of(&regs, src_base, src_disp);
                let daddr = addr_of(&regs, dst_base, dst_disp);
                let sat = check_range(pc - 1, saddr, total, Space::Src, src.len())?;
                let dat = check_range(pc - 1, daddr, total, Space::Dst, dst.len())?;
                swap_run(src, sat, dst, dat, w, count as usize);
            }
            Inst::Halt => return Ok(Stats { executed }),
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn memcpy(
    regs: &[u64; NUM_REGS],
    pc: usize,
    src: &[u8],
    dst: &mut [u8],
    src_base: Reg,
    src_disp: i32,
    dst_base: Reg,
    dst_disp: i32,
    len: u64,
) -> Result<(), ExecError> {
    let saddr = addr_of(regs, src_base, src_disp);
    let daddr = addr_of(regs, dst_base, dst_disp);
    let sat = check_range(pc, saddr, len, Space::Src, src.len())?;
    let dat = check_range(pc, daddr, len, Space::Dst, dst.len())?;
    let n = len as usize;
    dst[dat..dat + n].copy_from_slice(&src[sat..sat + n]);
    Ok(())
}

#[inline]
fn swap_copy(src: &[u8], sat: usize, dst: &mut [u8], dat: usize, w: u8) {
    match w {
        2 => {
            dst[dat] = src[sat + 1];
            dst[dat + 1] = src[sat];
        }
        4 => {
            let v = u32::from_le_bytes([src[sat], src[sat + 1], src[sat + 2], src[sat + 3]])
                .swap_bytes();
            dst[dat..dat + 4].copy_from_slice(&v.to_le_bytes());
        }
        _ => {
            let mut b = [0u8; 8];
            b.copy_from_slice(&src[sat..sat + 8]);
            let v = u64::from_le_bytes(b).swap_bytes();
            dst[dat..dat + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
}

/// Byte-swapping block copy: the op the optimizer emits for contiguous
/// arrays of same-width scalars. Bounds were checked by the caller, so the
/// inner loop is pure data movement (this is the "near memcpy" fast path).
fn swap_run(src: &[u8], sat: usize, dst: &mut [u8], dat: usize, w: u8, count: usize) {
    let total = count * w as usize;
    let s = &src[sat..sat + total];
    let d = &mut dst[dat..dat + total];
    match w {
        2 => {
            for (so, do_) in s.chunks_exact(2).zip(d.chunks_exact_mut(2)) {
                do_[0] = so[1];
                do_[1] = so[0];
            }
        }
        4 => {
            for (so, do_) in s.chunks_exact(4).zip(d.chunks_exact_mut(4)) {
                let v = u32::from_le_bytes([so[0], so[1], so[2], so[3]]).swap_bytes();
                do_.copy_from_slice(&v.to_le_bytes());
            }
        }
        _ => {
            for (so, do_) in s.chunks_exact(8).zip(d.chunks_exact_mut(8)) {
                let mut b = [0u8; 8];
                b.copy_from_slice(so);
                let v = u64::from_le_bytes(b).swap_bytes();
                do_.copy_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Execute a straight-line program whose memory footprint was proven by
/// [`crate::analysis::analyze`], with a **single** up-front bounds check
/// instead of one per access.
///
/// All registers start at zero (the analysis assumes it). Returns an error
/// if either buffer is smaller than the proven extents; after that check,
/// every access is in bounds by construction and uses unchecked indexing.
pub fn run_straightline(
    prog: &Program,
    extents: &crate::analysis::Extents,
    src: &[u8],
    dst: &mut [u8],
) -> Result<(), ExecError> {
    if src.len() < extents.src_needed {
        return Err(ExecError::OutOfBounds {
            pc: 0,
            addr: 0,
            len: extents.src_needed as u64,
            space: Space::Src,
            space_len: src.len(),
        });
    }
    if dst.len() < extents.dst_needed {
        return Err(ExecError::OutOfBounds {
            pc: 0,
            addr: 0,
            len: extents.dst_needed as u64,
            space: Space::Dst,
            space_len: dst.len(),
        });
    }
    debug_assert_eq!(
        prog.insts().len(),
        extents.inst_count,
        "extents from another program"
    );

    let mut regs = [0u64; NUM_REGS];
    for inst in prog.insts() {
        // Straight-line: every base register is provably zero, so addresses
        // are the (non-negative) displacements themselves.
        match *inst {
            Inst::Ld {
                w, r, space, disp, ..
            } => {
                let buf: &[u8] = match space {
                    Space::Src => src,
                    Space::Dst => dst,
                };
                let at = disp as usize;
                debug_assert!(at + w as usize <= buf.len());
                // SAFETY: analyze() bounded disp + w by the checked extents.
                regs[r.0 as usize] = unsafe { load_unchecked(buf, at, w) };
            }
            Inst::St { w, disp, r, .. } => {
                let at = disp as usize;
                debug_assert!(at + w as usize <= dst.len());
                // SAFETY: as above, for the destination extent.
                unsafe { store_unchecked(dst, at, w, regs[r.0 as usize]) };
            }
            Inst::Bswap { w, r } => regs[r.0 as usize] = bswap(regs[r.0 as usize], w),
            Inst::SExt { from, r } => regs[r.0 as usize] = sext(regs[r.0 as usize], from),
            Inst::MovImm { r, v } => regs[r.0 as usize] = v,
            Inst::Mov { r, from } => regs[r.0 as usize] = regs[from.0 as usize],
            Inst::Add { r, a, b } => {
                regs[r.0 as usize] = regs[a.0 as usize].wrapping_add(regs[b.0 as usize])
            }
            Inst::AddImm { r, a, v } => {
                regs[r.0 as usize] = regs[a.0 as usize].wrapping_add(v as u64)
            }
            Inst::Sub { r, a, b } => {
                regs[r.0 as usize] = regs[a.0 as usize].wrapping_sub(regs[b.0 as usize])
            }
            Inst::And { r, a, b } => regs[r.0 as usize] = regs[a.0 as usize] & regs[b.0 as usize],
            Inst::Or { r, a, b } => regs[r.0 as usize] = regs[a.0 as usize] | regs[b.0 as usize],
            Inst::Slt { r, a, b } => {
                regs[r.0 as usize] =
                    ((regs[a.0 as usize] as i64) < (regs[b.0 as usize] as i64)) as u64
            }
            Inst::Sltu { r, a, b } => {
                regs[r.0 as usize] = (regs[a.0 as usize] < regs[b.0 as usize]) as u64
            }
            Inst::FltF64 { r, a, b } => {
                regs[r.0 as usize] =
                    (f64::from_bits(regs[a.0 as usize]) < f64::from_bits(regs[b.0 as usize])) as u64
            }
            Inst::SetEqZ { r, a } => regs[r.0 as usize] = (regs[a.0 as usize] == 0) as u64,
            Inst::CvtF32F64 { r } => {
                regs[r.0 as usize] = (f32::from_bits(regs[r.0 as usize] as u32) as f64).to_bits()
            }
            Inst::CvtF64F32 { r } => {
                regs[r.0 as usize] = (f64::from_bits(regs[r.0 as usize]) as f32).to_bits() as u64
            }
            Inst::CvtI64F64 { r } => {
                regs[r.0 as usize] = ((regs[r.0 as usize] as i64) as f64).to_bits()
            }
            Inst::CvtF64I64 { r } => {
                regs[r.0 as usize] = (f64::from_bits(regs[r.0 as usize]) as i64) as u64
            }
            Inst::MemcpyImm {
                src_disp,
                dst_disp,
                len,
                ..
            } => {
                let (s, d, n) = (src_disp as usize, dst_disp as usize, len as usize);
                debug_assert!(s + n <= src.len() && d + n <= dst.len());
                // SAFETY: both ranges are within the checked extents.
                unsafe {
                    std::ptr::copy_nonoverlapping(src.as_ptr().add(s), dst.as_mut_ptr().add(d), n);
                }
            }
            Inst::MemsetZero { disp, len, .. } => {
                let (d, n) = (disp as usize, len as usize);
                debug_assert!(d + n <= dst.len());
                // SAFETY: within the checked destination extent.
                unsafe { std::ptr::write_bytes(dst.as_mut_ptr().add(d), 0, n) };
            }
            Inst::SwapMove {
                w,
                src_disp,
                dst_disp,
                ..
            } => {
                let (s, d) = (src_disp as usize, dst_disp as usize);
                debug_assert!(s + w as usize <= src.len() && d + w as usize <= dst.len());
                // SAFETY: within the checked extents.
                unsafe {
                    let v = bswap(load_unchecked(src, s, w), w);
                    store_unchecked(dst, d, w, v);
                }
            }
            Inst::SwapRun {
                w,
                src_disp,
                dst_disp,
                count,
                ..
            } => {
                let ws = w as usize;
                for i in 0..count as usize {
                    let (s, d) = (src_disp as usize + i * ws, dst_disp as usize + i * ws);
                    debug_assert!(s + ws <= src.len() && d + ws <= dst.len());
                    // SAFETY: the whole run is within the checked extents.
                    unsafe {
                        let v = bswap(load_unchecked(src, s, w), w);
                        store_unchecked(dst, d, w, v);
                    }
                }
            }
            Inst::Halt => break,
            Inst::Jmp { .. } | Inst::Brnz { .. } | Inst::Brz { .. } | Inst::MemcpyReg { .. } => {
                unreachable!("analyze() rejects control flow and runtime-length copies")
            }
        }
    }
    Ok(())
}

/// # Safety
/// `at + w <= buf.len()` must hold.
#[inline]
unsafe fn load_unchecked(buf: &[u8], at: usize, w: u8) -> u64 {
    let p = buf.as_ptr().add(at);
    match w {
        1 => *p as u64,
        2 => u16::from_le_bytes(*(p as *const [u8; 2])) as u64,
        4 => u32::from_le_bytes(*(p as *const [u8; 4])) as u64,
        _ => u64::from_le_bytes(*(p as *const [u8; 8])),
    }
}

/// # Safety
/// `at + w <= buf.len()` must hold.
#[inline]
unsafe fn store_unchecked(buf: &mut [u8], at: usize, w: u8, v: u64) {
    let p = buf.as_mut_ptr().add(at);
    match w {
        1 => *p = v as u8,
        2 => std::ptr::copy_nonoverlapping((v as u16).to_le_bytes().as_ptr(), p, 2),
        4 => std::ptr::copy_nonoverlapping((v as u32).to_le_bytes().as_ptr(), p, 4),
        _ => std::ptr::copy_nonoverlapping(v.to_le_bytes().as_ptr(), p, 8),
    }
}

/// Naive reference engine for differential testing: identical semantics to
/// [`run`], implemented with maximally defensive per-step code and none of
/// the block fast paths (fused ops are executed scalar by scalar).
pub fn run_reference(
    prog: &Program,
    src: &[u8],
    dst: &mut [u8],
    init: &[(Reg, u64)],
) -> Result<Stats, ExecError> {
    // Lower fused ops to scalar sequences and execute with the main engine
    // semantics but step-by-step. To keep the two engines genuinely
    // independent, this one interprets fused ops in place instead of using
    // the block helpers.
    let mut regs = [0u64; NUM_REGS];
    for (r, v) in init {
        regs[r.0 as usize] = *v;
    }
    let insts = prog.insts();
    let mut pc = 0usize;
    let mut executed = 0u64;
    loop {
        executed += 1;
        if executed > DEFAULT_STEP_LIMIT {
            return Err(ExecError::StepLimit {
                limit: DEFAULT_STEP_LIMIT,
            });
        }
        let inst = insts[pc];
        pc += 1;
        match inst {
            Inst::SwapMove {
                w,
                src_base,
                src_disp,
                dst_base,
                dst_disp,
            } => {
                scalar_swap_move(
                    &regs,
                    pc - 1,
                    src,
                    dst,
                    w,
                    src_base,
                    src_disp,
                    dst_base,
                    dst_disp,
                )?;
            }
            Inst::SwapRun {
                w,
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                count,
            } => {
                for i in 0..count as i64 {
                    let off = (i * w as i64) as i32;
                    scalar_swap_move(
                        &regs,
                        pc - 1,
                        src,
                        dst,
                        w,
                        src_base,
                        src_disp + off,
                        dst_base,
                        dst_disp + off,
                    )?;
                }
            }
            Inst::MemcpyImm {
                src_base,
                src_disp,
                dst_base,
                dst_disp,
                len,
            } => {
                for i in 0..len as i64 {
                    let saddr = addr_of(&regs, src_base, src_disp + i as i32);
                    let daddr = addr_of(&regs, dst_base, dst_disp + i as i32);
                    let sat = check_range(pc - 1, saddr, 1, Space::Src, src.len())?;
                    let dat = check_range(pc - 1, daddr, 1, Space::Dst, dst.len())?;
                    dst[dat] = src[sat];
                }
            }
            Inst::Halt => return Ok(Stats { executed }),
            // Everything else shares one-step semantics with the fast engine;
            // run it through a single-instruction program. Branches are
            // handled locally.
            other => {
                match other {
                    Inst::Jmp { target } => {
                        pc = target as usize;
                        continue;
                    }
                    Inst::Brnz { r, target } => {
                        if regs[r.0 as usize] != 0 {
                            pc = target as usize;
                        }
                        continue;
                    }
                    Inst::Brz { r, target } => {
                        if regs[r.0 as usize] == 0 {
                            pc = target as usize;
                        }
                        continue;
                    }
                    _ => {}
                }
                step_simple(&mut regs, pc - 1, other, src, dst)?;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn scalar_swap_move(
    regs: &[u64; NUM_REGS],
    pc: usize,
    src: &[u8],
    dst: &mut [u8],
    w: u8,
    src_base: Reg,
    src_disp: i32,
    dst_base: Reg,
    dst_disp: i32,
) -> Result<(), ExecError> {
    let saddr = addr_of(regs, src_base, src_disp);
    let daddr = addr_of(regs, dst_base, dst_disp);
    let sat = check_range(pc, saddr, w as u64, Space::Src, src.len())?;
    let dat = check_range(pc, daddr, w as u64, Space::Dst, dst.len())?;
    for i in 0..w as usize {
        dst[dat + i] = src[sat + w as usize - 1 - i];
    }
    Ok(())
}

fn step_simple(
    regs: &mut [u64; NUM_REGS],
    pc: usize,
    inst: Inst,
    src: &[u8],
    dst: &mut [u8],
) -> Result<(), ExecError> {
    match inst {
        Inst::Ld {
            w,
            r,
            space,
            base,
            disp,
        } => {
            let addr = addr_of(regs, base, disp);
            let buf: &[u8] = match space {
                Space::Src => src,
                Space::Dst => dst,
            };
            let at = check_range(pc, addr, w as u64, space, buf.len())?;
            let mut v = 0u64;
            for i in (0..w as usize).rev() {
                v = (v << 8) | buf[at + i] as u64;
            }
            regs[r.0 as usize] = v;
        }
        Inst::St { w, base, disp, r } => {
            let addr = addr_of(regs, base, disp);
            let at = check_range(pc, addr, w as u64, Space::Dst, dst.len())?;
            let mut v = regs[r.0 as usize];
            for i in 0..w as usize {
                dst[at + i] = v as u8;
                v >>= 8;
            }
        }
        Inst::Bswap { w, r } => regs[r.0 as usize] = bswap(regs[r.0 as usize], w),
        Inst::SExt { from, r } => regs[r.0 as usize] = sext(regs[r.0 as usize], from),
        Inst::MovImm { r, v } => regs[r.0 as usize] = v,
        Inst::Mov { r, from } => regs[r.0 as usize] = regs[from.0 as usize],
        Inst::Add { r, a, b } => {
            regs[r.0 as usize] = regs[a.0 as usize].wrapping_add(regs[b.0 as usize])
        }
        Inst::AddImm { r, a, v } => regs[r.0 as usize] = regs[a.0 as usize].wrapping_add(v as u64),
        Inst::Sub { r, a, b } => {
            regs[r.0 as usize] = regs[a.0 as usize].wrapping_sub(regs[b.0 as usize])
        }
        Inst::And { r, a, b } => regs[r.0 as usize] = regs[a.0 as usize] & regs[b.0 as usize],
        Inst::Or { r, a, b } => regs[r.0 as usize] = regs[a.0 as usize] | regs[b.0 as usize],
        Inst::Slt { r, a, b } => {
            regs[r.0 as usize] = ((regs[a.0 as usize] as i64) < (regs[b.0 as usize] as i64)) as u64
        }
        Inst::Sltu { r, a, b } => {
            regs[r.0 as usize] = (regs[a.0 as usize] < regs[b.0 as usize]) as u64
        }
        Inst::FltF64 { r, a, b } => {
            regs[r.0 as usize] =
                (f64::from_bits(regs[a.0 as usize]) < f64::from_bits(regs[b.0 as usize])) as u64
        }
        Inst::SetEqZ { r, a } => regs[r.0 as usize] = (regs[a.0 as usize] == 0) as u64,
        Inst::CvtF32F64 { r } => {
            regs[r.0 as usize] = (f32::from_bits(regs[r.0 as usize] as u32) as f64).to_bits()
        }
        Inst::CvtF64F32 { r } => {
            regs[r.0 as usize] = (f64::from_bits(regs[r.0 as usize]) as f32).to_bits() as u64
        }
        Inst::CvtI64F64 { r } => {
            regs[r.0 as usize] = ((regs[r.0 as usize] as i64) as f64).to_bits()
        }
        Inst::CvtF64I64 { r } => {
            regs[r.0 as usize] = (f64::from_bits(regs[r.0 as usize]) as i64) as u64
        }
        #[allow(clippy::manual_memcpy)] // the reference engine is deliberately naive
        Inst::MemcpyReg {
            src_base,
            src_disp,
            dst_base,
            dst_disp,
            len,
        } => {
            let n = regs[len.0 as usize];
            let saddr = addr_of(regs, src_base, src_disp);
            let daddr = addr_of(regs, dst_base, dst_disp);
            let sat = check_range(pc, saddr, n, Space::Src, src.len())?;
            let dat = check_range(pc, daddr, n, Space::Dst, dst.len())?;
            for i in 0..n as usize {
                dst[dat + i] = src[sat + i];
            }
        }
        Inst::MemsetZero { base, disp, len } => {
            let addr = addr_of(regs, base, disp);
            let at = check_range(pc, addr, len as u64, Space::Dst, dst.len())?;
            for b in &mut dst[at..at + len as usize] {
                *b = 0;
            }
        }
        Inst::Jmp { .. }
        | Inst::Brnz { .. }
        | Inst::Brz { .. }
        | Inst::MemcpyImm { .. }
        | Inst::SwapMove { .. }
        | Inst::SwapRun { .. }
        | Inst::Halt => unreachable!("handled by caller"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::inst::abi;

    fn both(prog: &Program, src: &[u8], dst_len: usize, init: &[(Reg, u64)]) -> (Vec<u8>, Vec<u8>) {
        let mut d1 = vec![0u8; dst_len];
        let mut d2 = vec![0u8; dst_len];
        run(prog, src, &mut d1, init).unwrap();
        run_reference(prog, src, &mut d2, init).unwrap();
        assert_eq!(d1, d2, "engines disagree");
        (d1, d2)
    }

    #[test]
    fn swap_move_scalar() {
        let mut a = Assembler::new();
        a.ld(4, abi::SCRATCH0, Space::Src, abi::SRC, 0);
        a.bswap(4, abi::SCRATCH0);
        a.st(4, abi::DST, 0, abi::SCRATCH0);
        let p = a.finish().unwrap();
        let (d, _) = both(&p, &[1, 2, 3, 4], 4, &[]);
        assert_eq!(d, vec![4, 3, 2, 1]);
    }

    #[test]
    fn sign_extension_after_swap_widens_correctly() {
        // Big-endian i16 = -2 (0xFF 0xFE on the wire) -> little-endian i64.
        let mut a = Assembler::new();
        a.ld(2, Reg(8), Space::Src, abi::SRC, 0);
        a.bswap(2, Reg(8));
        a.sext(2, Reg(8));
        a.st(8, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        let (d, _) = both(&p, &[0xFF, 0xFE], 8, &[]);
        assert_eq!(i64::from_le_bytes(d.try_into().unwrap()), -2);
    }

    #[test]
    fn float_narrowing() {
        // f64 0.5 little-endian on wire -> f32 little-endian.
        let mut a = Assembler::new();
        a.ld(8, Reg(8), Space::Src, abi::SRC, 0);
        a.cvt_f64_f32(Reg(8));
        a.st(4, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        let src = 0.5f64.to_bits().to_le_bytes();
        let (d, _) = both(&p, &src, 4, &[]);
        assert_eq!(f32::from_le_bytes(d.try_into().unwrap()), 0.5);
    }

    #[test]
    fn float_widening() {
        let mut a = Assembler::new();
        a.ld(4, Reg(8), Space::Src, abi::SRC, 0);
        a.cvt_f32_f64(Reg(8));
        a.st(8, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        let src = 2.25f32.to_bits().to_le_bytes();
        let (d, _) = both(&p, &src, 8, &[]);
        assert_eq!(f64::from_le_bytes(d.try_into().unwrap()), 2.25);
    }

    #[test]
    fn int_float_round_trip() {
        let mut a = Assembler::new();
        a.mov_imm(Reg(8), (-7i64) as u64);
        a.cvt_i64_f64(Reg(8));
        a.cvt_f64_i64(Reg(8));
        a.st(8, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        let (d, _) = both(&p, &[], 8, &[]);
        assert_eq!(i64::from_le_bytes(d.try_into().unwrap()), -7);
    }

    #[test]
    fn loop_copies_elements() {
        // Copy 5 u16s with byte swap, using a counted loop over cursors.
        let mut a = Assembler::new();
        let top = a.new_label();
        let done = a.new_label();
        a.mov_imm(Reg(9), 5);
        a.bind(top);
        a.brz(Reg(9), done);
        a.ld(2, Reg(8), Space::Src, abi::SRC, 0);
        a.bswap(2, Reg(8));
        a.st(2, abi::DST, 0, Reg(8));
        a.add_imm(abi::SRC, abi::SRC, 2);
        a.add_imm(abi::DST, abi::DST, 2);
        a.add_imm(Reg(9), Reg(9), -1);
        a.jmp(top);
        a.bind(done);
        a.halt();
        let p = a.finish().unwrap();
        let src: Vec<u8> = (0..10).collect();
        let (d, _) = both(&p, &src, 10, &[]);
        assert_eq!(d, vec![1, 0, 3, 2, 5, 4, 7, 6, 9, 8]);
    }

    #[test]
    fn memcpy_and_memset() {
        let mut a = Assembler::new();
        a.memcpy_imm(abi::SRC, 2, abi::DST, 1, 3);
        a.memset_zero(abi::DST, 0, 1);
        let p = a.finish().unwrap();
        let (d, _) = both(&p, &[9, 9, 7, 8, 9], 4, &[]);
        assert_eq!(d, vec![0, 7, 8, 9]);
    }

    #[test]
    fn memcpy_reg_runtime_length() {
        let mut a = Assembler::new();
        a.mov_imm(Reg(8), 4);
        a.memcpy_reg(abi::SRC, 0, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        let (d, _) = both(&p, &[1, 2, 3, 4, 5], 4, &[]);
        assert_eq!(d, vec![1, 2, 3, 4]);
    }

    #[test]
    fn fused_ops_match_scalar_semantics() {
        let p = Program::from_insts(vec![
            Inst::SwapMove {
                w: 4,
                src_base: abi::SRC,
                src_disp: 0,
                dst_base: abi::DST,
                dst_disp: 0,
            },
            Inst::SwapRun {
                w: 2,
                src_base: abi::SRC,
                src_disp: 4,
                dst_base: abi::DST,
                dst_disp: 4,
                count: 3,
            },
            Inst::Halt,
        ])
        .unwrap();
        let src: Vec<u8> = (1..=10).collect();
        let (d, _) = both(&p, &src, 10, &[]);
        assert_eq!(d, vec![4, 3, 2, 1, 6, 5, 8, 7, 10, 9]);
    }

    #[test]
    fn swap_run_all_widths() {
        for (w, count) in [(2u8, 7u32), (4, 5), (8, 3)] {
            let total = (w as usize) * (count as usize);
            let p = Program::from_insts(vec![
                Inst::SwapRun {
                    w,
                    src_base: abi::SRC,
                    src_disp: 0,
                    dst_base: abi::DST,
                    dst_disp: 0,
                    count,
                },
                Inst::Halt,
            ])
            .unwrap();
            let src: Vec<u8> = (0..total as u8).collect();
            let (d, _) = both(&p, &src, total, &[]);
            for c in 0..count as usize {
                for i in 0..w as usize {
                    assert_eq!(
                        d[c * w as usize + i],
                        src[c * w as usize + w as usize - 1 - i]
                    );
                }
            }
        }
    }

    #[test]
    fn out_of_bounds_reported_not_panicking() {
        let mut a = Assembler::new();
        a.ld(8, Reg(8), Space::Src, abi::SRC, 0);
        let p = a.finish().unwrap();
        let mut dst = vec![0u8; 8];
        let err = run(&p, &[1, 2, 3], &mut dst, &[]).unwrap_err();
        assert!(matches!(
            err,
            ExecError::OutOfBounds {
                space: Space::Src,
                ..
            }
        ));
        let err2 = run_reference(&p, &[1, 2, 3], &mut dst, &[]).unwrap_err();
        assert_eq!(err, err2);
    }

    #[test]
    fn negative_displacement_out_of_bounds() {
        let mut a = Assembler::new();
        a.ld(1, Reg(8), Space::Src, abi::SRC, -1);
        let p = a.finish().unwrap();
        let mut dst = vec![0u8; 1];
        assert!(matches!(
            run(&p, &[1], &mut dst, &[]),
            Err(ExecError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn negative_displacement_with_cursor_is_fine() {
        let mut a = Assembler::new();
        a.ld(1, Reg(8), Space::Src, abi::SRC, -1);
        a.st(1, abi::DST, 0, Reg(8));
        let p = a.finish().unwrap();
        let mut dst = vec![0u8; 1];
        run(&p, &[42, 7], &mut dst, &[(abi::SRC, 2)]).unwrap();
        assert_eq!(dst[0], 7);
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.jmp(top);
        let p = a.finish().unwrap();
        let mut dst = vec![];
        let err = run_with_limit(&p, &[], &mut dst, &[], 1000).unwrap_err();
        assert_eq!(err, ExecError::StepLimit { limit: 1000 });
    }

    #[test]
    fn alu_and_compare_ops() {
        let cases: &[(i64, i64)] = &[(3, 5), (5, 3), (-4, 4), (4, -4), (-7, -7), (0, 0)];
        for &(a, b) in cases {
            let mut asm = Assembler::new();
            asm.mov_imm(Reg(8), a as u64);
            asm.mov_imm(Reg(9), b as u64);
            asm.sub(Reg(10), Reg(8), Reg(9));
            asm.slt(Reg(11), Reg(8), Reg(9));
            asm.sltu(Reg(12), Reg(8), Reg(9));
            asm.set_eqz(Reg(13), Reg(10));
            asm.and(Reg(14), Reg(8), Reg(9));
            asm.or(Reg(15), Reg(8), Reg(9));
            asm.st(8, abi::DST, 0, Reg(10));
            asm.st(1, abi::DST, 8, Reg(11));
            asm.st(1, abi::DST, 9, Reg(12));
            asm.st(1, abi::DST, 10, Reg(13));
            asm.st(8, abi::DST, 16, Reg(14));
            asm.st(8, abi::DST, 24, Reg(15));
            let p = asm.finish().unwrap();
            let (d, _) = both(&p, &[], 32, &[]);
            assert_eq!(
                i64::from_le_bytes(d[0..8].try_into().unwrap()),
                a.wrapping_sub(b)
            );
            assert_eq!(d[8], (a < b) as u8, "slt {a} {b}");
            assert_eq!(d[9], ((a as u64) < (b as u64)) as u8, "sltu {a} {b}");
            assert_eq!(d[10], (a == b) as u8, "seqz {a} {b}");
            assert_eq!(
                u64::from_le_bytes(d[16..24].try_into().unwrap()),
                (a as u64) & (b as u64)
            );
            assert_eq!(
                u64::from_le_bytes(d[24..32].try_into().unwrap()),
                (a as u64) | (b as u64)
            );
        }
    }

    #[test]
    fn float_compare_op() {
        for (a, b, expect) in [
            (1.5f64, 2.5f64, 1u8),
            (2.5, 1.5, 0),
            (-1.0, 1.0, 1),
            (3.0, 3.0, 0),
            (f64::NAN, 1.0, 0),
            (1.0, f64::NAN, 0),
        ] {
            let mut asm = Assembler::new();
            asm.mov_imm(Reg(8), a.to_bits());
            asm.mov_imm(Reg(9), b.to_bits());
            asm.flt_f64(Reg(10), Reg(8), Reg(9));
            asm.st(1, abi::DST, 0, Reg(10));
            let p = asm.finish().unwrap();
            let (d, _) = both(&p, &[], 1, &[]);
            assert_eq!(d[0], expect, "{a} < {b}");
        }
    }

    #[test]
    fn straightline_engine_matches_checked_engine() {
        // A representative generated conversion: scalar conv + fused blocks.
        let mut a = Assembler::new();
        a.ld(4, Reg(8), Space::Src, abi::SRC, 0);
        a.bswap(4, Reg(8));
        a.sext(4, Reg(8));
        a.st(8, abi::DST, 0, Reg(8));
        a.memcpy_imm(abi::SRC, 4, abi::DST, 8, 6);
        a.memset_zero(abi::DST, 14, 2);
        a.swap_run(2, abi::SRC, 10, abi::DST, 16, 4);
        let p = a.finish().unwrap();
        let extents = crate::analysis::analyze(&p).unwrap();
        assert_eq!(extents.src_needed, 18);
        assert_eq!(extents.dst_needed, 24);

        let src: Vec<u8> = (0..18).map(|i| (i * 7 + 3) as u8).collect();
        let mut d1 = vec![0xAAu8; 24];
        let mut d2 = vec![0xAAu8; 24];
        run(&p, &src, &mut d1, &[]).unwrap();
        run_straightline(&p, &extents, &src, &mut d2).unwrap();
        assert_eq!(d1, d2);

        // Short buffers are rejected by the single up-front check.
        let mut short = vec![0u8; 10];
        assert!(matches!(
            run_straightline(&p, &extents, &src, &mut short),
            Err(ExecError::OutOfBounds {
                space: Space::Dst,
                ..
            })
        ));
        assert!(matches!(
            run_straightline(&p, &extents, &src[..4], &mut d2),
            Err(ExecError::OutOfBounds {
                space: Space::Src,
                ..
            })
        ));
    }

    #[test]
    fn stats_count_executed_instructions() {
        let mut a = Assembler::new();
        a.mov_imm(Reg(8), 1);
        a.mov_imm(Reg(9), 2);
        let p = a.finish().unwrap();
        let mut dst = vec![];
        let stats = run(&p, &[], &mut dst, &[]).unwrap();
        assert_eq!(stats.executed, 3); // 2 movs + halt
    }
}
