//! The CDR codec: precompiled marshal/unmarshal operation lists.

use std::fmt;

use pbio_types::arch::{ArchProfile, Endianness};
use pbio_types::error::TypeError;
use pbio_types::layout::{round_up, ConcreteType, Layout};
use pbio_types::prim;
use pbio_types::schema::{Schema, TypeDesc};

/// Errors from CDR marshalling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// Buffer too small for the operation.
    Truncated {
        /// What was happening.
        context: String,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// Schema could not be laid out or contains unsupported shapes.
    BadSchema(String),
    /// Malformed stream (bad header flag).
    BadStream(String),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::Truncated {
                context,
                need,
                have,
            } => {
                write!(f, "truncated while {context}: need {need}, have {have}")
            }
            CdrError::BadSchema(m) => write!(f, "bad schema: {m}"),
            CdrError::BadStream(m) => write!(f, "bad CDR stream: {m}"),
        }
    }
}

impl std::error::Error for CdrError {}

impl From<TypeError> for CdrError {
    fn from(e: TypeError) -> CdrError {
        CdrError::BadSchema(e.to_string())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Signed,
    Unsigned,
    Float,
    Byte,
}

#[derive(Debug, Clone)]
enum Op {
    /// One scalar: native (offset, width) <-> wire (aligned, canonical width).
    Scalar {
        off: usize,
        nw: u8,
        ww: u8,
        kind: Kind,
    },
    /// A string field (native descriptor at `off`).
    Str { off: usize },
    /// A sequence (var array): native descriptor at `off`, element ops with
    /// element-relative native offsets, native element stride.
    Seq {
        off: usize,
        stride: usize,
        elem: Vec<Op>,
    },
}

/// Size of the GIOP-style message header (flag byte + padding).
pub const HEADER_SIZE: usize = 4;

/// A per-(schema, architecture) CDR marshaller — the analogue of an IDL
/// compiler's generated stub for one machine.
pub struct CdrCodec {
    profile: ArchProfile,
    layout: Layout,
    ops: Vec<Op>,
}

impl CdrCodec {
    /// Compile the operation list for `schema` on `profile`.
    pub fn new(schema: &Schema, profile: &ArchProfile) -> Result<CdrCodec, CdrError> {
        let layout = Layout::of(schema, profile)?;
        let mut ops = Vec::new();
        for (decl, field) in schema.fields().iter().zip(layout.fields()) {
            flatten(&decl.ty, &field.ty, field.offset, &mut ops)?;
        }
        Ok(CdrCodec {
            profile: profile.clone(),
            layout,
            ops,
        })
    }

    /// The native layout this codec reads/writes.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Marshal one native record into a CDR message (header + packed body),
    /// written in this machine's byte order ("reader makes right").
    pub fn marshal(&self, native: &[u8]) -> Result<Vec<u8>, CdrError> {
        let mut out = Vec::with_capacity(HEADER_SIZE + self.layout.size());
        self.marshal_into(native, &mut out)?;
        Ok(out)
    }

    /// [`CdrCodec::marshal`] into a reusable buffer (cleared first).
    pub fn marshal_into(&self, native: &[u8], out: &mut Vec<u8>) -> Result<(), CdrError> {
        out.clear();
        out.resize(HEADER_SIZE, 0);
        out[0] = match self.profile.endianness {
            Endianness::Big => 0,
            Endianness::Little => 1,
        };
        marshal_ops(&self.ops, native, 0, self.profile.endianness, out)?;
        Ok(())
    }

    /// Unmarshal a CDR message into a native record image for this machine.
    /// Always copies — the stream is packed, the native layout is padded.
    pub fn unmarshal(&self, wire: &[u8]) -> Result<Vec<u8>, CdrError> {
        let mut out = Vec::new();
        self.unmarshal_into(wire, &mut out)?;
        Ok(out)
    }

    /// [`CdrCodec::unmarshal`] into a reusable buffer (cleared first).
    pub fn unmarshal_into(&self, wire: &[u8], out: &mut Vec<u8>) -> Result<(), CdrError> {
        if wire.len() < HEADER_SIZE {
            return Err(CdrError::Truncated {
                context: "reading header".into(),
                need: HEADER_SIZE,
                have: wire.len(),
            });
        }
        let se = match wire[0] {
            0 => Endianness::Big,
            1 => Endianness::Little,
            other => return Err(CdrError::BadStream(format!("bad byte-order flag {other}"))),
        };
        out.clear();
        out.resize(self.layout.size(), 0);
        let body = &wire[HEADER_SIZE..];
        let mut cursor = 0usize;
        unmarshal_ops(
            &self.ops,
            body,
            &mut cursor,
            se,
            out,
            0,
            self.profile.endianness,
        )?;
        Ok(())
    }

    /// Whether unmarshalling a message with this flag byte would need
    /// byte-swapping (false on homogeneous exchanges — reader-makes-right's
    /// one saving).
    pub fn needs_swap(&self, wire: &[u8]) -> bool {
        !wire.is_empty() && (wire[0] == 1) != (self.profile.endianness == Endianness::Little)
    }
}

/// Map a (logical, concrete) type pair to flat ops. Wire widths come from
/// the *logical* type (IDL-style, architecture-independent); native offsets
/// and widths from the concrete layout.
fn flatten(
    lty: &TypeDesc,
    cty: &ConcreteType,
    off: usize,
    ops: &mut Vec<Op>,
) -> Result<(), CdrError> {
    match (lty, cty) {
        (TypeDesc::Atom(atom), _) => {
            let (nw, kind) = match cty {
                ConcreteType::Int {
                    bytes,
                    signed: true,
                } => (*bytes, Kind::Signed),
                ConcreteType::Int {
                    bytes,
                    signed: false,
                } => (*bytes, Kind::Unsigned),
                ConcreteType::Float { bytes } => (*bytes, Kind::Float),
                ConcreteType::Char | ConcreteType::Bool => (1, Kind::Byte),
                other => return Err(CdrError::BadSchema(format!("atom resolved to {other:?}"))),
            };
            let ww = wire_width_of(*atom);
            ops.push(Op::Scalar { off, nw, ww, kind });
            Ok(())
        }
        (
            TypeDesc::Fixed(linner, n),
            ConcreteType::FixedArray {
                elem,
                count,
                stride,
            },
        ) => {
            debug_assert_eq!(n, count);
            for i in 0..*count {
                flatten(linner, elem, off + i * stride, ops)?;
            }
            Ok(())
        }
        (TypeDesc::Record(sub_schema), ConcreteType::Record(sub_layout)) => {
            for (decl, field) in sub_schema.fields().iter().zip(sub_layout.fields()) {
                flatten(&decl.ty, &field.ty, off + field.offset, ops)?;
            }
            Ok(())
        }
        (TypeDesc::String, ConcreteType::String) => {
            ops.push(Op::Str { off });
            Ok(())
        }
        (TypeDesc::Var(linner, _), ConcreteType::VarArray { elem, stride, .. }) => {
            let mut elem_ops = Vec::new();
            flatten(linner, elem, 0, &mut elem_ops)?;
            ops.push(Op::Seq {
                off,
                stride: *stride,
                elem: elem_ops,
            });
            Ok(())
        }
        (l, c) => Err(CdrError::BadSchema(format!(
            "mismatched types {l:?} vs {c:?}"
        ))),
    }
}

/// Architecture-independent wire width for a logical atom (IDL fixed types;
/// `long` maps to 64 bits to be lossless across LP64/ILP32, see crate docs).
fn wire_width_of(atom: pbio_types::schema::AtomType) -> u8 {
    use pbio_types::schema::AtomType as A;
    match atom {
        A::I8 | A::U8 | A::Char | A::Bool => 1,
        A::I16 | A::U16 | A::CShort | A::CUShort => 2,
        A::I32 | A::U32 | A::CInt | A::CUInt | A::F32 | A::CFloat => 4,
        A::I64 | A::U64 | A::CLong | A::CULong | A::F64 | A::CDouble => 8,
    }
}

fn align_out(out: &mut Vec<u8>, a: usize) -> usize {
    let body_len = out.len() - HEADER_SIZE;
    let aligned = round_up(body_len, a);
    out.resize(HEADER_SIZE + aligned, 0);
    aligned
}

fn marshal_ops(
    ops: &[Op],
    native: &[u8],
    base: usize,
    we: Endianness,
    out: &mut Vec<u8>,
) -> Result<(), CdrError> {
    for op in ops {
        match op {
            Op::Scalar { off, nw, ww, kind } => {
                let at = base + off;
                if at + *nw as usize > native.len() {
                    return Err(CdrError::Truncated {
                        context: "marshalling scalar".into(),
                        need: at + *nw as usize,
                        have: native.len(),
                    });
                }
                let pos = align_out(out, *ww as usize);
                out.resize(HEADER_SIZE + pos + *ww as usize, 0);
                let dst = HEADER_SIZE + pos;
                match kind {
                    Kind::Byte => out[dst] = native[at],
                    Kind::Signed => {
                        let v = prim::read_int(native, at, *nw, we);
                        prim::write_uint(out, dst, *ww, we, v as u64);
                    }
                    Kind::Unsigned => {
                        let v = prim::read_uint(native, at, *nw, we);
                        prim::write_uint(out, dst, *ww, we, v);
                    }
                    Kind::Float => {
                        let v = prim::read_float(native, at, *nw, we);
                        prim::write_float(out, dst, *ww, we, v);
                    }
                }
            }
            Op::Str { off } => {
                let (start, count) = read_descriptor(native, base + off, we)?;
                if start + count > native.len() {
                    return Err(CdrError::Truncated {
                        context: "marshalling string payload".into(),
                        need: start + count,
                        have: native.len(),
                    });
                }
                let pos = align_out(out, 4);
                out.resize(HEADER_SIZE + pos + 4, 0);
                // CORBA string length includes the terminating NUL.
                prim::write_uint(out, HEADER_SIZE + pos, 4, we, (count + 1) as u64);
                out.extend_from_slice(&native[start..start + count]);
                out.push(0);
            }
            Op::Seq { off, stride, elem } => {
                let (start, count) = read_descriptor(native, base + off, we)?;
                let pos = align_out(out, 4);
                out.resize(HEADER_SIZE + pos + 4, 0);
                prim::write_uint(out, HEADER_SIZE + pos, 4, we, count as u64);
                for i in 0..count {
                    marshal_ops(elem, native, start + i * stride, we, out)?;
                }
            }
        }
    }
    Ok(())
}

fn read_descriptor(native: &[u8], at: usize, e: Endianness) -> Result<(usize, usize), CdrError> {
    if at + 8 > native.len() {
        return Err(CdrError::Truncated {
            context: "reading var descriptor".into(),
            need: at + 8,
            have: native.len(),
        });
    }
    Ok((
        prim::read_uint(native, at, 4, e) as usize,
        prim::read_uint(native, at + 4, 4, e) as usize,
    ))
}

#[allow(clippy::too_many_arguments)]
fn unmarshal_ops(
    ops: &[Op],
    body: &[u8],
    cursor: &mut usize,
    se: Endianness,
    out: &mut Vec<u8>,
    base: usize,
    de: Endianness,
) -> Result<(), CdrError> {
    for op in ops {
        match op {
            Op::Scalar { off, nw, ww, kind } => {
                *cursor = round_up(*cursor, *ww as usize);
                if *cursor + *ww as usize > body.len() {
                    return Err(CdrError::Truncated {
                        context: "unmarshalling scalar".into(),
                        need: *cursor + *ww as usize,
                        have: body.len(),
                    });
                }
                let dst = base + off;
                match kind {
                    Kind::Byte => out[dst] = body[*cursor],
                    Kind::Signed => {
                        let v = prim::read_int(body, *cursor, *ww, se);
                        prim::write_uint(out, dst, *nw, de, v as u64);
                    }
                    Kind::Unsigned => {
                        let v = prim::read_uint(body, *cursor, *ww, se);
                        prim::write_uint(out, dst, *nw, de, v);
                    }
                    Kind::Float => {
                        let v = prim::read_float(body, *cursor, *ww, se);
                        prim::write_float(out, dst, *nw, de, v);
                    }
                }
                *cursor += *ww as usize;
            }
            Op::Str { off } => {
                *cursor = round_up(*cursor, 4);
                if *cursor + 4 > body.len() {
                    return Err(CdrError::Truncated {
                        context: "unmarshalling string length".into(),
                        need: *cursor + 4,
                        have: body.len(),
                    });
                }
                let len_with_nul = prim::read_uint(body, *cursor, 4, se) as usize;
                *cursor += 4;
                if len_with_nul == 0 || *cursor + len_with_nul > body.len() {
                    return Err(CdrError::BadStream("bad string length".into()));
                }
                let count = len_with_nul - 1;
                let start = append_var(out);
                let payload = &body[*cursor..*cursor + count];
                out.extend_from_slice(payload);
                write_native_descriptor(out, base + off, de, start, count);
                *cursor += len_with_nul;
            }
            Op::Seq { off, stride, elem } => {
                *cursor = round_up(*cursor, 4);
                if *cursor + 4 > body.len() {
                    return Err(CdrError::Truncated {
                        context: "unmarshalling sequence length".into(),
                        need: *cursor + 4,
                        have: body.len(),
                    });
                }
                let count = prim::read_uint(body, *cursor, 4, se) as usize;
                *cursor += 4;
                if count > body.len() {
                    return Err(CdrError::BadStream("absurd sequence length".into()));
                }
                let start = append_var(out);
                out.resize(start + count * stride, 0);
                for i in 0..count {
                    unmarshal_ops(elem, body, cursor, se, out, start + i * stride, de)?;
                }
                write_native_descriptor(out, base + off, de, start, count);
            }
        }
    }
    Ok(())
}

fn append_var(out: &mut Vec<u8>) -> usize {
    let start = round_up(out.len(), 8);
    out.resize(start, 0);
    start
}

fn write_native_descriptor(out: &mut [u8], at: usize, de: Endianness, start: usize, count: usize) {
    prim::write_uint(out, at, 4, de, start as u64);
    prim::write_uint(out, at + 4, 4, de, count as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::schema::{AtomType, FieldDecl};
    use pbio_types::value::{decode_native, encode_native, RecordValue, Value};

    fn mixed() -> Schema {
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("id", AtomType::CLong),
                FieldDecl::new("v", TypeDesc::array(AtomType::CFloat, 3)),
            ],
        )
        .unwrap()
    }

    fn mixed_value() -> RecordValue {
        RecordValue::new()
            .with("tag", Value::Char(b'C'))
            .with("x", -0.125f64)
            .with("count", 77i32)
            .with("id", -1_000_000i64)
            .with("v", Value::Array(vec![1.0.into(), 2.0.into(), 3.0.into()]))
    }

    #[test]
    fn round_trips_across_all_profile_pairs() {
        let schema = mixed();
        let value = mixed_value();
        for sp in ArchProfile::all() {
            for dp in ArchProfile::all() {
                let sc = CdrCodec::new(&schema, sp).unwrap();
                let dc = CdrCodec::new(&schema, dp).unwrap();
                let native = encode_native(&value, sc.layout()).unwrap();
                let wire = sc.marshal(&native).unwrap();
                let out = dc.unmarshal(&wire).unwrap();
                let got = decode_native(&out, dc.layout()).unwrap();
                assert_eq!(got, value, "{} -> {}", sp.name, dp.name);
            }
        }
    }

    #[test]
    fn wire_is_packed_and_flagged() {
        let schema = mixed();
        let value = mixed_value();
        let be = CdrCodec::new(&schema, &ArchProfile::SPARC_V8).unwrap();
        let le = CdrCodec::new(&schema, &ArchProfile::X86).unwrap();
        let wb = be
            .marshal(&encode_native(&value, be.layout()).unwrap())
            .unwrap();
        let wl = le
            .marshal(&encode_native(&value, le.layout()).unwrap())
            .unwrap();
        assert_eq!(wb[0], 0, "BE flag");
        assert_eq!(wl[0], 1, "LE flag");
        // Same logical content, same packed body length regardless of sender.
        assert_eq!(wb.len(), wl.len());
        // CDR alignment: char pads to 8 before the double, so body is
        // 8(char+pad) + 8 + 4(int) + pad4 + 8(long) + 12(3 floats) = 44.
        assert_eq!(wb.len(), HEADER_SIZE + 44);
    }

    #[test]
    fn reader_makes_right_homogeneous_no_swap() {
        let schema = mixed();
        let a = CdrCodec::new(&schema, &ArchProfile::X86).unwrap();
        let b = CdrCodec::new(&schema, &ArchProfile::X86_64).unwrap();
        let native = encode_native(&mixed_value(), a.layout()).unwrap();
        let wire = a.marshal(&native).unwrap();
        assert!(!b.needs_swap(&wire), "same byte order: no swapping");
        let c = CdrCodec::new(&schema, &ArchProfile::SPARC_V8).unwrap();
        assert!(c.needs_swap(&wire), "cross order: reader swaps");
    }

    #[test]
    fn unmarshal_still_copies_when_homogeneous() {
        // The paper's point: even homogeneous CDR can't be zero-copy because
        // the packed body layout differs from the padded native layout.
        let schema = mixed();
        let codec = CdrCodec::new(&schema, &ArchProfile::X86).unwrap();
        let native = encode_native(&mixed_value(), codec.layout()).unwrap();
        let wire = codec.marshal(&native).unwrap();
        let body = &wire[HEADER_SIZE..];
        let common = body.len().min(native.len());
        assert!(
            body.len() != native.len() || body[..common] != native[..common],
            "packed body differs from padded native bytes"
        );
        let back = codec.unmarshal(&wire).unwrap();
        assert_eq!(back, native);
    }

    #[test]
    fn strings_and_sequences() {
        let schema = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap();
        let value = RecordValue::new()
            .with("n", 2i32)
            .with("data", Value::Array(vec![4.5.into(), (-4.5).into()]))
            .with("name", "corba");
        for (sp, dp) in [
            (&ArchProfile::SPARC_V8, &ArchProfile::X86),
            (&ArchProfile::X86_64, &ArchProfile::MIPS_N32),
        ] {
            let sc = CdrCodec::new(&schema, sp).unwrap();
            let dc = CdrCodec::new(&schema, dp).unwrap();
            let native = encode_native(&value, sc.layout()).unwrap();
            let wire = sc.marshal(&native).unwrap();
            let out = dc.unmarshal(&wire).unwrap();
            assert_eq!(decode_native(&out, dc.layout()).unwrap(), value);
        }
    }

    #[test]
    fn truncated_and_corrupt_streams_error() {
        let schema = mixed();
        let codec = CdrCodec::new(&schema, &ArchProfile::X86).unwrap();
        let native = encode_native(&mixed_value(), codec.layout()).unwrap();
        let wire = codec.marshal(&native).unwrap();
        assert!(matches!(
            codec.unmarshal(&wire[..2]),
            Err(CdrError::Truncated { .. })
        ));
        assert!(matches!(
            codec.unmarshal(&wire[..wire.len() - 2]),
            Err(CdrError::Truncated { .. })
        ));
        let mut bad = wire.clone();
        bad[0] = 9;
        assert!(matches!(codec.unmarshal(&bad), Err(CdrError::BadStream(_))));
    }

    #[test]
    fn marshal_into_reuses_buffer() {
        let schema = mixed();
        let codec = CdrCodec::new(&schema, &ArchProfile::X86).unwrap();
        let native = encode_native(&mixed_value(), codec.layout()).unwrap();
        let mut buf = Vec::with_capacity(4096);
        let p = buf.as_ptr();
        codec.marshal_into(&native, &mut buf).unwrap();
        assert_eq!(buf.as_ptr(), p);
        let mut out = Vec::with_capacity(4096);
        let q = out.as_ptr();
        codec.unmarshal_into(&buf, &mut out).unwrap();
        assert_eq!(out.as_ptr(), q);
        assert_eq!(out, native);
    }
}
