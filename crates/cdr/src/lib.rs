//! # pbio-cdr — a CORBA IIOP-style CDR wire format
//!
//! The paper's object-system baseline (§2): "CORBA-based object systems use
//! IIOP as a wire format. IIOP attempts to reduce marshalling overhead by
//! adopting a 'reader-makes-right' approach with respect to byte order (the
//! actual byte order used in a message is specified by a header field). This
//! additional flexibility … allows CORBA to avoid unnecessary byte-swapping
//! in message exchanges between homogeneous systems but is not sufficient to
//! allow such message exchanges without copying of data at both sender and
//! receiver", because "in IIOP … atomic data elements are contiguous,
//! without intervening space or padding" while native structs are padded.
//!
//! This crate reproduces those exact properties:
//!
//! * a 1-byte GIOP-style header flag carries the **writer's** byte order;
//!   the writer never swaps ("reader makes right"),
//! * the body is CDR: primitives aligned to their own size *within the
//!   stream*, structs packed with no interfield padding, strings as
//!   `u32 length + bytes + NUL`, sequences as `u32 count + elements`,
//! * marshalling therefore always copies (native padded layout → packed
//!   stream), and unmarshalling always copies back — even between identical
//!   architectures. That mandatory double copy is what Figures 2 and 3
//!   charge to CORBA.
//!
//! Like CORBA IDL stubs, the per-field operation list is precompiled once
//! per type ([`CdrCodec::new`]) — the *compile-time* stub generation the
//! paper contrasts with PBIO's *runtime* code generation.

#![warn(missing_docs)]

pub mod codec;

pub use codec::{CdrCodec, CdrError};
