//! The C-compiler layout engine.
//!
//! Given a logical [`Schema`] and an [`ArchProfile`], this module produces a
//! [`Layout`]: the concrete offsets, sizes, strides and padding that the
//! profile's C compiler would have given a struct with those fields. A
//! `Layout` is precisely the *format meta-information* that PBIO sends along
//! with NDR data: everything a receiver needs to interpret bytes written in
//! the sender's native representation.
//!
//! Variable-length fields (strings and `Var` arrays) cannot travel as raw
//! pointers, so — as in PBIO — they occupy an 8-byte descriptor
//! `{u32 offset, u32 count}` in the fixed part (offset relative to the start
//! of the record image, count in elements/bytes), with the payload packed in
//! a *variable region* appended after the fixed part.

use std::sync::Arc;

use crate::arch::{ArchProfile, Endianness};
use crate::error::TypeError;
use crate::schema::{AtomType, FieldDecl, Schema, TypeDesc};

/// Size in bytes of the `{u32 offset, u32 count}` descriptor that represents
/// a variable-length field inside the fixed part of a record image.
pub const VAR_DESCRIPTOR_SIZE: usize = 8;
/// Alignment of a variable-length field descriptor.
pub const VAR_DESCRIPTOR_ALIGN: usize = 4;

/// A concrete (architecture-resolved) field type. All sizes are final; no
/// architecture information is needed to interpret a buffer beyond what this
/// type and the record's [`Endianness`] carry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConcreteType {
    /// Integer of 1, 2, 4 or 8 bytes.
    Int {
        /// Width in bytes.
        bytes: u8,
        /// Two's-complement signedness.
        signed: bool,
    },
    /// IEEE-754 float of 4 or 8 bytes.
    Float {
        /// Width in bytes.
        bytes: u8,
    },
    /// One text character (1 byte).
    Char,
    /// Boolean stored as one byte (0 or 1).
    Bool,
    /// Fixed-length array.
    FixedArray {
        /// Element type.
        elem: Box<ConcreteType>,
        /// Number of elements.
        count: usize,
        /// Distance in bytes between consecutive elements.
        stride: usize,
    },
    /// Nested record; offsets inside are relative to the nested record start.
    Record(Arc<Layout>),
    /// Variable-length string; fixed part holds a `{offset,count}` descriptor,
    /// count is the byte length.
    String,
    /// Variable-length array; fixed part holds a `{offset,count}` descriptor.
    VarArray {
        /// Element type (must be fixed-size).
        elem: Box<ConcreteType>,
        /// Distance in bytes between consecutive elements in the var region.
        stride: usize,
        /// Name of the integer field that carries the element count on the
        /// sending side (kept for cross-checks; the descriptor count is
        /// authoritative when decoding).
        len_field: String,
    },
}

impl ConcreteType {
    /// Size in bytes this type occupies in the *fixed part* of a record.
    pub fn fixed_size(&self) -> usize {
        match self {
            ConcreteType::Int { bytes, .. } => *bytes as usize,
            ConcreteType::Float { bytes } => *bytes as usize,
            ConcreteType::Char | ConcreteType::Bool => 1,
            ConcreteType::FixedArray { count, stride, .. } => count * stride,
            ConcreteType::Record(layout) => layout.size(),
            ConcreteType::String | ConcreteType::VarArray { .. } => VAR_DESCRIPTOR_SIZE,
        }
    }

    /// True if the type contains a string or variable-length array anywhere.
    pub fn has_variable_part(&self) -> bool {
        match self {
            ConcreteType::Int { .. }
            | ConcreteType::Float { .. }
            | ConcreteType::Char
            | ConcreteType::Bool => false,
            ConcreteType::String | ConcreteType::VarArray { .. } => true,
            ConcreteType::FixedArray { elem, .. } => elem.has_variable_part(),
            ConcreteType::Record(layout) => !layout.is_fixed_layout(),
        }
    }

    /// True for the scalar (non-aggregate, non-variable) variants.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            ConcreteType::Int { .. }
                | ConcreteType::Float { .. }
                | ConcreteType::Char
                | ConcreteType::Bool
        )
    }

    /// A short human-readable rendering, e.g. `i4`, `f8`, `f8[3]`.
    pub fn describe(&self) -> String {
        match self {
            ConcreteType::Int {
                bytes,
                signed: true,
            } => format!("i{bytes}"),
            ConcreteType::Int {
                bytes,
                signed: false,
            } => format!("u{bytes}"),
            ConcreteType::Float { bytes } => format!("f{bytes}"),
            ConcreteType::Char => "char".into(),
            ConcreteType::Bool => "bool".into(),
            ConcreteType::FixedArray { elem, count, .. } => {
                format!("{}[{count}]", elem.describe())
            }
            ConcreteType::Record(l) => format!("record {}", l.format_name()),
            ConcreteType::String => "string".into(),
            ConcreteType::VarArray {
                elem, len_field, ..
            } => {
                format!("{}[{len_field}]", elem.describe())
            }
        }
    }
}

/// One concretely laid-out field.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Field name (the matching key between sender and receiver).
    pub name: String,
    /// Concrete type.
    pub ty: ConcreteType,
    /// Byte offset from the start of the record's fixed part.
    pub offset: usize,
    /// Size in the fixed part (descriptor size for variable fields).
    pub size: usize,
}

/// A concrete record layout for one architecture — PBIO's wire-format
/// meta-information.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    format_name: String,
    arch_name: String,
    endianness: Endianness,
    fields: Vec<Field>,
    size: usize,
    align: usize,
}

impl Layout {
    /// Lay out `schema` as the C compiler of `profile` would.
    pub fn of(schema: &Schema, profile: &ArchProfile) -> Result<Layout, TypeError> {
        let mut fields = Vec::with_capacity(schema.fields().len());
        let mut offset = 0usize;
        let mut max_align = 1usize;
        for decl in schema.fields() {
            let (ty, align) = Self::resolve(decl, &decl.ty, profile)?;
            let size = ty.fixed_size();
            offset = round_up(offset, align);
            fields.push(Field {
                name: decl.name.clone(),
                ty,
                offset,
                size,
            });
            offset += size;
            max_align = max_align.max(align);
        }
        let size = round_up(offset.max(1), max_align);
        Ok(Layout {
            format_name: schema.name().to_owned(),
            arch_name: profile.name.to_owned(),
            endianness: profile.endianness,
            fields,
            size,
            align: max_align,
        })
    }

    fn resolve(
        decl: &FieldDecl,
        ty: &TypeDesc,
        profile: &ArchProfile,
    ) -> Result<(ConcreteType, usize), TypeError> {
        match ty {
            TypeDesc::Atom(atom) => {
                let concrete = resolve_atom(*atom, profile)?;
                let align = match &concrete {
                    ConcreteType::Char | ConcreteType::Bool => 1,
                    ConcreteType::Int { bytes, .. } | ConcreteType::Float { bytes } => {
                        profile.scalar_align(*bytes)
                    }
                    _ => unreachable!("atoms resolve to scalars"),
                };
                Ok((concrete, align))
            }
            TypeDesc::Fixed(inner, count) => {
                let (elem, align) = Self::resolve(decl, inner, profile)?;
                let stride = round_up(elem.fixed_size(), align);
                Ok((
                    ConcreteType::FixedArray {
                        elem: Box::new(elem),
                        count: *count,
                        stride,
                    },
                    align,
                ))
            }
            TypeDesc::Var(inner, len_field) => {
                let (elem, elem_align) = Self::resolve(decl, inner, profile)?;
                if elem.has_variable_part() {
                    return Err(TypeError::BadTypeString {
                        input: decl.name.clone(),
                        reason: "variable-length elements inside a var array are unsupported"
                            .into(),
                    });
                }
                let stride = round_up(elem.fixed_size(), elem_align);
                Ok((
                    ConcreteType::VarArray {
                        elem: Box::new(elem),
                        stride,
                        len_field: len_field.clone(),
                    },
                    VAR_DESCRIPTOR_ALIGN,
                ))
            }
            TypeDesc::String => Ok((ConcreteType::String, VAR_DESCRIPTOR_ALIGN)),
            TypeDesc::Record(sub) => {
                let sub_layout = Layout::of(sub, profile)?;
                let align = sub_layout.align;
                Ok((ConcreteType::Record(Arc::new(sub_layout)), align))
            }
        }
    }

    /// Reassemble a layout from already-validated parts (used by metadata
    /// deserialization; offsets and sizes are trusted as transmitted, exactly
    /// as PBIO trusts the sender's format description).
    pub(crate) fn from_parts(
        format_name: String,
        arch_name: String,
        endianness: Endianness,
        fields: Vec<Field>,
        size: usize,
        align: usize,
    ) -> Layout {
        Layout {
            format_name,
            arch_name,
            endianness,
            fields,
            size,
            align,
        }
    }

    /// The record/format name.
    pub fn format_name(&self) -> &str {
        &self.format_name
    }

    /// Name of the architecture profile this layout was produced for.
    pub fn arch_name(&self) -> &str {
        &self.arch_name
    }

    /// Byte order of all multi-byte scalars in a record image.
    pub fn endianness(&self) -> Endianness {
        self.endianness
    }

    /// The laid-out fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Find a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Size of the fixed part, including trailing padding.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Struct alignment (max field alignment).
    pub fn align(&self) -> usize {
        self.align
    }

    /// True if the record has no variable-length parts; such records are
    /// transmitted by PBIO as a single verbatim copy of sender memory.
    pub fn is_fixed_layout(&self) -> bool {
        self.fields.iter().all(|f| !f.ty.has_variable_part())
    }

    /// Total bytes of compiler-inserted padding in the fixed part (gaps
    /// between fields plus trailing padding). This is the "contiguity
    /// mismatch" of §4.3 that forces packed wire formats to copy.
    pub fn padding_bytes(&self) -> usize {
        let mut used = 0usize;
        for f in &self.fields {
            used += f.size;
        }
        self.size - used
    }

    /// True if records laid out by `self` and `other` are bit-for-bit
    /// interchangeable: same byte order and identical field names, types,
    /// offsets and total size. When this holds for sender and receiver, PBIO
    /// uses the received buffer directly (zero-copy).
    pub fn wire_identical(&self, other: &Layout) -> bool {
        self.endianness == other.endianness
            && self.size == other.size
            && self.fields.len() == other.fields.len()
            && self.fields.iter().zip(&other.fields).all(|(a, b)| {
                a.name == b.name && a.offset == b.offset && types_identical(&a.ty, &b.ty)
            })
    }

    /// True if a record written with wire layout `wire` can be used
    /// *in place* by a receiver expecting `self`: every expected field
    /// exists in the wire record with an identical type at an identical
    /// offset, byte orders match, and the wire record is at least as large.
    ///
    /// This is weaker than [`Layout::wire_identical`]: the wire record may
    /// carry *extra* fields, as long as they live past (or between) the
    /// expected ones without disturbing them. It is what makes the paper's
    /// §4.4 advice real: a sender that *appends* new fields leaves old
    /// homogeneous receivers on the zero-copy path, while inserting fields
    /// up front shifts every offset and forces a conversion (Figure 7).
    pub fn zero_copy_prefix_of(&self, wire: &Layout) -> bool {
        self.endianness == wire.endianness
            && self.size <= wire.size
            && self.fields.iter().all(|want| {
                wire.field(&want.name).is_some_and(|have| {
                    have.offset == want.offset && types_identical(&have.ty, &want.ty)
                })
            })
    }
}

fn types_identical(a: &ConcreteType, b: &ConcreteType) -> bool {
    match (a, b) {
        (
            ConcreteType::Int {
                bytes: ab,
                signed: asg,
            },
            ConcreteType::Int {
                bytes: bb,
                signed: bsg,
            },
        ) => ab == bb && asg == bsg,
        (ConcreteType::Float { bytes: ab }, ConcreteType::Float { bytes: bb }) => ab == bb,
        (ConcreteType::Char, ConcreteType::Char) | (ConcreteType::Bool, ConcreteType::Bool) => true,
        (
            ConcreteType::FixedArray {
                elem: ae,
                count: ac,
                stride: ast,
            },
            ConcreteType::FixedArray {
                elem: be,
                count: bc,
                stride: bst,
            },
        ) => ac == bc && ast == bst && types_identical(ae, be),
        (ConcreteType::Record(al), ConcreteType::Record(bl)) => al.wire_identical(bl),
        (ConcreteType::String, ConcreteType::String) => true,
        (
            ConcreteType::VarArray {
                elem: ae,
                stride: ast,
                ..
            },
            ConcreteType::VarArray {
                elem: be,
                stride: bst,
                ..
            },
        ) => ast == bst && types_identical(ae, be),
        _ => false,
    }
}

/// Round `n` up to the next multiple of `align` (`align` must be a power of
/// two or any positive integer; this uses the general formula).
pub fn round_up(n: usize, align: usize) -> usize {
    debug_assert!(align > 0);
    n.div_ceil(align) * align
}

/// Resolve a logical atom to its concrete width and kind on `profile`.
pub fn resolve_atom(atom: AtomType, profile: &ArchProfile) -> Result<ConcreteType, TypeError> {
    let t = match atom {
        AtomType::I8 => ConcreteType::Int {
            bytes: 1,
            signed: true,
        },
        AtomType::I16 => ConcreteType::Int {
            bytes: 2,
            signed: true,
        },
        AtomType::I32 => ConcreteType::Int {
            bytes: 4,
            signed: true,
        },
        AtomType::I64 => ConcreteType::Int {
            bytes: 8,
            signed: true,
        },
        AtomType::U8 => ConcreteType::Int {
            bytes: 1,
            signed: false,
        },
        AtomType::U16 => ConcreteType::Int {
            bytes: 2,
            signed: false,
        },
        AtomType::U32 => ConcreteType::Int {
            bytes: 4,
            signed: false,
        },
        AtomType::U64 => ConcreteType::Int {
            bytes: 8,
            signed: false,
        },
        AtomType::F32 | AtomType::CFloat => ConcreteType::Float { bytes: 4 },
        AtomType::F64 | AtomType::CDouble => ConcreteType::Float { bytes: 8 },
        AtomType::Char => ConcreteType::Char,
        AtomType::Bool => ConcreteType::Bool,
        AtomType::CShort => ConcreteType::Int {
            bytes: profile.short_bytes,
            signed: true,
        },
        AtomType::CUShort => ConcreteType::Int {
            bytes: profile.short_bytes,
            signed: false,
        },
        AtomType::CInt => ConcreteType::Int {
            bytes: profile.int_bytes,
            signed: true,
        },
        AtomType::CUInt => ConcreteType::Int {
            bytes: profile.int_bytes,
            signed: false,
        },
        AtomType::CLong => ConcreteType::Int {
            bytes: profile.long_bytes,
            signed: true,
        },
        AtomType::CULong => ConcreteType::Int {
            bytes: profile.long_bytes,
            signed: false,
        },
    };
    if let ConcreteType::Int { bytes, .. } | ConcreteType::Float { bytes } = &t {
        if !matches!(bytes, 1 | 2 | 4 | 8) {
            return Err(TypeError::BadAtomSize(*bytes));
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::FieldDecl;

    fn mixed_schema() -> Schema {
        // struct { char tag; double x; int count; short flag; long id; }
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("flag", AtomType::CShort),
                FieldDecl::atom("id", AtomType::CLong),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sparc_v8_layout_natural_alignment() {
        let l = Layout::of(&mixed_schema(), &ArchProfile::SPARC_V8).unwrap();
        // char @0, pad to 8, double @8..16, int @16..20, short @20..22,
        // pad to 24, long(4B!) @24..28 -> wait, long is 4B on v8, align 4:
        // short @20..22, pad to 24? No: long align 4 -> offset 24 is wrong,
        // 22 rounds to 24? 22 -> 24 (align 4). size 28 rounded to align 8 -> 32.
        let offs: Vec<usize> = l.fields().iter().map(|f| f.offset).collect();
        assert_eq!(offs, vec![0, 8, 16, 20, 24]);
        assert_eq!(l.size(), 32);
        assert_eq!(l.align(), 8);
        assert_eq!(l.endianness(), Endianness::Big);
    }

    #[test]
    fn x86_layout_caps_double_alignment() {
        let l = Layout::of(&mixed_schema(), &ArchProfile::X86).unwrap();
        // i386: double aligned to 4 -> char @0, pad to 4, double @4..12,
        // int @12..16, short @16..18, pad to 20, long @20..24; align 4 -> 24.
        let offs: Vec<usize> = l.fields().iter().map(|f| f.offset).collect();
        assert_eq!(offs, vec![0, 4, 12, 16, 20]);
        assert_eq!(l.size(), 24);
        assert_eq!(l.align(), 4);
        assert_eq!(l.endianness(), Endianness::Little);
    }

    #[test]
    fn lp64_long_is_eight_bytes() {
        let l = Layout::of(&mixed_schema(), &ArchProfile::SPARC_V9_64).unwrap();
        let id = l.field("id").unwrap();
        assert_eq!(id.size, 8);
        // char @0 pad8, double @8, int @16, short @20, pad to 24, long @24..32.
        assert_eq!(id.offset, 24);
        assert_eq!(l.size(), 32);
    }

    #[test]
    fn padding_is_reported() {
        let l = Layout::of(&mixed_schema(), &ArchProfile::SPARC_V8).unwrap();
        // used = 1+8+4+2+4 = 19; size 32 -> padding 13.
        assert_eq!(l.padding_bytes(), 13);
    }

    #[test]
    fn fixed_array_stride() {
        let s = Schema::new(
            "arr",
            vec![FieldDecl::new("v", TypeDesc::array(AtomType::CDouble, 5))],
        )
        .unwrap();
        let l = Layout::of(&s, &ArchProfile::SPARC_V8).unwrap();
        match &l.fields()[0].ty {
            ConcreteType::FixedArray { count, stride, .. } => {
                assert_eq!(*count, 5);
                assert_eq!(*stride, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(l.size(), 40);
    }

    #[test]
    fn nested_record_layout() {
        let inner = Schema::new(
            "inner",
            vec![
                FieldDecl::atom("a", AtomType::Char),
                FieldDecl::atom("b", AtomType::CDouble),
            ],
        )
        .unwrap();
        let outer = Schema::new(
            "outer",
            vec![
                FieldDecl::atom("pre", AtomType::Char),
                FieldDecl::new("in", TypeDesc::Record(std::sync::Arc::new(inner))),
            ],
        )
        .unwrap();
        let l = Layout::of(&outer, &ArchProfile::SPARC_V8).unwrap();
        // inner: char@0 pad, double@8 -> size 16 align 8.
        // outer: char@0, pad to 8, inner@8..24 -> size 24 align 8.
        assert_eq!(l.fields()[1].offset, 8);
        assert_eq!(l.fields()[1].size, 16);
        assert_eq!(l.size(), 24);

        // On x86 the nested double aligns to 4: inner size 12, align 4.
        let lx = Layout::of(&outer, &ArchProfile::X86).unwrap();
        assert_eq!(lx.fields()[1].offset, 4);
        assert_eq!(lx.fields()[1].size, 12);
        assert_eq!(lx.size(), 16);
    }

    #[test]
    fn var_fields_use_descriptors() {
        let s = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("label", TypeDesc::String),
            ],
        )
        .unwrap();
        let l = Layout::of(&s, &ArchProfile::SPARC_V9_64).unwrap();
        assert!(!l.is_fixed_layout());
        assert_eq!(l.field("data").unwrap().size, VAR_DESCRIPTOR_SIZE);
        assert_eq!(l.field("label").unwrap().size, VAR_DESCRIPTOR_SIZE);
        assert_eq!(l.field("data").unwrap().offset, 4);
        assert_eq!(l.field("label").unwrap().offset, 12);
    }

    #[test]
    fn wire_identity_detects_homogeneous_pairs() {
        let s = mixed_schema();
        let a = Layout::of(&s, &ArchProfile::SPARC_V8).unwrap();
        let b = Layout::of(&s, &ArchProfile::SPARC_V8).unwrap();
        let c = Layout::of(&s, &ArchProfile::X86).unwrap();
        let d = Layout::of(&s, &ArchProfile::MIPS_N32).unwrap(); // same reps as sparc-v8
        assert!(a.wire_identical(&b));
        assert!(!a.wire_identical(&c));
        assert!(a.wire_identical(&d));
    }

    #[test]
    fn zero_copy_prefix_compatibility() {
        let s = mixed_schema();
        let extended = s
            .with_field_appended(FieldDecl::atom("extra", AtomType::CInt))
            .unwrap();
        let native = Layout::of(&s, &ArchProfile::SPARC_V8).unwrap();
        let wire_app = Layout::of(&extended, &ArchProfile::SPARC_V8).unwrap();
        // Appended extension: expected fields untouched -> in-place usable.
        assert!(native.zero_copy_prefix_of(&wire_app));
        assert!(
            !wire_app.zero_copy_prefix_of(&native),
            "reverse needs the extra field"
        );

        // Prepended extension shifts offsets -> not in-place usable.
        let prepended = s
            .with_field_prepended(FieldDecl::atom("extra", AtomType::CInt))
            .unwrap();
        let wire_pre = Layout::of(&prepended, &ArchProfile::SPARC_V8).unwrap();
        assert!(!native.zero_copy_prefix_of(&wire_pre));

        // A different representation (byte order and long width) is never
        // in-place usable.
        let wire_le = Layout::of(&extended, &ArchProfile::ALPHA).unwrap();
        assert!(!native.zero_copy_prefix_of(&wire_le));

        // Identity implies prefix compatibility.
        assert!(native.zero_copy_prefix_of(&Layout::of(&s, &ArchProfile::SPARC_V8).unwrap()));
    }

    #[test]
    fn wire_identity_is_field_sensitive() {
        let s1 = mixed_schema();
        let s2 = s1
            .with_field_appended(FieldDecl::atom("extra", AtomType::CInt))
            .unwrap();
        let a = Layout::of(&s1, &ArchProfile::SPARC_V8).unwrap();
        let b = Layout::of(&s2, &ArchProfile::SPARC_V8).unwrap();
        assert!(!a.wire_identical(&b));
    }

    #[test]
    fn round_up_basics() {
        assert_eq!(round_up(0, 8), 0);
        assert_eq!(round_up(1, 8), 8);
        assert_eq!(round_up(8, 8), 8);
        assert_eq!(round_up(9, 4), 12);
        assert_eq!(round_up(22, 4), 24);
    }

    #[test]
    fn describe_strings() {
        let l = Layout::of(&mixed_schema(), &ArchProfile::SPARC_V8).unwrap();
        assert_eq!(l.field("x").unwrap().ty.describe(), "f8");
        assert_eq!(l.field("tag").unwrap().ty.describe(), "char");
        assert_eq!(l.field("id").unwrap().ty.describe(), "i4");
    }

    #[test]
    fn all_profiles_lay_out_mixed_schema() {
        for p in ArchProfile::all() {
            let l = Layout::of(&mixed_schema(), p).unwrap();
            assert!(l.size() > 0);
            assert!(l.size().is_multiple_of(l.align()));
            // Offsets are monotonically increasing and within bounds.
            let mut prev_end = 0;
            for f in l.fields() {
                assert!(f.offset >= prev_end);
                prev_end = f.offset + f.size;
            }
            assert!(prev_end <= l.size());
        }
    }
}
