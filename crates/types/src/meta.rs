//! Self-describing serialization of wire-format meta-information.
//!
//! PBIO messages carry format meta-information "somewhat like an XML-style
//! description of the message content" (§4.4): the complete field list of the
//! sender's native layout. This module defines that encoding. It is
//! deliberately byte-order-*independent* (fixed big-endian, like protocol
//! headers) and self-describing, so a receiver can interpret a format it has
//! never seen — the paper's *reflection* property.
//!
//! The encoding is hand-rolled rather than using `serde` because it *is* part
//! of the reproduced system: the cost of shipping format metadata once per
//! (format, connection) pair is part of PBIO's amortized-cost story.

use crate::arch::Endianness;
use crate::error::TypeError;
use crate::layout::{ConcreteType, Field, Layout};

/// Magic bytes opening a serialized format description.
pub const META_MAGIC: &[u8; 4] = b"PBIO";
/// Version byte of the metadata encoding.
pub const META_VERSION: u8 = 1;

const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_CHAR: u8 = 0x03;
const TAG_BOOL: u8 = 0x04;
const TAG_FIXED_ARRAY: u8 = 0x05;
const TAG_RECORD: u8 = 0x06;
const TAG_STRING: u8 = 0x07;
const TAG_VAR_ARRAY: u8 = 0x08;

/// Serialize a [`Layout`] into a portable byte string.
pub fn serialize_layout(layout: &Layout) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + layout.fields().len() * 24);
    out.extend_from_slice(META_MAGIC);
    out.push(META_VERSION);
    put_layout(&mut out, layout);
    out
}

fn put_layout(out: &mut Vec<u8>, layout: &Layout) {
    put_str(out, layout.format_name());
    put_str(out, layout.arch_name());
    out.push(match layout.endianness() {
        Endianness::Big => 0,
        Endianness::Little => 1,
    });
    put_u32(out, layout.size() as u32);
    put_u32(out, layout.align() as u32);
    put_u16(out, layout.fields().len() as u16);
    for f in layout.fields() {
        put_str(out, &f.name);
        put_u32(out, f.offset as u32);
        put_u32(out, f.size as u32);
        put_type(out, &f.ty);
    }
}

fn put_type(out: &mut Vec<u8>, ty: &ConcreteType) {
    match ty {
        ConcreteType::Int { bytes, signed } => {
            out.push(TAG_INT);
            out.push(*bytes);
            out.push(*signed as u8);
        }
        ConcreteType::Float { bytes } => {
            out.push(TAG_FLOAT);
            out.push(*bytes);
        }
        ConcreteType::Char => out.push(TAG_CHAR),
        ConcreteType::Bool => out.push(TAG_BOOL),
        ConcreteType::FixedArray {
            elem,
            count,
            stride,
        } => {
            out.push(TAG_FIXED_ARRAY);
            put_u32(out, *count as u32);
            put_u32(out, *stride as u32);
            put_type(out, elem);
        }
        ConcreteType::Record(sub) => {
            out.push(TAG_RECORD);
            put_layout(out, sub);
        }
        ConcreteType::String => out.push(TAG_STRING),
        ConcreteType::VarArray {
            elem,
            stride,
            len_field,
        } => {
            out.push(TAG_VAR_ARRAY);
            put_u32(out, *stride as u32);
            put_str(out, len_field);
            put_type(out, elem);
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

/// Deserialize a format description produced by [`serialize_layout`].
pub fn deserialize_layout(bytes: &[u8]) -> Result<Layout, TypeError> {
    let mut r = Reader { bytes, pos: 0 };
    let magic = r.take(4)?;
    if magic != META_MAGIC {
        return Err(TypeError::BadMeta("bad magic".into()));
    }
    let version = r.u8()?;
    if version != META_VERSION {
        return Err(TypeError::BadMeta(format!("unsupported version {version}")));
    }
    let layout = get_layout(&mut r)?;
    if r.pos != bytes.len() {
        return Err(TypeError::BadMeta(format!(
            "{} trailing bytes after format description",
            bytes.len() - r.pos
        )));
    }
    Ok(layout)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TypeError> {
        if self.pos + n > self.bytes.len() {
            return Err(TypeError::BadMeta("truncated metadata".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, TypeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, TypeError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, TypeError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn string(&mut self) -> Result<String, TypeError> {
        let len = self.u16()? as usize;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).map_err(|_| TypeError::BadMeta("non-UTF-8 name".into()))
    }
}

fn get_layout(r: &mut Reader<'_>) -> Result<Layout, TypeError> {
    let format_name = r.string()?;
    let arch_name = r.string()?;
    let endianness = match r.u8()? {
        0 => Endianness::Big,
        1 => Endianness::Little,
        other => return Err(TypeError::BadMeta(format!("bad endianness byte {other}"))),
    };
    let size = r.u32()? as usize;
    let align = r.u32()? as usize;
    if align == 0 {
        return Err(TypeError::BadMeta("zero alignment".into()));
    }
    let nfields = r.u16()? as usize;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name = r.string()?;
        let offset = r.u32()? as usize;
        let fsize = r.u32()? as usize;
        let ty = get_type(r)?;
        if offset + fsize > size {
            return Err(TypeError::BadMeta(format!(
                "field {name:?} ({offset}+{fsize}) exceeds record size {size}"
            )));
        }
        fields.push(Field {
            name,
            ty,
            offset,
            size: fsize,
        });
    }
    Ok(Layout::from_parts(
        format_name,
        arch_name,
        endianness,
        fields,
        size,
        align,
    ))
}

fn get_type(r: &mut Reader<'_>) -> Result<ConcreteType, TypeError> {
    Ok(match r.u8()? {
        TAG_INT => {
            let bytes = r.u8()?;
            if !matches!(bytes, 1 | 2 | 4 | 8) {
                return Err(TypeError::BadMeta(format!("bad int width {bytes}")));
            }
            let signed = match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(TypeError::BadMeta(format!("bad signedness {other}"))),
            };
            ConcreteType::Int { bytes, signed }
        }
        TAG_FLOAT => {
            let bytes = r.u8()?;
            if !matches!(bytes, 4 | 8) {
                return Err(TypeError::BadMeta(format!("bad float width {bytes}")));
            }
            ConcreteType::Float { bytes }
        }
        TAG_CHAR => ConcreteType::Char,
        TAG_BOOL => ConcreteType::Bool,
        TAG_FIXED_ARRAY => {
            let count = r.u32()? as usize;
            let stride = r.u32()? as usize;
            let elem = get_type(r)?;
            if stride < elem.fixed_size() {
                return Err(TypeError::BadMeta(
                    "array stride smaller than element".into(),
                ));
            }
            ConcreteType::FixedArray {
                elem: Box::new(elem),
                count,
                stride,
            }
        }
        TAG_RECORD => ConcreteType::Record(std::sync::Arc::new(get_layout(r)?)),
        TAG_STRING => ConcreteType::String,
        TAG_VAR_ARRAY => {
            let stride = r.u32()? as usize;
            let len_field = r.string()?;
            let elem = get_type(r)?;
            if stride < elem.fixed_size() {
                return Err(TypeError::BadMeta(
                    "var-array stride smaller than element".into(),
                ));
            }
            ConcreteType::VarArray {
                elem: Box::new(elem),
                stride,
                len_field,
            }
        }
        other => return Err(TypeError::BadMeta(format!("unknown type tag {other:#x}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchProfile;
    use crate::schema::{AtomType, FieldDecl, Schema, TypeDesc};

    fn rich_schema() -> Schema {
        let inner = std::sync::Arc::new(
            Schema::new(
                "point",
                vec![
                    FieldDecl::atom("x", AtomType::CDouble),
                    FieldDecl::atom("y", AtomType::CDouble),
                ],
            )
            .unwrap(),
        );
        Schema::new(
            "rich",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new("pts", TypeDesc::Record(inner)),
                FieldDecl::new("m", TypeDesc::array(AtomType::CFloat, 4)),
                FieldDecl::new(
                    "samples",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("label", TypeDesc::String),
            ],
        )
        .unwrap()
    }

    #[test]
    fn round_trip_all_profiles() {
        let schema = rich_schema();
        for p in ArchProfile::all() {
            let layout = Layout::of(&schema, p).unwrap();
            let bytes = serialize_layout(&layout);
            let back = deserialize_layout(&bytes).unwrap();
            assert_eq!(back, layout, "profile {}", p.name);
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let layout = Layout::of(&rich_schema(), &ArchProfile::X86).unwrap();
        let mut bytes = serialize_layout(&layout);
        bytes[0] = b'X';
        assert!(matches!(
            deserialize_layout(&bytes),
            Err(TypeError::BadMeta(_))
        ));
    }

    #[test]
    fn rejects_bad_version() {
        let layout = Layout::of(&rich_schema(), &ArchProfile::X86).unwrap();
        let mut bytes = serialize_layout(&layout);
        bytes[4] = 99;
        assert!(matches!(
            deserialize_layout(&bytes),
            Err(TypeError::BadMeta(_))
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let layout = Layout::of(&rich_schema(), &ArchProfile::SPARC_V8).unwrap();
        let bytes = serialize_layout(&layout);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(
                deserialize_layout(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let layout = Layout::of(&rich_schema(), &ArchProfile::X86).unwrap();
        let mut bytes = serialize_layout(&layout);
        bytes.push(0);
        assert!(matches!(
            deserialize_layout(&bytes),
            Err(TypeError::BadMeta(_))
        ));
    }

    #[test]
    fn rejects_field_exceeding_record() {
        let schema = Schema::new("one", vec![FieldDecl::atom("v", AtomType::CInt)]).unwrap();
        let layout = Layout::of(&schema, &ArchProfile::X86).unwrap();
        let mut bytes = serialize_layout(&layout);
        // The record size field is at offset 4(magic+ver) + 2+3("one") + 2+3("x86") + 1(endian).
        let size_off = 5 + 2 + 3 + 2 + 3 + 1;
        bytes[size_off..size_off + 4].copy_from_slice(&1u32.to_be_bytes());
        assert!(matches!(
            deserialize_layout(&bytes),
            Err(TypeError::BadMeta(_))
        ));
    }

    #[test]
    fn metadata_is_compact() {
        // The paper's pitch: meta-information once per format, not per record.
        // Sanity-check it stays small relative to records.
        let layout = Layout::of(&rich_schema(), &ArchProfile::SPARC_V8).unwrap();
        let bytes = serialize_layout(&layout);
        assert!(bytes.len() < 256, "meta is {} bytes", bytes.len());
    }
}
