//! Logical record schemas — the information a PBIO user declares.
//!
//! A [`Schema`] corresponds to PBIO's `IOFieldList`: an ordered list of
//! (field name, field type) pairs. Types are *logical* (`integer`, `long`,
//! `double`, arrays, nested records); their concrete size, offset and padding
//! are produced per-architecture by the [`crate::layout`] engine, exactly as a
//! C compiler would have produced them on that machine.

use std::sync::Arc;

use crate::error::TypeError;

/// A logical atomic field type.
///
/// The `C*` variants have architecture-dependent sizes (resolved at layout
/// time); the fixed-width variants always occupy the stated number of bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomType {
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single precision.
    F32,
    /// IEEE-754 double precision.
    F64,
    /// One character (one byte, as in C `char` used for text).
    Char,
    /// Boolean, stored as one byte.
    Bool,
    /// C `short` — size from the architecture profile.
    CShort,
    /// C `unsigned short`.
    CUShort,
    /// C `int` — PBIO type string `"integer"`.
    CInt,
    /// C `unsigned int` — PBIO type string `"unsigned integer"`.
    CUInt,
    /// C `long` — 4 bytes on ILP32, 8 on LP64.
    CLong,
    /// C `unsigned long`.
    CULong,
    /// C `float` — PBIO type string `"float"`.
    CFloat,
    /// C `double` — PBIO type string `"double"`.
    CDouble,
}

impl AtomType {
    /// Whether the atom is an integer (signed or unsigned, any width).
    pub fn is_integer(self) -> bool {
        !matches!(
            self,
            AtomType::F32 | AtomType::F64 | AtomType::CFloat | AtomType::CDouble
        )
    }

    /// Whether the atom is a signed integer type.
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            AtomType::I8
                | AtomType::I16
                | AtomType::I32
                | AtomType::I64
                | AtomType::CShort
                | AtomType::CInt
                | AtomType::CLong
        )
    }

    /// Whether the atom is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            AtomType::F32 | AtomType::F64 | AtomType::CFloat | AtomType::CDouble
        )
    }

    /// The canonical PBIO type string for this atom.
    pub fn type_string(self) -> &'static str {
        match self {
            AtomType::I8 => "int8",
            AtomType::I16 => "int16",
            AtomType::I32 => "int32",
            AtomType::I64 => "int64",
            AtomType::U8 => "uint8",
            AtomType::U16 => "uint16",
            AtomType::U32 => "uint32",
            AtomType::U64 => "uint64",
            AtomType::F32 => "float32",
            AtomType::F64 => "float64",
            AtomType::Char => "char",
            AtomType::Bool => "boolean",
            AtomType::CShort => "short",
            AtomType::CUShort => "unsigned short",
            AtomType::CInt => "integer",
            AtomType::CUInt => "unsigned integer",
            AtomType::CLong => "long",
            AtomType::CULong => "unsigned long",
            AtomType::CFloat => "float",
            AtomType::CDouble => "double",
        }
    }
}

/// A logical field type: an atom, a (possibly multi-dimensional) fixed array,
/// a variable-length array whose length is given by an earlier integer field,
/// a string, or a nested record.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeDesc {
    /// A single atomic value.
    Atom(AtomType),
    /// Fixed-size array. Multi-dimensional arrays nest `Fixed` descriptors;
    /// `Fixed(Fixed(Atom(F64), 3), 10)` is C's `double x[10][3]`.
    Fixed(Box<TypeDesc>, usize),
    /// Variable-length array; the element count is carried at runtime by the
    /// named integer field, which must be declared earlier in the record
    /// (PBIO's `"double[dimen]"` notation).
    Var(Box<TypeDesc>, String),
    /// A NUL-free variable-length string (PBIO's `"string"`).
    String,
    /// A nested record with its own schema.
    Record(Arc<Schema>),
}

impl TypeDesc {
    /// Convenience constructor for a fixed array of atoms.
    pub fn array(elem: AtomType, n: usize) -> TypeDesc {
        TypeDesc::Fixed(Box::new(TypeDesc::Atom(elem)), n)
    }

    /// The innermost element type of any array nesting (self for non-arrays).
    pub fn element(&self) -> &TypeDesc {
        match self {
            TypeDesc::Fixed(inner, _) | TypeDesc::Var(inner, _) => inner.element(),
            other => other,
        }
    }

    /// True if this type (or any nested part) is variable-length.
    pub fn has_variable_part(&self) -> bool {
        match self {
            TypeDesc::Atom(_) => false,
            TypeDesc::String | TypeDesc::Var(..) => true,
            TypeDesc::Fixed(inner, _) => inner.has_variable_part(),
            TypeDesc::Record(schema) => schema.has_variable_part(),
        }
    }
}

/// One declared field: a name plus a logical type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldDecl {
    /// Field name. PBIO matches sender and receiver fields by name only.
    pub name: String,
    /// Logical type of the field.
    pub ty: TypeDesc,
}

impl FieldDecl {
    /// Create a field declaration.
    pub fn new(name: impl Into<String>, ty: TypeDesc) -> FieldDecl {
        FieldDecl {
            name: name.into(),
            ty,
        }
    }

    /// Shorthand for an atomic field.
    pub fn atom(name: impl Into<String>, atom: AtomType) -> FieldDecl {
        FieldDecl::new(name, TypeDesc::Atom(atom))
    }
}

/// A named, ordered list of field declarations — PBIO's record format as the
/// application declares it, before any machine-specific layout is applied.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    name: String,
    fields: Vec<FieldDecl>,
}

impl Schema {
    /// Build and validate a schema.
    ///
    /// Validation enforces: at least one field, unique field names, and that
    /// every `Var` length reference names an integer field declared earlier.
    pub fn new(name: impl Into<String>, fields: Vec<FieldDecl>) -> Result<Schema, TypeError> {
        let name = name.into();
        if fields.is_empty() {
            return Err(TypeError::EmptySchema(name));
        }
        let mut seen: Vec<&str> = Vec::with_capacity(fields.len());
        for (idx, f) in fields.iter().enumerate() {
            if seen.contains(&f.name.as_str()) {
                return Err(TypeError::DuplicateField(f.name.clone()));
            }
            seen.push(&f.name);
            Self::check_var_refs(&f.ty, &fields[..idx], &f.name)?;
        }
        Ok(Schema { name, fields })
    }

    fn check_var_refs(
        ty: &TypeDesc,
        earlier: &[FieldDecl],
        field_name: &str,
    ) -> Result<(), TypeError> {
        match ty {
            TypeDesc::Var(inner, len_field) => {
                let ok = earlier.iter().any(|e| {
                    e.name == *len_field && matches!(&e.ty, TypeDesc::Atom(a) if a.is_integer())
                });
                if !ok {
                    return Err(TypeError::BadLengthField {
                        field: field_name.to_owned(),
                        len_field: len_field.clone(),
                    });
                }
                Self::check_var_refs(inner, earlier, field_name)
            }
            TypeDesc::Fixed(inner, _) => Self::check_var_refs(inner, earlier, field_name),
            _ => Ok(()),
        }
    }

    /// The record (format) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared fields, in declaration order.
    pub fn fields(&self) -> &[FieldDecl] {
        &self.fields
    }

    /// Find a field declaration by name.
    pub fn field(&self, name: &str) -> Option<&FieldDecl> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// True if any field is variable-length (string or var array), directly
    /// or through nesting.
    pub fn has_variable_part(&self) -> bool {
        self.fields.iter().any(|f| f.ty.has_variable_part())
    }

    /// A copy of this schema with an extra field appended — models the
    /// paper's *type extension* scenario (§4.4): an evolving application adds
    /// fields at the end of the record to minimize mismatch overhead.
    pub fn with_field_appended(&self, field: FieldDecl) -> Result<Schema, TypeError> {
        let mut fields = self.fields.clone();
        fields.push(field);
        Schema::new(self.name.clone(), fields)
    }

    /// A copy of this schema with an extra field *prepended* — the worst-case
    /// extension the paper measures in Figures 6 and 7 (every expected field
    /// shifts to a different offset).
    pub fn with_field_prepended(&self, field: FieldDecl) -> Result<Schema, TypeError> {
        let mut fields = vec![field];
        fields.extend(self.fields.iter().cloned());
        Schema::new(self.name.clone(), fields)
    }

    /// A copy of this schema without the named field — models a receiver that
    /// expects a field the sender no longer provides.
    pub fn without_field(&self, name: &str) -> Result<Schema, TypeError> {
        let fields: Vec<FieldDecl> = self
            .fields
            .iter()
            .filter(|f| f.name != name)
            .cloned()
            .collect();
        Schema::new(self.name.clone(), fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Schema {
        Schema::new(
            "point",
            vec![
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("y", AtomType::CDouble),
                FieldDecl::atom("tag", AtomType::CInt),
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_construction() {
        let s = simple();
        assert_eq!(s.name(), "point");
        assert_eq!(s.fields().len(), 3);
        assert_eq!(s.field("tag").unwrap().ty, TypeDesc::Atom(AtomType::CInt));
        assert!(s.field("nope").is_none());
        assert!(!s.has_variable_part());
    }

    #[test]
    fn duplicate_fields_rejected() {
        let err = Schema::new(
            "dup",
            vec![
                FieldDecl::atom("a", AtomType::CInt),
                FieldDecl::atom("a", AtomType::CFloat),
            ],
        )
        .unwrap_err();
        assert_eq!(err, TypeError::DuplicateField("a".into()));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(matches!(
            Schema::new("none", vec![]),
            Err(TypeError::EmptySchema(_))
        ));
    }

    #[test]
    fn var_length_requires_earlier_integer_field() {
        // Valid: len declared before data.
        let ok = Schema::new(
            "v",
            vec![
                FieldDecl::atom("dimen", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "dimen".into()),
                ),
            ],
        );
        assert!(ok.is_ok());

        // Invalid: length field declared after.
        let err = Schema::new(
            "v",
            vec![
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "dimen".into()),
                ),
                FieldDecl::atom("dimen", AtomType::CInt),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::BadLengthField { .. }));

        // Invalid: length field is a float.
        let err = Schema::new(
            "v",
            vec![
                FieldDecl::atom("dimen", AtomType::CFloat),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "dimen".into()),
                ),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::BadLengthField { .. }));
    }

    #[test]
    fn variable_part_detection() {
        let s = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap();
        assert!(s.has_variable_part());

        let nested = Schema::new(
            "outer",
            vec![FieldDecl::new("inner", TypeDesc::Record(Arc::new(s)))],
        )
        .unwrap();
        assert!(nested.has_variable_part());
    }

    #[test]
    fn extension_helpers() {
        let s = simple();
        let appended = s
            .with_field_appended(FieldDecl::atom("extra", AtomType::CLong))
            .unwrap();
        assert_eq!(appended.fields().last().unwrap().name, "extra");

        let prepended = s
            .with_field_prepended(FieldDecl::atom("extra", AtomType::CLong))
            .unwrap();
        assert_eq!(prepended.fields()[0].name, "extra");

        let without = s.without_field("tag").unwrap();
        assert!(without.field("tag").is_none());
        assert_eq!(without.fields().len(), 2);
    }

    #[test]
    fn multidim_element_type() {
        let t = TypeDesc::Fixed(Box::new(TypeDesc::array(AtomType::F64, 3)), 10);
        assert_eq!(t.element(), &TypeDesc::Atom(AtomType::F64));
        assert!(!t.has_variable_part());
    }

    #[test]
    fn atom_classification() {
        assert!(AtomType::CInt.is_integer());
        assert!(AtomType::CInt.is_signed());
        assert!(!AtomType::CUInt.is_signed());
        assert!(AtomType::CDouble.is_float());
        assert!(!AtomType::CDouble.is_integer());
        assert!(AtomType::Bool.is_integer()); // stored and converted as u8
    }
}
