//! Architecture profiles: the machine models of the paper's testbed.
//!
//! The paper's experiments run between a Sun Ultra 30 (SPARC, big-endian) and
//! a Pentium II (x86, little-endian). The costs PBIO, MPI, CORBA and XML pay
//! are determined entirely by the *data representations* of the two ends:
//! byte order, the sizes of C primitives (`long` is 4 bytes on Sparc V8 and
//! x86 but 8 on Sparc V9-64 and Alpha), and compiler struct padding. An
//! [`ArchProfile`] captures exactly those properties, so all conversion code
//! paths run for real even though the host is a single machine.

use std::fmt;

/// Byte order of a machine or a wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endianness {
    /// Most significant byte first (Sparc, MIPS-BE, network order).
    Big,
    /// Least significant byte first (x86, Alpha).
    Little,
}

impl Endianness {
    /// The byte order of the host this process runs on.
    pub fn host() -> Endianness {
        if cfg!(target_endian = "big") {
            Endianness::Big
        } else {
            Endianness::Little
        }
    }
}

impl fmt::Display for Endianness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endianness::Big => write!(f, "big-endian"),
            Endianness::Little => write!(f, "little-endian"),
        }
    }
}

/// A machine/ABI model: byte order, C primitive sizes, and alignment rules.
///
/// Profiles are value types; the catalogue of the paper's (and a few extra)
/// architectures is available through the associated constants and
/// [`ArchProfile::all`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArchProfile {
    /// Short identifier, e.g. `"sparc-v8"`.
    pub name: &'static str,
    /// Byte order of multi-byte scalars.
    pub endianness: Endianness,
    /// Size of C `short` in bytes (2 on every profile we model).
    pub short_bytes: u8,
    /// Size of C `int` in bytes (4 on every profile we model).
    pub int_bytes: u8,
    /// Size of C `long` in bytes (4 on ILP32 ABIs, 8 on LP64 ABIs).
    pub long_bytes: u8,
    /// Size of C `long long` in bytes (8 everywhere).
    pub long_long_bytes: u8,
    /// Size of a data pointer in bytes (used for var-field descriptors).
    pub pointer_bytes: u8,
    /// Maximum alignment the compiler applies to a scalar. On i386 System V,
    /// 8-byte scalars (`double`, `long long`) are aligned to 4 bytes inside
    /// structs; everywhere else alignment is natural (== size).
    pub max_scalar_align: u8,
}

impl ArchProfile {
    /// SPARC V8 (the paper's Sun Ultra 30 in 32-bit mode): big-endian ILP32,
    /// natural alignment.
    pub const SPARC_V8: ArchProfile = ArchProfile {
        name: "sparc-v8",
        endianness: Endianness::Big,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 4,
        long_long_bytes: 8,
        pointer_bytes: 4,
        max_scalar_align: 8,
    };

    /// SPARC V9 in 64-bit mode: big-endian LP64, natural alignment.
    pub const SPARC_V9_64: ArchProfile = ArchProfile {
        name: "sparc-v9-64",
        endianness: Endianness::Big,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 8,
        long_long_bytes: 8,
        pointer_bytes: 8,
        max_scalar_align: 8,
    };

    /// x86 / i386 System V (the paper's Pentium II): little-endian ILP32 with
    /// 8-byte scalars aligned to only 4 bytes inside structs.
    pub const X86: ArchProfile = ArchProfile {
        name: "x86",
        endianness: Endianness::Little,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 4,
        long_long_bytes: 8,
        pointer_bytes: 4,
        max_scalar_align: 4,
    };

    /// x86-64 System V: little-endian LP64, natural alignment.
    pub const X86_64: ArchProfile = ArchProfile {
        name: "x86-64",
        endianness: Endianness::Little,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 8,
        long_long_bytes: 8,
        pointer_bytes: 8,
        max_scalar_align: 8,
    };

    /// DEC Alpha: little-endian LP64, natural alignment (a Vcode target in the
    /// paper).
    pub const ALPHA: ArchProfile = ArchProfile {
        name: "alpha",
        endianness: Endianness::Little,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 8,
        long_long_bytes: 8,
        pointer_bytes: 8,
        max_scalar_align: 8,
    };

    /// MIPS new 32-bit ABI (n32): big-endian, 32-bit `long`, 64-bit registers,
    /// natural alignment (a Vcode target in the paper).
    pub const MIPS_N32: ArchProfile = ArchProfile {
        name: "mips-n32",
        endianness: Endianness::Big,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 4,
        long_long_bytes: 8,
        pointer_bytes: 4,
        max_scalar_align: 8,
    };

    /// MIPS 64-bit ABI: big-endian LP64, natural alignment.
    pub const MIPS_64: ArchProfile = ArchProfile {
        name: "mips-64",
        endianness: Endianness::Big,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 8,
        long_long_bytes: 8,
        pointer_bytes: 8,
        max_scalar_align: 8,
    };

    /// StrongARM (SA-110, old ARM ABI): little-endian ILP32 with 8-byte
    /// scalars aligned to 4 — one of the two platforms §5 names as upcoming
    /// code-generation targets.
    pub const STRONGARM: ArchProfile = ArchProfile {
        name: "strongarm",
        endianness: Endianness::Little,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 4,
        long_long_bytes: 8,
        pointer_bytes: 4,
        max_scalar_align: 4,
    };

    /// Intel i960: little-endian ILP32, natural alignment — the other §5
    /// target.
    pub const I960: ArchProfile = ArchProfile {
        name: "i960",
        endianness: Endianness::Little,
        short_bytes: 2,
        int_bytes: 4,
        long_bytes: 4,
        long_long_bytes: 8,
        pointer_bytes: 4,
        max_scalar_align: 8,
    };

    /// All built-in profiles, useful for exhaustive cross-product tests.
    pub fn all() -> &'static [ArchProfile] {
        const ALL: [ArchProfile; 9] = [
            ArchProfile::SPARC_V8,
            ArchProfile::SPARC_V9_64,
            ArchProfile::X86,
            ArchProfile::X86_64,
            ArchProfile::ALPHA,
            ArchProfile::MIPS_N32,
            ArchProfile::MIPS_64,
            ArchProfile::STRONGARM,
            ArchProfile::I960,
        ];
        &ALL
    }

    /// Look up a built-in profile by name.
    pub fn by_name(name: &str) -> Option<&'static ArchProfile> {
        ArchProfile::all().iter().find(|p| p.name == name)
    }

    /// Alignment (in bytes) the profile's C compiler gives a scalar of `size`
    /// bytes: natural alignment capped at [`ArchProfile::max_scalar_align`].
    pub fn scalar_align(&self, size: u8) -> usize {
        (size.min(self.max_scalar_align)) as usize
    }

    /// True if two profiles produce bit-identical representations for every
    /// schema — i.e. exchanges between them are *homogeneous* in the paper's
    /// sense.
    pub fn representation_compatible(&self, other: &ArchProfile) -> bool {
        self.endianness == other.endianness
            && self.short_bytes == other.short_bytes
            && self.int_bytes == other.int_bytes
            && self.long_bytes == other.long_bytes
            && self.long_long_bytes == other.long_long_bytes
            && self.pointer_bytes == other.pointer_bytes
            && self.max_scalar_align == other.max_scalar_align
    }
}

impl fmt::Display for ArchProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, long={}B, ptr={}B)",
            self.name, self.endianness, self.long_bytes, self.pointer_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique() {
        let mut names: Vec<_> = ArchProfile::all().iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ArchProfile::all().len());
    }

    #[test]
    fn by_name_roundtrips() {
        for p in ArchProfile::all() {
            assert_eq!(ArchProfile::by_name(p.name), Some(p));
        }
        assert_eq!(ArchProfile::by_name("vax"), None);
    }

    #[test]
    fn x86_caps_scalar_alignment() {
        assert_eq!(ArchProfile::X86.scalar_align(8), 4);
        assert_eq!(ArchProfile::X86.scalar_align(4), 4);
        assert_eq!(ArchProfile::X86.scalar_align(2), 2);
        assert_eq!(ArchProfile::SPARC_V8.scalar_align(8), 8);
    }

    #[test]
    fn paper_testbed_is_heterogeneous() {
        assert!(!ArchProfile::SPARC_V8.representation_compatible(&ArchProfile::X86));
        assert!(ArchProfile::SPARC_V8.representation_compatible(&ArchProfile::SPARC_V8));
    }

    #[test]
    fn strongarm_matches_x86_representation() {
        // Same endianness, sizes and alignment rules: exchanges between
        // them are homogeneous even though the CPUs differ.
        assert!(ArchProfile::STRONGARM.representation_compatible(&ArchProfile::X86));
        // i960 uses natural alignment for 8-byte scalars, so it is NOT
        // representation-compatible with x86/StrongARM.
        assert!(!ArchProfile::I960.representation_compatible(&ArchProfile::X86));
    }

    #[test]
    fn lp64_vs_ilp32_long_differs() {
        assert_eq!(ArchProfile::SPARC_V8.long_bytes, 4);
        assert_eq!(ArchProfile::SPARC_V9_64.long_bytes, 8);
        assert!(!ArchProfile::SPARC_V8.representation_compatible(&ArchProfile::SPARC_V9_64));
    }

    #[test]
    fn host_endianness_matches_cfg() {
        // On any platform this test runs, the two must be consistent.
        let e = Endianness::host();
        if cfg!(target_endian = "little") {
            assert_eq!(e, Endianness::Little);
        } else {
            assert_eq!(e, Endianness::Big);
        }
    }
}
