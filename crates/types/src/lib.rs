//! # pbio-types — type model, architecture profiles and layout engine
//!
//! This crate is the foundation of the PBIO (Portable Binary I/O) workspace, a
//! reproduction of *"Efficient Wire Formats for High Performance Computing"*
//! (Bustamante, Eisenhauer, Schwan, Widener — SC 2000).
//!
//! PBIO transmits records in the **Natural Data Representation** (NDR) of the
//! sender: the bytes exactly as the sending machine's compiler laid them out in
//! memory, accompanied by meta-information describing that layout. To
//! reproduce the paper's heterogeneous Sparc ↔ x86 experiments on a single
//! host, this crate models machine architectures explicitly:
//!
//! * [`arch::ArchProfile`] — endianness, C primitive sizes and alignment rules
//!   of a machine/ABI (Sparc V8, Sparc V9 64-bit, x86, x86-64, Alpha, MIPS...).
//! * [`schema::Schema`] — a *logical* record declaration (field names and
//!   abstract types such as `integer`, `long`, `double`, arrays, nested
//!   records), the same information a PBIO user supplies via `IOFieldList`.
//! * [`layout`] — a C-compiler layout engine that turns a logical schema into
//!   a [`layout::Layout`]: concrete offsets, sizes and padding for a given
//!   architecture profile. A `Layout` *is* the wire-format meta-information
//!   PBIO exchanges.
//! * [`meta`] — a self-describing, byte-order-independent serialization of
//!   `Layout`, used as the on-the-wire format description.
//! * [`value`] — a dynamic record value model plus an encoder/decoder between
//!   values and native byte images for any profile. This acts as the test
//!   oracle for every wire format in the workspace: encode on profile A,
//!   ship, decode on profile B, compare values.
//! * [`typestr`] — parser for PBIO-style field type strings such as
//!   `"integer"`, `"float[3]"`, `"double[dimen]"` or `"string"`.

#![warn(missing_docs)]

pub mod arch;
pub mod error;
pub mod layout;
pub mod macros;
pub mod meta;
pub mod prim;
pub mod schema;
pub mod typestr;
pub mod value;

pub use arch::{ArchProfile, Endianness};
pub use error::TypeError;
pub use layout::{ConcreteType, Field, Layout};
pub use schema::{AtomType, FieldDecl, Schema, TypeDesc};
pub use value::{RecordValue, Value};
