//! The [`schema!`] declaration macro.
//!
//! PBIO applications declare formats as a field list with string type names
//! (`IOFieldList`). The [`crate::typestr`] parser handles the type strings;
//! this macro provides the surrounding declaration syntax so a schema reads
//! like the C it models:
//!
//! ```
//! use pbio_types::schema;
//!
//! let s = schema! {
//!     mech_record {
//!         seq: "integer",
//!         timestep: "long",
//!         coords: "double[30]",
//!         label: "string",
//!     }
//! };
//! assert_eq!(s.name(), "mech_record");
//! assert_eq!(s.fields().len(), 4);
//! ```
//!
//! Panics on invalid type strings or duplicate fields — schema declarations
//! are static program structure, so failing loudly at construction matches
//! how a C compiler would reject the corresponding struct.

/// Declare a [`crate::Schema`] from field/type-string pairs (see the
/// [module docs](crate::macros)).
#[macro_export]
macro_rules! schema {
    ( $name:ident { $( $field:ident : $ty:expr ),+ $(,)? } ) => {{
        let fields = vec![
            $(
                $crate::schema::FieldDecl::new(
                    stringify!($field),
                    $crate::typestr::parse_type_string($ty)
                        .unwrap_or_else(|e| panic!(
                            "schema! field `{}`: {e}", stringify!($field)
                        )),
                ),
            )+
        ];
        $crate::schema::Schema::new(stringify!($name), fields)
            .unwrap_or_else(|e| panic!("schema! {}: {e}", stringify!($name)))
    }};
}

#[cfg(test)]
mod tests {
    use crate::schema::{AtomType, TypeDesc};

    #[test]
    fn declares_mixed_schema() {
        let s = schema! {
            reading {
                seq: "integer",
                t: "double",
                id: "unsigned long",
                tag: "char",
                ok: "boolean",
                m: "float[2][3]",
                n: "int32",
                data: "double[n]",
                name: "string",
            }
        };
        assert_eq!(s.name(), "reading");
        assert_eq!(s.fields().len(), 9);
        assert_eq!(s.field("seq").unwrap().ty, TypeDesc::Atom(AtomType::CInt));
        assert_eq!(s.field("id").unwrap().ty, TypeDesc::Atom(AtomType::CULong));
        assert!(matches!(s.field("m").unwrap().ty, TypeDesc::Fixed(..)));
        assert!(matches!(s.field("data").unwrap().ty, TypeDesc::Var(..)));
        assert_eq!(s.field("name").unwrap().ty, TypeDesc::String);
    }

    #[test]
    #[should_panic(expected = "schema! field `bad`")]
    fn bad_type_string_panics() {
        let _ = schema! {
            oops { bad: "floot" }
        };
    }

    #[test]
    #[should_panic(expected = "schema! broken")]
    fn invalid_schema_panics() {
        // Var length field referencing a later field.
        let _ = schema! {
            broken {
                data: "double[n]",
                n: "integer",
            }
        };
    }

    #[test]
    fn trailing_comma_optional() {
        let a = schema! { one { x: "integer" } };
        let b = schema! { one { x: "integer", } };
        assert_eq!(a, b);
    }
}
