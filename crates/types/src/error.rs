//! Error type shared by the schema, layout and value modules.

use std::fmt;

/// Errors produced while declaring schemas, laying out records, or encoding
/// and decoding native byte images.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A field type string could not be parsed.
    BadTypeString {
        /// The offending type string.
        input: String,
        /// Human-readable reason.
        reason: String,
    },
    /// A schema refers to a length field that does not exist or is not an
    /// integer field declared *before* the variable-length field using it.
    BadLengthField {
        /// Variable-length field name.
        field: String,
        /// The referenced length field.
        len_field: String,
    },
    /// Duplicate field name within one record.
    DuplicateField(String),
    /// A record schema with no fields.
    EmptySchema(String),
    /// An atom size unsupported by the layout engine (only 1, 2, 4, 8).
    BadAtomSize(u8),
    /// Value does not match the field type during native encoding.
    ValueMismatch {
        /// Field being encoded.
        field: String,
        /// What the layout expected.
        expected: String,
        /// What the value actually was.
        got: String,
    },
    /// A native byte image was too short or a var-offset pointed outside it.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: String,
    },
    /// Metadata deserialization failed.
    BadMeta(String),
    /// Numeric value does not fit in the target field width.
    Overflow {
        /// Field being encoded.
        field: String,
        /// The value that did not fit.
        value: String,
        /// Target width in bytes.
        bytes: u8,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::BadTypeString { input, reason } => {
                write!(f, "cannot parse type string {input:?}: {reason}")
            }
            TypeError::BadLengthField { field, len_field } => write!(
                f,
                "variable-length field {field:?} references length field {len_field:?} \
                 which is missing, non-integer, or declared later"
            ),
            TypeError::DuplicateField(name) => write!(f, "duplicate field name {name:?}"),
            TypeError::EmptySchema(name) => write!(f, "schema {name:?} has no fields"),
            TypeError::BadAtomSize(sz) => write!(f, "unsupported atom size {sz} bytes"),
            TypeError::ValueMismatch {
                field,
                expected,
                got,
            } => write!(f, "field {field:?}: expected {expected}, got {got}"),
            TypeError::Truncated { context } => write!(f, "buffer truncated while {context}"),
            TypeError::BadMeta(reason) => write!(f, "bad format metadata: {reason}"),
            TypeError::Overflow {
                field,
                value,
                bytes,
            } => {
                write!(
                    f,
                    "field {field:?}: value {value} does not fit in {bytes} bytes"
                )
            }
        }
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TypeError::BadTypeString {
            input: "floot".into(),
            reason: "unknown base type".into(),
        };
        let s = e.to_string();
        assert!(s.contains("floot"));
        assert!(s.contains("unknown base type"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(TypeError::DuplicateField("x".into()));
        assert!(e.to_string().contains('x'));
    }
}
