//! Dynamic record values and the native-image encoder/decoder.
//!
//! A [`RecordValue`] is an architecture-independent record instance. The
//! functions [`encode_native`] and [`decode_native`] translate between values
//! and *native byte images* for any [`Layout`] — the bytes that would sit in
//! the memory of a machine with that architecture profile.
//!
//! These two functions serve as the workspace-wide correctness oracle:
//! encode a value on profile A, run it through any wire format, decode the
//! result on profile B, and the recovered `RecordValue` must equal the
//! original (up to deliberate narrowing documented per wire format).

use std::fmt;

use crate::arch::Endianness;
use crate::error::TypeError;
use crate::layout::{round_up, ConcreteType, Field, Layout};
use crate::prim;

/// A dynamically-typed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer (any width; width checks happen at encode time).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point (f32 fields narrow through `as f32` on encode).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// One character byte.
    Char(u8),
    /// Variable-length string (must not contain NUL when encoded).
    Str(String),
    /// Array (fixed or variable).
    Array(Vec<Value>),
    /// Nested record.
    Record(RecordValue),
}

impl Value {
    fn kind(&self) -> &'static str {
        match self {
            Value::I64(_) => "i64",
            Value::U64(_) => "u64",
            Value::F64(_) => "f64",
            Value::Bool(_) => "bool",
            Value::Char(_) => "char",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Record(_) => "record",
        }
    }

    /// Integer view accepting both signed and unsigned variants.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Float view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Nested record view.
    pub fn as_record(&self) -> Option<&RecordValue> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Char(c) => write!(f, "'{}'", *c as char),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{it}")?;
                }
                write!(f, "]")
            }
            Value::Record(r) => write!(f, "{r}"),
        }
    }
}

/// An ordered set of named field values — one record instance.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecordValue {
    fields: Vec<(String, Value)>,
}

impl RecordValue {
    /// An empty record value.
    pub fn new() -> RecordValue {
        RecordValue { fields: Vec::new() }
    }

    /// Builder-style field insertion.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> RecordValue {
        self.set(name, value);
        self
    }

    /// Insert or replace a field.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.fields.push((name, value));
        }
    }

    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// All fields in insertion order.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Compare with `other` restricted to the fields present in `self`
    /// (order-insensitive). Useful when a receiver's schema is a subset of
    /// the sender's (type extension).
    pub fn subset_of(&self, other: &RecordValue) -> bool {
        self.fields.iter().all(|(n, v)| other.get(n) == Some(v))
    }
}

impl fmt::Display for RecordValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// Alignment applied to each payload in the variable region.
const VAR_REGION_ALIGN: usize = 8;

/// Encode `value` as a native byte image for `layout` (fixed part followed by
/// the variable region, exactly the bytes a sender on that architecture would
/// hold in memory and hand to PBIO).
///
/// Allocates the image fresh per call — a convenience for tests and one-shot
/// tools. Repeated encoders use [`encode_native_into`] with a reused buffer.
pub fn encode_native(value: &RecordValue, layout: &Layout) -> Result<Vec<u8>, TypeError> {
    let mut buf = Vec::new();
    encode_native_into(value, layout, &mut buf)?;
    Ok(buf)
}

/// [`encode_native`] into a caller-supplied buffer (cleared and resized;
/// its capacity is reused), so repeated encoding — a publisher encoding a
/// value per event, a pooled scratch buffer — allocates nothing in steady
/// state.
pub fn encode_native_into(
    value: &RecordValue,
    layout: &Layout,
    buf: &mut Vec<u8>,
) -> Result<(), TypeError> {
    buf.clear();
    buf.resize(layout.size(), 0);
    encode_record(value, layout, 0, buf)
}

fn encode_record(
    value: &RecordValue,
    layout: &Layout,
    base: usize,
    buf: &mut Vec<u8>,
) -> Result<(), TypeError> {
    let endian = layout.endianness();
    for field in layout.fields() {
        let v = value
            .get(&field.name)
            .ok_or_else(|| TypeError::ValueMismatch {
                field: field.name.clone(),
                expected: field.ty.describe(),
                got: "missing value".into(),
            })?;
        encode_field(
            &field.name,
            &field.ty,
            v,
            value,
            base + field.offset,
            endian,
            buf,
        )?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn encode_field(
    name: &str,
    ty: &ConcreteType,
    v: &Value,
    parent: &RecordValue,
    offset: usize,
    endian: Endianness,
    buf: &mut Vec<u8>,
) -> Result<(), TypeError> {
    match (ty, v) {
        (
            ConcreteType::Int {
                bytes,
                signed: true,
            },
            _,
        ) => {
            let val = v.as_i64().ok_or_else(|| mismatch(name, ty, v))?;
            if !prim::fits_signed(val, *bytes) {
                return Err(TypeError::Overflow {
                    field: name.to_owned(),
                    value: val.to_string(),
                    bytes: *bytes,
                });
            }
            prim::write_uint(buf, offset, *bytes, endian, val as u64);
        }
        (
            ConcreteType::Int {
                bytes,
                signed: false,
            },
            _,
        ) => {
            let val = match v {
                Value::U64(u) => *u,
                Value::I64(i) if *i >= 0 => *i as u64,
                _ => return Err(mismatch(name, ty, v)),
            };
            if !prim::fits_unsigned(val, *bytes) {
                return Err(TypeError::Overflow {
                    field: name.to_owned(),
                    value: val.to_string(),
                    bytes: *bytes,
                });
            }
            prim::write_uint(buf, offset, *bytes, endian, val);
        }
        (ConcreteType::Float { bytes }, Value::F64(val)) => {
            prim::write_float(buf, offset, *bytes, endian, *val);
        }
        (ConcreteType::Char, Value::Char(c)) => buf[offset] = *c,
        (ConcreteType::Bool, Value::Bool(b)) => buf[offset] = *b as u8,
        (
            ConcreteType::FixedArray {
                elem,
                count,
                stride,
            },
            Value::Array(items),
        ) => {
            if items.len() != *count {
                return Err(TypeError::ValueMismatch {
                    field: name.to_owned(),
                    expected: format!("array of {count}"),
                    got: format!("array of {}", items.len()),
                });
            }
            for (i, item) in items.iter().enumerate() {
                encode_field(name, elem, item, parent, offset + i * stride, endian, buf)?;
            }
        }
        (ConcreteType::Record(sub), Value::Record(rv)) => {
            encode_record(rv, sub, offset, buf)?;
        }
        (ConcreteType::String, Value::Str(s)) => {
            let start = append_var(buf, s.as_bytes());
            write_descriptor(buf, offset, endian, start, s.len());
        }
        (
            ConcreteType::VarArray {
                elem,
                stride,
                len_field,
            },
            Value::Array(items),
        ) => {
            // Cross-check against the declared length field when present.
            if let Some(lf) = parent.get(len_field) {
                if lf.as_i64() != Some(items.len() as i64) {
                    return Err(TypeError::ValueMismatch {
                        field: name.to_owned(),
                        expected: format!("array length equal to field {len_field:?} ({lf})"),
                        got: format!("array of {}", items.len()),
                    });
                }
            }
            let mut region = vec![0u8; items.len() * stride];
            for (i, item) in items.iter().enumerate() {
                encode_field(name, elem, item, parent, i * stride, endian, &mut region)?;
            }
            let start = append_var(buf, &region);
            write_descriptor(buf, offset, endian, start, items.len());
        }
        _ => return Err(mismatch(name, ty, v)),
    }
    Ok(())
}

fn mismatch(name: &str, ty: &ConcreteType, v: &Value) -> TypeError {
    TypeError::ValueMismatch {
        field: name.to_owned(),
        expected: ty.describe(),
        got: v.kind().to_owned(),
    }
}

fn append_var(buf: &mut Vec<u8>, payload: &[u8]) -> usize {
    let start = round_up(buf.len(), VAR_REGION_ALIGN);
    buf.resize(start, 0);
    buf.extend_from_slice(payload);
    start
}

fn write_descriptor(buf: &mut [u8], offset: usize, endian: Endianness, start: usize, count: usize) {
    prim::write_uint(buf, offset, 4, endian, start as u64);
    prim::write_uint(buf, offset + 4, 4, endian, count as u64);
}

/// Decode a native byte image produced for `layout` back into a
/// [`RecordValue`].
pub fn decode_native(bytes: &[u8], layout: &Layout) -> Result<RecordValue, TypeError> {
    if bytes.len() < layout.size() {
        return Err(TypeError::Truncated {
            context: format!(
                "decoding record {} (need {} bytes, have {})",
                layout.format_name(),
                layout.size(),
                bytes.len()
            ),
        });
    }
    decode_record(bytes, layout, 0)
}

fn decode_record(bytes: &[u8], layout: &Layout, base: usize) -> Result<RecordValue, TypeError> {
    let endian = layout.endianness();
    let mut out = RecordValue::new();
    for field in layout.fields() {
        let v = decode_field(bytes, &field.ty, base + field.offset, endian, field)?;
        out.set(field.name.clone(), v);
    }
    Ok(out)
}

fn decode_field(
    bytes: &[u8],
    ty: &ConcreteType,
    offset: usize,
    endian: Endianness,
    field: &Field,
) -> Result<Value, TypeError> {
    let need = match ty {
        ConcreteType::String | ConcreteType::VarArray { .. } => crate::layout::VAR_DESCRIPTOR_SIZE,
        other => other.fixed_size(),
    };
    if offset + need > bytes.len() {
        return Err(TypeError::Truncated {
            context: format!("reading field {:?} at offset {offset}", field.name),
        });
    }
    Ok(match ty {
        ConcreteType::Int {
            bytes: w,
            signed: true,
        } => Value::I64(prim::read_int(bytes, offset, *w, endian)),
        ConcreteType::Int {
            bytes: w,
            signed: false,
        } => Value::U64(prim::read_uint(bytes, offset, *w, endian)),
        ConcreteType::Float { bytes: w } => Value::F64(prim::read_float(bytes, offset, *w, endian)),
        ConcreteType::Char => Value::Char(bytes[offset]),
        ConcreteType::Bool => Value::Bool(bytes[offset] != 0),
        ConcreteType::FixedArray {
            elem,
            count,
            stride,
        } => {
            let mut items = Vec::with_capacity(*count);
            for i in 0..*count {
                items.push(decode_field(
                    bytes,
                    elem,
                    offset + i * stride,
                    endian,
                    field,
                )?);
            }
            Value::Array(items)
        }
        ConcreteType::Record(sub) => Value::Record(decode_record(bytes, sub, offset)?),
        ConcreteType::String => {
            let (start, count) = read_descriptor(bytes, offset, endian);
            let end = start
                .checked_add(count)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| TypeError::Truncated {
                    context: format!("string field {:?} payload", field.name),
                })?;
            let s = std::str::from_utf8(&bytes[start..end]).map_err(|_| {
                TypeError::BadMeta(format!(
                    "field {:?}: string payload is not UTF-8",
                    field.name
                ))
            })?;
            Value::Str(s.to_owned())
        }
        ConcreteType::VarArray { elem, stride, .. } => {
            let (start, count) = read_descriptor(bytes, offset, endian);
            let total = count
                .checked_mul(*stride)
                .ok_or_else(|| TypeError::Truncated {
                    context: format!("var array {:?} size overflow", field.name),
                })?;
            let end = start
                .checked_add(total)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| TypeError::Truncated {
                    context: format!("var array {:?} payload", field.name),
                })?;
            let _ = end;
            let mut items = Vec::with_capacity(count);
            for i in 0..count {
                items.push(decode_field(
                    bytes,
                    elem,
                    start + i * stride,
                    endian,
                    field,
                )?);
            }
            Value::Array(items)
        }
    })
}

fn read_descriptor(bytes: &[u8], offset: usize, endian: Endianness) -> (usize, usize) {
    let start = prim::read_uint(bytes, offset, 4, endian) as usize;
    let count = prim::read_uint(bytes, offset + 4, 4, endian) as usize;
    (start, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchProfile;
    use crate::schema::{AtomType, FieldDecl, Schema, TypeDesc};

    fn mixed_schema() -> Schema {
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("flag", AtomType::Bool),
                FieldDecl::atom("id", AtomType::CLong),
                FieldDecl::atom("ratio", AtomType::CFloat),
            ],
        )
        .unwrap()
    }

    fn mixed_value() -> RecordValue {
        RecordValue::new()
            .with("tag", Value::Char(b'Q'))
            .with("x", -17.625f64)
            .with("count", 123_456i32)
            .with("flag", true)
            .with("id", -98_765i64)
            .with("ratio", 0.25f64)
    }

    #[test]
    fn round_trip_every_profile() {
        let schema = mixed_schema();
        let value = mixed_value();
        for p in ArchProfile::all() {
            let layout = Layout::of(&schema, p).unwrap();
            let img = encode_native(&value, &layout).unwrap();
            assert_eq!(img.len(), layout.size());
            let back = decode_native(&img, &layout).unwrap();
            assert_eq!(back, value, "profile {}", p.name);
        }
    }

    #[test]
    fn big_endian_bytes_where_expected() {
        let schema = Schema::new("one", vec![FieldDecl::atom("v", AtomType::CInt)]).unwrap();
        let value = RecordValue::new().with("v", 0x01020304i32);
        let be = encode_native(
            &value,
            &Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap(),
        )
        .unwrap();
        let le = encode_native(&value, &Layout::of(&schema, &ArchProfile::X86).unwrap()).unwrap();
        assert_eq!(&be[..4], &[1, 2, 3, 4]);
        assert_eq!(&le[..4], &[4, 3, 2, 1]);
    }

    #[test]
    fn fixed_arrays_round_trip() {
        let schema = Schema::new(
            "arr",
            vec![FieldDecl::new(
                "m",
                TypeDesc::Fixed(Box::new(TypeDesc::array(AtomType::CDouble, 3)), 2),
            )],
        )
        .unwrap();
        let value = RecordValue::new().with(
            "m",
            Value::Array(vec![
                Value::Array(vec![1.0.into(), 2.0.into(), 3.0.into()]),
                Value::Array(vec![4.0.into(), 5.0.into(), 6.0.into()]),
            ]),
        );
        for p in [&ArchProfile::SPARC_V8, &ArchProfile::X86_64] {
            let layout = Layout::of(&schema, p).unwrap();
            let img = encode_native(&value, &layout).unwrap();
            assert_eq!(decode_native(&img, &layout).unwrap(), value);
        }
    }

    #[test]
    fn nested_records_round_trip() {
        let inner = std::sync::Arc::new(
            Schema::new(
                "inner",
                vec![
                    FieldDecl::atom("a", AtomType::CShort),
                    FieldDecl::atom("b", AtomType::CDouble),
                ],
            )
            .unwrap(),
        );
        let outer = Schema::new(
            "outer",
            vec![
                FieldDecl::atom("pre", AtomType::Char),
                FieldDecl::new("in", TypeDesc::Record(inner)),
            ],
        )
        .unwrap();
        let value = RecordValue::new().with("pre", Value::Char(b'z')).with(
            "in",
            Value::Record(RecordValue::new().with("a", -3i32).with("b", 2.5f64)),
        );
        for p in ArchProfile::all() {
            let layout = Layout::of(&outer, p).unwrap();
            let img = encode_native(&value, &layout).unwrap();
            assert_eq!(decode_native(&img, &layout).unwrap(), value, "{}", p.name);
        }
    }

    #[test]
    fn strings_and_var_arrays_round_trip() {
        let schema = Schema::new(
            "var",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap();
        let value = RecordValue::new()
            .with("n", 3i32)
            .with(
                "data",
                Value::Array(vec![1.5.into(), (-2.5).into(), 3.5.into()]),
            )
            .with("name", "hello wire");
        for p in [
            &ArchProfile::SPARC_V8,
            &ArchProfile::X86,
            &ArchProfile::ALPHA,
        ] {
            let layout = Layout::of(&schema, p).unwrap();
            let img = encode_native(&value, &layout).unwrap();
            assert!(img.len() > layout.size(), "var region appended");
            assert_eq!(decode_native(&img, &layout).unwrap(), value, "{}", p.name);
        }
    }

    #[test]
    fn var_length_mismatch_rejected() {
        let schema = Schema::new(
            "var",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
            ],
        )
        .unwrap();
        let layout = Layout::of(&schema, &ArchProfile::X86).unwrap();
        let value = RecordValue::new()
            .with("n", 5i32)
            .with("data", Value::Array(vec![1.0.into()]));
        assert!(matches!(
            encode_native(&value, &layout),
            Err(TypeError::ValueMismatch { .. })
        ));
    }

    #[test]
    fn overflow_rejected() {
        let schema = Schema::new("one", vec![FieldDecl::atom("v", AtomType::I16)]).unwrap();
        let layout = Layout::of(&schema, &ArchProfile::X86).unwrap();
        let value = RecordValue::new().with("v", 40_000i32);
        assert!(matches!(
            encode_native(&value, &layout),
            Err(TypeError::Overflow { .. })
        ));
    }

    #[test]
    fn missing_field_rejected() {
        let schema = mixed_schema();
        let layout = Layout::of(&schema, &ArchProfile::X86).unwrap();
        let value = RecordValue::new().with("tag", Value::Char(b'a'));
        assert!(matches!(
            encode_native(&value, &layout),
            Err(TypeError::ValueMismatch { .. })
        ));
    }

    #[test]
    fn truncated_buffer_rejected() {
        let schema = mixed_schema();
        let layout = Layout::of(&schema, &ArchProfile::X86).unwrap();
        let img = encode_native(&mixed_value(), &layout).unwrap();
        assert!(matches!(
            decode_native(&img[..img.len() - 1], &layout),
            Err(TypeError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_descriptor_rejected() {
        let schema = Schema::new(
            "var",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap();
        let layout = Layout::of(&schema, &ArchProfile::X86).unwrap();
        let value = RecordValue::new().with("n", 0i32).with("name", "abcdef");
        let mut img = encode_native(&value, &layout).unwrap();
        // Corrupt the descriptor to point past the end of the buffer.
        let off = layout.field("name").unwrap().offset;
        prim::write_uint(&mut img, off, 4, layout.endianness(), 10_000);
        assert!(matches!(
            decode_native(&img, &layout),
            Err(TypeError::Truncated { .. })
        ));
    }

    #[test]
    fn record_value_subset() {
        let a = RecordValue::new().with("x", 1i32).with("y", 2i32);
        let b = RecordValue::new()
            .with("y", 2i32)
            .with("x", 1i32)
            .with("z", 3i32);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
    }

    #[test]
    fn set_replaces_existing() {
        let mut r = RecordValue::new();
        r.set("x", 1i32);
        r.set("x", 2i32);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get("x"), Some(&Value::I64(2)));
    }

    #[test]
    fn display_formats() {
        let r = RecordValue::new()
            .with("a", 1i32)
            .with("s", "hi")
            .with("arr", Value::Array(vec![1.0.into(), 2.0.into()]));
        let s = r.to_string();
        assert!(s.contains("a: 1"));
        assert!(s.contains("s: \"hi\""));
        assert!(s.contains("arr: [1, 2]"));
    }
}
