//! Parser for PBIO-style field type strings.
//!
//! PBIO applications declare field types as strings, e.g. `"integer"`,
//! `"unsigned integer"`, `"float"`, `"double[3]"`, `"char[20]"`, `"string"`,
//! or with a runtime dimension taken from another field: `"double[dimen]"`.
//! This module parses those strings into [`TypeDesc`] values.
//!
//! Grammar:
//!
//! ```text
//! type     := base dims*
//! base     := "integer" | "unsigned integer" | "short" | "unsigned short"
//!           | "long" | "unsigned long" | "float" | "double" | "char"
//!           | "boolean" | "string"
//!           | "int8" | "int16" | "int32" | "int64"
//!           | "uint8" | "uint16" | "uint32" | "uint64"
//!           | "float32" | "float64"
//! dims     := "[" (number | identifier) "]"
//! ```
//!
//! As in C, the leftmost dimension varies slowest: `"double[10][3]"` is ten
//! rows of three. A runtime (identifier) dimension is only permitted as the
//! leftmost dimension.

use crate::error::TypeError;
use crate::schema::{AtomType, TypeDesc};

/// Parse a PBIO type string into a logical [`TypeDesc`].
pub fn parse_type_string(input: &str) -> Result<TypeDesc, TypeError> {
    let s = input.trim();
    let bracket = s.find('[');
    let (base_str, dims_str) = match bracket {
        Some(i) => (s[..i].trim(), &s[i..]),
        None => (s, ""),
    };

    let base = parse_base(base_str).ok_or_else(|| TypeError::BadTypeString {
        input: input.to_owned(),
        reason: format!("unknown base type {base_str:?}"),
    })?;

    let dims = parse_dims(input, dims_str)?;
    build(input, base, &dims)
}

/// Render a [`TypeDesc`] back into PBIO type-string notation (inverse of
/// [`parse_type_string`] for the subset it covers; nested records render as
/// their format name in braces and do not round-trip through the parser).
pub fn type_string_of(ty: &TypeDesc) -> String {
    fn dims<'a>(ty: &'a TypeDesc, out: &mut String) -> &'a TypeDesc {
        match ty {
            TypeDesc::Fixed(inner, n) => {
                out.push_str(&format!("[{n}]"));
                dims(inner, out)
            }
            TypeDesc::Var(inner, name) => {
                out.push_str(&format!("[{name}]"));
                dims(inner, out)
            }
            other => other,
        }
    }
    let mut suffix = String::new();
    let base = dims(ty, &mut suffix);
    let base_str = match base {
        TypeDesc::Atom(a) => a.type_string().to_owned(),
        TypeDesc::String => "string".to_owned(),
        TypeDesc::Record(s) => format!("{{{}}}", s.name()),
        TypeDesc::Fixed(..) | TypeDesc::Var(..) => unreachable!("dims strips arrays"),
    };
    format!("{base_str}{suffix}")
}

enum Base {
    Atom(AtomType),
    Str,
}

fn parse_base(s: &str) -> Option<Base> {
    // Normalize interior whitespace ("unsigned   integer" == "unsigned integer").
    let norm: Vec<&str> = s.split_whitespace().collect();
    let joined = norm.join(" ");
    let atom = match joined.as_str() {
        "integer" | "int" => AtomType::CInt,
        "unsigned integer" | "unsigned int" | "unsigned" => AtomType::CUInt,
        "short" | "short int" => AtomType::CShort,
        "unsigned short" => AtomType::CUShort,
        "long" | "long int" => AtomType::CLong,
        "unsigned long" => AtomType::CULong,
        "float" => AtomType::CFloat,
        "double" => AtomType::CDouble,
        "char" => AtomType::Char,
        "boolean" | "bool" => AtomType::Bool,
        "string" => return Some(Base::Str),
        "int8" => AtomType::I8,
        "int16" => AtomType::I16,
        "int32" => AtomType::I32,
        "int64" => AtomType::I64,
        "uint8" => AtomType::U8,
        "uint16" => AtomType::U16,
        "uint32" => AtomType::U32,
        "uint64" => AtomType::U64,
        "float32" => AtomType::F32,
        "float64" => AtomType::F64,
        _ => return None,
    };
    Some(Base::Atom(atom))
}

enum Dim {
    Fixed(usize),
    Runtime(String),
}

fn parse_dims(whole: &str, mut s: &str) -> Result<Vec<Dim>, TypeError> {
    let mut dims = Vec::new();
    s = s.trim();
    while !s.is_empty() {
        if !s.starts_with('[') {
            return Err(TypeError::BadTypeString {
                input: whole.to_owned(),
                reason: format!("expected '[' at {s:?}"),
            });
        }
        let close = s.find(']').ok_or_else(|| TypeError::BadTypeString {
            input: whole.to_owned(),
            reason: "unterminated '['".into(),
        })?;
        let body = s[1..close].trim();
        if body.is_empty() {
            return Err(TypeError::BadTypeString {
                input: whole.to_owned(),
                reason: "empty dimension".into(),
            });
        }
        if body.chars().all(|c| c.is_ascii_digit()) {
            let n: usize = body.parse().map_err(|_| TypeError::BadTypeString {
                input: whole.to_owned(),
                reason: format!("bad dimension {body:?}"),
            })?;
            if n == 0 {
                return Err(TypeError::BadTypeString {
                    input: whole.to_owned(),
                    reason: "zero-length dimension".into(),
                });
            }
            dims.push(Dim::Fixed(n));
        } else if body.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && !body.chars().next().unwrap().is_ascii_digit()
        {
            dims.push(Dim::Runtime(body.to_owned()));
        } else {
            return Err(TypeError::BadTypeString {
                input: whole.to_owned(),
                reason: format!("bad dimension {body:?}"),
            });
        }
        s = s[close + 1..].trim();
    }
    Ok(dims)
}

fn build(whole: &str, base: Base, dims: &[Dim]) -> Result<TypeDesc, TypeError> {
    let mut ty = match base {
        Base::Atom(a) => TypeDesc::Atom(a),
        Base::Str => TypeDesc::String,
    };
    if matches!(ty, TypeDesc::String) && !dims.is_empty() {
        return Err(TypeError::BadTypeString {
            input: whole.to_owned(),
            reason: "arrays of strings are unsupported".into(),
        });
    }
    // Build from the rightmost (fastest-varying) dimension inward.
    for (i, d) in dims.iter().enumerate().rev() {
        match d {
            Dim::Fixed(n) => ty = TypeDesc::Fixed(Box::new(ty), *n),
            Dim::Runtime(name) => {
                if i != 0 {
                    return Err(TypeError::BadTypeString {
                        input: whole.to_owned(),
                        reason: "a runtime dimension must be the leftmost dimension".into(),
                    });
                }
                ty = TypeDesc::Var(Box::new(ty), name.clone());
            }
        }
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_bases() {
        assert_eq!(
            parse_type_string("integer").unwrap(),
            TypeDesc::Atom(AtomType::CInt)
        );
        assert_eq!(
            parse_type_string("unsigned integer").unwrap(),
            TypeDesc::Atom(AtomType::CUInt)
        );
        assert_eq!(
            parse_type_string(" double ").unwrap(),
            TypeDesc::Atom(AtomType::CDouble)
        );
        assert_eq!(parse_type_string("string").unwrap(), TypeDesc::String);
        assert_eq!(
            parse_type_string("uint64").unwrap(),
            TypeDesc::Atom(AtomType::U64)
        );
    }

    #[test]
    fn fixed_arrays() {
        assert_eq!(
            parse_type_string("float[3]").unwrap(),
            TypeDesc::array(AtomType::CFloat, 3)
        );
        // double[10][3]: ten rows of three.
        let t = parse_type_string("double[10][3]").unwrap();
        assert_eq!(
            t,
            TypeDesc::Fixed(Box::new(TypeDesc::array(AtomType::CDouble, 3)), 10)
        );
    }

    #[test]
    fn runtime_dimension() {
        let t = parse_type_string("double[dimen]").unwrap();
        assert_eq!(
            t,
            TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "dimen".into())
        );
        // Runtime dim with fixed inner dims: matrix with runtime row count.
        let t = parse_type_string("double[nrows][3]").unwrap();
        assert_eq!(
            t,
            TypeDesc::Var(
                Box::new(TypeDesc::array(AtomType::CDouble, 3)),
                "nrows".into()
            )
        );
    }

    #[test]
    fn runtime_dim_must_be_leftmost() {
        let err = parse_type_string("double[3][n]").unwrap_err();
        assert!(matches!(err, TypeError::BadTypeString { .. }));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "floot",
            "integer[",
            "integer[]",
            "integer[0]",
            "integer[3",
            "integer[3]x",
            "string[4]",
            "integer[-1]",
            "integer[a b]",
        ] {
            assert!(parse_type_string(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trip_rendering() {
        for s in [
            "integer",
            "unsigned integer",
            "double[10][3]",
            "char[20]",
            "string",
            "float[dimen]",
            "uint32",
        ] {
            let t = parse_type_string(s).unwrap();
            let rendered = type_string_of(&t);
            let reparsed = parse_type_string(&rendered).unwrap();
            assert_eq!(t, reparsed, "{s} -> {rendered}");
        }
    }
}
