//! Endian-aware primitive reads and writes.
//!
//! Every wire format in this workspace (NDR, MPI-style packed, CDR, XML's
//! binary side) ultimately moves scalars between byte buffers in a declared
//! byte order. These helpers centralize that logic. They are deliberately
//! simple, branch-predictable and inlinable; the hot conversion paths in
//! `pbio-vrisc` compile to the same primitives.

use crate::arch::Endianness;

/// Read an unsigned integer of `bytes` width (1, 2, 4 or 8) at `buf[offset..]`.
///
/// # Panics
/// Panics if the range is out of bounds or `bytes` is not a supported width.
#[inline]
pub fn read_uint(buf: &[u8], offset: usize, bytes: u8, endian: Endianness) -> u64 {
    let s = &buf[offset..offset + bytes as usize];
    match (bytes, endian) {
        (1, _) => s[0] as u64,
        (2, Endianness::Big) => u16::from_be_bytes([s[0], s[1]]) as u64,
        (2, Endianness::Little) => u16::from_le_bytes([s[0], s[1]]) as u64,
        (4, Endianness::Big) => u32::from_be_bytes([s[0], s[1], s[2], s[3]]) as u64,
        (4, Endianness::Little) => u32::from_le_bytes([s[0], s[1], s[2], s[3]]) as u64,
        (8, Endianness::Big) => {
            u64::from_be_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        }
        (8, Endianness::Little) => {
            u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]])
        }
        _ => panic!("unsupported integer width {bytes}"),
    }
}

/// Read a signed integer of `bytes` width, sign-extending to i64.
#[inline]
pub fn read_int(buf: &[u8], offset: usize, bytes: u8, endian: Endianness) -> i64 {
    let raw = read_uint(buf, offset, bytes, endian);
    sign_extend(raw, bytes)
}

/// Sign-extend the low `bytes*8` bits of `raw` to a full i64.
#[inline]
pub fn sign_extend(raw: u64, bytes: u8) -> i64 {
    let shift = 64 - (bytes as u32) * 8;
    ((raw << shift) as i64) >> shift
}

/// Write the low `bytes*8` bits of `v` at `buf[offset..]` in `endian` order.
///
/// # Panics
/// Panics if the range is out of bounds or `bytes` is not a supported width.
#[inline]
pub fn write_uint(buf: &mut [u8], offset: usize, bytes: u8, endian: Endianness, v: u64) {
    let dst = &mut buf[offset..offset + bytes as usize];
    match (bytes, endian) {
        (1, _) => dst[0] = v as u8,
        (2, Endianness::Big) => dst.copy_from_slice(&(v as u16).to_be_bytes()),
        (2, Endianness::Little) => dst.copy_from_slice(&(v as u16).to_le_bytes()),
        (4, Endianness::Big) => dst.copy_from_slice(&(v as u32).to_be_bytes()),
        (4, Endianness::Little) => dst.copy_from_slice(&(v as u32).to_le_bytes()),
        (8, Endianness::Big) => dst.copy_from_slice(&v.to_be_bytes()),
        (8, Endianness::Little) => dst.copy_from_slice(&v.to_le_bytes()),
        _ => panic!("unsupported integer width {bytes}"),
    }
}

/// Read an IEEE-754 float of 4 or 8 bytes, widening to f64.
#[inline]
pub fn read_float(buf: &[u8], offset: usize, bytes: u8, endian: Endianness) -> f64 {
    match bytes {
        4 => f32::from_bits(read_uint(buf, offset, 4, endian) as u32) as f64,
        8 => f64::from_bits(read_uint(buf, offset, 8, endian)),
        _ => panic!("unsupported float width {bytes}"),
    }
}

/// Write an f64 as an IEEE-754 float of 4 or 8 bytes (narrowing to f32 for
/// width 4).
#[inline]
pub fn write_float(buf: &mut [u8], offset: usize, bytes: u8, endian: Endianness, v: f64) {
    match bytes {
        4 => write_uint(buf, offset, 4, endian, (v as f32).to_bits() as u64),
        8 => write_uint(buf, offset, 8, endian, v.to_bits()),
        _ => panic!("unsupported float width {bytes}"),
    }
}

/// True if `v` is exactly representable as a signed two's-complement integer
/// of `bytes` width.
#[inline]
pub fn fits_signed(v: i64, bytes: u8) -> bool {
    if bytes >= 8 {
        return true;
    }
    let bits = (bytes as u32) * 8;
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

/// True if `v` fits in an unsigned integer of `bytes` width.
#[inline]
pub fn fits_unsigned(v: u64, bytes: u8) -> bool {
    if bytes >= 8 {
        return true;
    }
    v < (1u64 << ((bytes as u32) * 8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_round_trip_both_orders() {
        let mut buf = [0u8; 16];
        for &endian in &[Endianness::Big, Endianness::Little] {
            for &bytes in &[1u8, 2, 4, 8] {
                let v = 0x0123_4567_89AB_CDEFu64 & mask(bytes);
                write_uint(&mut buf, 3, bytes, endian, v);
                assert_eq!(read_uint(&buf, 3, bytes, endian), v);
            }
        }
    }

    fn mask(bytes: u8) -> u64 {
        if bytes >= 8 {
            u64::MAX
        } else {
            (1u64 << (bytes as u32 * 8)) - 1
        }
    }

    #[test]
    fn big_endian_layout_is_msb_first() {
        let mut buf = [0u8; 4];
        write_uint(&mut buf, 0, 4, Endianness::Big, 0x0A0B0C0D);
        assert_eq!(buf, [0x0A, 0x0B, 0x0C, 0x0D]);
        write_uint(&mut buf, 0, 4, Endianness::Little, 0x0A0B0C0D);
        assert_eq!(buf, [0x0D, 0x0C, 0x0B, 0x0A]);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend(0xFF, 1), -1);
        assert_eq!(sign_extend(0x7F, 1), 127);
        assert_eq!(sign_extend(0x8000, 2), i16::MIN as i64);
        assert_eq!(sign_extend(0xFFFF_FFFF, 4), -1);
        assert_eq!(sign_extend(u64::MAX, 8), -1);
    }

    #[test]
    fn read_int_negative_values() {
        let mut buf = [0u8; 8];
        write_uint(&mut buf, 0, 4, Endianness::Big, (-42i32) as u32 as u64);
        assert_eq!(read_int(&buf, 0, 4, Endianness::Big), -42);
    }

    #[test]
    fn float_round_trip() {
        let mut buf = [0u8; 8];
        for &endian in &[Endianness::Big, Endianness::Little] {
            write_float(&mut buf, 0, 8, endian, -1234.5678);
            assert_eq!(read_float(&buf, 0, 8, endian), -1234.5678);
            write_float(&mut buf, 0, 4, endian, 0.5);
            assert_eq!(read_float(&buf, 0, 4, endian), 0.5);
        }
    }

    #[test]
    fn float_narrowing_goes_through_f32() {
        let mut buf = [0u8; 4];
        write_float(&mut buf, 0, 4, Endianness::Big, 0.1);
        assert_eq!(read_float(&buf, 0, 4, Endianness::Big), 0.1f32 as f64);
    }

    #[test]
    fn range_checks() {
        assert!(fits_signed(127, 1));
        assert!(!fits_signed(128, 1));
        assert!(fits_signed(-128, 1));
        assert!(!fits_signed(-129, 1));
        assert!(fits_signed(i64::MIN, 8));
        assert!(fits_unsigned(255, 1));
        assert!(!fits_unsigned(256, 1));
        assert!(fits_unsigned(u64::MAX, 8));
    }
}
