//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! * `conversion_backend` — interpreted vs naive DCG vs optimized DCG
//!   (quantifies both the DCG win and the peephole win separately),
//! * `extension_position` — unexpected field prepended (worst case, all
//!   offsets shift) vs appended (the paper's recommended evolution, §4.4
//!   last paragraph: "adding any additional [fields] at the end … would
//!   minimize the overhead"),
//! * `dcg_compile_cost` — the one-time code-generation cost that per-record
//!   savings amortize (§3: "one-time costs of generating binary code …
//!   far outweigh the costs of continually interpreting").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbio::{CodegenMode, DcgConverter, Plan};
use pbio_bench::workloads::{
    extended_schema_appended, extended_schema_prepended, extended_value, workload, MsgSize,
};
use pbio_bench::{prepare, WireFormat};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use std::sync::Arc;
use std::time::Duration;

fn conversion_backend(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("ablation_conversion_backend");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [MsgSize::K1, MsgSize::K100] {
        for fmt in [
            WireFormat::PbioInterp,
            WireFormat::PbioDcgNaive,
            WireFormat::PbioDcg,
        ] {
            let w = workload(size);
            let mut pb = prepare(fmt, &w.schema, &w.schema, x86, sparc, &w.value);
            g.bench_function(BenchmarkId::new(fmt.label(), size.label()), |b| {
                b.iter(|| (pb.decode)())
            });
        }
    }
    g.finish();
}

fn extension_position(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let mut g = c.benchmark_group("ablation_extension_position");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [MsgSize::K1, MsgSize::K100] {
        let w = workload(size);
        let v = extended_value(&w.value);
        // Homogeneous exchange, so the only conversion cost is the mismatch.
        let pre = extended_schema_prepended(&w.schema);
        let mut pb_pre = prepare(WireFormat::PbioDcg, &pre, &w.schema, sparc, sparc, &v);
        g.bench_function(
            BenchmarkId::new("prepended_worst_case", size.label()),
            |b| b.iter(|| (pb_pre.decode)()),
        );
        let app = extended_schema_appended(&w.schema);
        let mut pb_app = prepare(WireFormat::PbioDcg, &app, &w.schema, sparc, sparc, &v);
        g.bench_function(
            BenchmarkId::new("appended_recommended", size.label()),
            |b| b.iter(|| (pb_app.decode)()),
        );
    }
    g.finish();
}

fn dcg_compile_cost(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("ablation_dcg_compile_cost");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [MsgSize::K1, MsgSize::K100] {
        let w = workload(size);
        let slay = Arc::new(Layout::of(&w.schema, x86).unwrap());
        let dlay = Arc::new(Layout::of(&w.schema, sparc).unwrap());
        let plan = Arc::new(Plan::build(slay, dlay));
        for (label, mode) in [
            ("naive", CodegenMode::Naive),
            ("optimized", CodegenMode::Optimized),
        ] {
            let plan = plan.clone();
            g.bench_function(BenchmarkId::new(label, size.label()), |b| {
                b.iter(|| {
                    DcgConverter::compile(plan.clone(), mode)
                        .unwrap()
                        .program()
                        .len()
                })
            });
        }
    }
    g.finish();
}

fn filter_backend(c: &mut Criterion) {
    use pbio_chan::{FilterProgram, Predicate};
    use pbio_types::value::encode_native;

    let sparc = &ArchProfile::SPARC_V8;
    let w = workload(MsgSize::K1);
    let layout = Arc::new(Layout::of(&w.schema, sparc).unwrap());
    let bytes = encode_native(&w.value, &layout).unwrap();
    let pred = Predicate::gt("time", 1.0)
        .and(Predicate::ne("seq", 0))
        .or(Predicate::eq("valid", true));
    let prog = FilterProgram::compile(pred, layout).unwrap();

    let mut g = c.benchmark_group("ablation_filter_backend");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    g.bench_function("compiled", |b| b.iter(|| prog.matches(&bytes).unwrap()));
    g.bench_function("interpreted", |b| {
        b.iter(|| prog.matches_interpreted(&bytes).unwrap())
    });
    g.finish();
}

fn bounds_checking(c: &mut Criterion) {
    use pbio_types::value::encode_native;

    // Per-access checked dispatch vs the single up-front bounds check the
    // static analysis enables (validate-once / run-fast).
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("ablation_bounds_checking");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in [MsgSize::K1, MsgSize::K100] {
        let w = workload(size);
        let slay = Arc::new(Layout::of(&w.schema, x86).unwrap());
        let dlay = Arc::new(Layout::of(&w.schema, sparc).unwrap());
        let wire = encode_native(&w.value, &slay).unwrap();
        let plan = Arc::new(Plan::build(slay, dlay.clone()));
        let conv = DcgConverter::compile(plan, CodegenMode::Optimized).unwrap();
        let extents = conv.extents().expect("fixed records compile straight-line");
        let prog = conv.program().clone();
        let mut out = vec![0u8; dlay.size()];
        g.bench_function(BenchmarkId::new("per_access_checked", size.label()), |b| {
            b.iter(|| pbio_vrisc::run(&prog, &wire, &mut out, &[]).unwrap())
        });
        g.bench_function(BenchmarkId::new("single_check", size.label()), |b| {
            b.iter(|| pbio_vrisc::run_straightline(&prog, &extents, &wire, &mut out).unwrap())
        });
    }
    g.finish();
}

fn var_length_records(c: &mut Criterion) {
    use pbio_bench::workloads::{particle_schema, particle_value};

    // Nested records + runtime-sized arrays + strings: the shapes MPI's
    // a-priori datatypes cannot express at all. Receive-side cost of the
    // formats that can.
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86_64;
    let schema = particle_schema();
    let mut g = c.benchmark_group("ablation_var_length_records");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for neighbors in [4usize, 256] {
        let value = particle_value(neighbors as u64, neighbors);
        for fmt in [WireFormat::PbioDcg, WireFormat::Cdr, WireFormat::Xml] {
            let mut pb = prepare(fmt, &schema, &schema, sparc, x86, &value);
            g.bench_function(
                BenchmarkId::new(fmt.label(), format!("{neighbors}nbrs")),
                |b| b.iter(|| (pb.decode)()),
            );
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    conversion_backend,
    extension_position,
    dcg_compile_cost,
    filter_backend,
    bounds_checking,
    var_length_records
);
criterion_main!(benches);
