//! Figure 3 — receive-side decoding costs on the Sparc (heterogeneous).
//!
//! Interpreted converters only, as in the paper's Figure 3: XML (streaming
//! parse + text→binary), MPICH (interpreted unpack into a separate buffer),
//! CORBA CDR (packed-stream unmarshal) and PBIO's table-driven interpreter.
//! Paper result: XML is 1-2 decimal orders of magnitude above PBIO; PBIO
//! beats MPICH partly by reusing its buffer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_types::arch::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("fig3_recv_decode_sparc");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in MsgSize::all() {
        for fmt in [
            WireFormat::Xml,
            WireFormat::Mpi,
            WireFormat::Cdr,
            WireFormat::PbioInterp,
        ] {
            let w = workload(size);
            // x86 sends, Sparc receives.
            let mut pb = prepare(fmt, &w.schema, &w.schema, x86, sparc, &w.value);
            g.bench_function(BenchmarkId::new(fmt.label(), size.label()), |b| {
                b.iter(|| (pb.decode)())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
