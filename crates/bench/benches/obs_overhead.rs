//! Observability overhead guard.
//!
//! The obs layer's contract is that instrumentation is cheap enough to
//! leave on: a span is two monotonic-clock reads and one sharded atomic
//! histogram record. This bench times the instrumented encode hot path
//! ([`pbio::Writer::write_value`], which wraps its encode in a span)
//! with spans enabled and with spans disabled (`pbio_obs::set_enabled`
//! turns `Span::enter` into a no-op), prints both, and in `--guard` mode
//! fails if the enabled path exceeds a generous noise bound over the
//! disabled one — a CI tripwire against accidentally putting locks or
//! allocation into the measurement path.
//!
//! The distributed-tracing machinery makes the same promise in the
//! other direction: with sampling *disabled* (modulus 0), the per-publish
//! decision is one relaxed atomic load — no allocation, no lock, and a
//! throughput cost lost in the noise. The second section measures the
//! encode loop with and without a disabled [`pbio_obs::TraceSampler`]
//! consulted per op, under a counting global allocator, and in `--guard`
//! mode fails if the sampler added any allocation or more than 1% + a
//! few ns of latency.
//!
//! The wire-tap capture plane repeats the promise a third time: with the
//! tap off, the per-frame decision is one relaxed atomic load
//! ([`TapState::enabled`]). The third section measures the encode loop
//! with and without a disabled tap consulted per op, under the same
//! allocator and bounds.
//!
//! Runs as a plain `harness = false` binary (like `fanout`): `--guard`
//! enforces the bound, the default just reports.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use pbio::Writer;
use pbio_bench::workloads::{workload, MsgSize};
use pbio_obs::TraceSampler;
use pbio_serv::tap::{TapMode, TapState};
use pbio_types::arch::ArchProfile;

/// Iterations per timed repetition.
const ITERS: u32 = 30_000;
/// Repetitions; the minimum is reported (least-noise estimate).
const REPS: usize = 7;

/// [`System`] allocator with an allocation counter, so the guard can
/// assert a code path allocates exactly as much as its baseline.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// ns/op and allocations/rep for one encode pass over the workload
/// record — the span-gating comparison, re-run with spans toggled.
fn measure() -> (f64, u64) {
    let w = workload(MsgSize::B100);
    let mut writer = Writer::new(&ArchProfile::X86_64);
    let id = writer.register(&w.schema).expect("register");
    let mut out = Vec::with_capacity(4096);
    // Warm the pool and the format announcement out of the timed region.
    for _ in 0..1_000 {
        out.clear();
        writer.write_value(id, &w.value, &mut out).expect("encode");
    }
    let mut best = f64::INFINITY;
    let mut allocs = u64::MAX;
    for _ in 0..REPS {
        let before = ALLOCS.load(Ordering::Relaxed);
        let start = Instant::now();
        for _ in 0..ITERS {
            out.clear();
            writer.write_value(id, &w.value, &mut out).expect("encode");
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
        best = best.min(ns);
        allocs = allocs.min(ALLOCS.load(Ordering::Relaxed) - before);
    }
    (best, allocs)
}

/// Baseline encode vs encode + a per-op probe (a disabled sampler or a
/// disabled tap check), measured as *interleaved* repetition pairs: two
/// long sequential phases would let clock-frequency drift (thermal
/// throttling, co-tenant load) bias a 1% bound, whereas alternating reps
/// exposes both variants to the same drift and each keeps its own
/// minimum. The probe must return `false` — it models a disabled path.
fn measure_vs(probe: &dyn Fn() -> bool) -> ((f64, u64), (f64, u64)) {
    let w = workload(MsgSize::B100);
    let mut writer = Writer::new(&ArchProfile::X86_64);
    let id = writer.register(&w.schema).expect("register");
    let mut out = Vec::with_capacity(4096);
    for _ in 0..1_000 {
        out.clear();
        writer.write_value(id, &w.value, &mut out).expect("encode");
    }
    let mut base = (f64::INFINITY, u64::MAX);
    let mut traced = (f64::INFINITY, u64::MAX);
    for _ in 0..REPS {
        for with_probe in [false, true] {
            let before = ALLOCS.load(Ordering::Relaxed);
            let start = Instant::now();
            for _ in 0..ITERS {
                out.clear();
                writer.write_value(id, &w.value, &mut out).expect("encode");
                if with_probe && black_box(probe()) {
                    unreachable!("disabled probe never fires");
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
            let allocs = ALLOCS.load(Ordering::Relaxed) - before;
            let slot = if with_probe { &mut traced } else { &mut base };
            slot.0 = slot.0.min(ns);
            slot.1 = slot.1.min(allocs);
        }
    }
    (base, traced)
}

fn main() {
    let guard = std::env::args().any(|a| a == "--guard");
    let mut failed = false;

    pbio_obs::set_enabled(true);
    let (enabled_ns, _) = measure();
    pbio_obs::set_enabled(false);
    let (disabled_ns, _) = measure();
    pbio_obs::set_enabled(true);

    let delta = enabled_ns - disabled_ns;
    let ratio = enabled_ns / disabled_ns;
    println!("encode with spans enabled:  {enabled_ns:>8.1} ns/op");
    println!("encode with spans disabled: {disabled_ns:>8.1} ns/op");
    println!("overhead: {delta:+.1} ns/op ({ratio:.3}x)");

    // Span cost is ~two clock reads + one atomic histogram record; the
    // bound is deliberately loose so scheduler noise cannot trip it, while
    // a lock or allocation smuggled into the span path still will.
    if guard && delta > 300.0 && ratio > 2.0 {
        eprintln!("GUARD FAILED: span overhead exceeds noise bound");
        failed = true;
    }

    let sampler = TraceSampler::new(0);
    let ((base_ns, base_allocs), (traced_ns, traced_allocs)) = measure_vs(&|| sampler.try_sample());

    let delta = traced_ns - base_ns;
    let ratio = traced_ns / base_ns;
    println!("\nencode without sampler:     {base_ns:>8.1} ns/op ({base_allocs} allocs/rep)");
    println!("encode + disabled sampler:  {traced_ns:>8.1} ns/op ({traced_allocs} allocs/rep)");
    println!("tracing-off overhead: {delta:+.1} ns/op ({ratio:.3}x)");

    // The disabled path is one relaxed load: any extra allocation is a
    // regression outright, and the latency bound is 1% plus a few ns of
    // slack (1% of a ~100 ns op is below timer noise on its own).
    if guard && traced_allocs > base_allocs {
        eprintln!(
            "GUARD FAILED: disabled sampler allocated \
             ({traced_allocs} vs {base_allocs} allocs/rep)"
        );
        failed = true;
    }
    if guard && delta > 20.0 && ratio > 1.01 {
        eprintln!("GUARD FAILED: disabled sampler exceeds 1% throughput bound");
        failed = true;
    }

    let tap = TapState::new(TapMode::Off, 16);
    let ((base_ns, base_allocs), (tapped_ns, tapped_allocs)) = measure_vs(&|| tap.enabled());

    let delta = tapped_ns - base_ns;
    let ratio = tapped_ns / base_ns;
    println!("\nencode without tap check:   {base_ns:>8.1} ns/op ({base_allocs} allocs/rep)");
    println!("encode + disabled tap:      {tapped_ns:>8.1} ns/op ({tapped_allocs} allocs/rep)");
    println!("tap-off overhead: {delta:+.1} ns/op ({ratio:.3}x)");

    // Same contract as the sampler: the tap-disabled decision is one
    // relaxed load per frame, so zero added allocations and within the
    // 1% + slack latency bound.
    if guard && tapped_allocs > base_allocs {
        eprintln!(
            "GUARD FAILED: disabled tap allocated \
             ({tapped_allocs} vs {base_allocs} allocs/rep)"
        );
        failed = true;
    }
    if guard && delta > 20.0 && ratio > 1.01 {
        eprintln!("GUARD FAILED: disabled tap exceeds 1% throughput bound");
        failed = true;
    }

    if guard {
        if failed {
            std::process::exit(1);
        }
        println!("\nGUARD OK");
    }
}
