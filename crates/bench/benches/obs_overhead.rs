//! Observability overhead guard.
//!
//! The obs layer's contract is that instrumentation is cheap enough to
//! leave on: a span is two monotonic-clock reads and one sharded atomic
//! histogram record. This bench times the instrumented encode hot path
//! ([`pbio::Writer::write_value`], which wraps its encode in a span)
//! with spans enabled and with spans disabled (`pbio_obs::set_enabled`
//! turns `Span::enter` into a no-op), prints both, and in `--guard` mode
//! fails if the enabled path exceeds a generous noise bound over the
//! disabled one — a CI tripwire against accidentally putting locks or
//! allocation into the measurement path.
//!
//! Runs as a plain `harness = false` binary (like `fanout`): `--guard`
//! enforces the bound, the default just reports.

use std::time::Instant;

use pbio::Writer;
use pbio_bench::workloads::{workload, MsgSize};
use pbio_types::arch::ArchProfile;

/// Iterations per timed repetition.
const ITERS: u32 = 30_000;
/// Repetitions; the minimum is reported (least-noise estimate).
const REPS: usize = 7;

/// ns/op for one encode pass over the workload record.
fn measure() -> f64 {
    let w = workload(MsgSize::B100);
    let mut writer = Writer::new(&ArchProfile::X86_64);
    let id = writer.register(&w.schema).expect("register");
    let mut out = Vec::with_capacity(4096);
    // Warm the pool and the format announcement out of the timed region.
    for _ in 0..1_000 {
        out.clear();
        writer.write_value(id, &w.value, &mut out).expect("encode");
    }
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..ITERS {
            out.clear();
            writer.write_value(id, &w.value, &mut out).expect("encode");
        }
        let ns = start.elapsed().as_nanos() as f64 / f64::from(ITERS);
        best = best.min(ns);
    }
    best
}

fn main() {
    let guard = std::env::args().any(|a| a == "--guard");

    pbio_obs::set_enabled(true);
    let enabled_ns = measure();
    pbio_obs::set_enabled(false);
    let disabled_ns = measure();
    pbio_obs::set_enabled(true);

    let delta = enabled_ns - disabled_ns;
    let ratio = enabled_ns / disabled_ns;
    println!("encode with spans enabled:  {enabled_ns:>8.1} ns/op");
    println!("encode with spans disabled: {disabled_ns:>8.1} ns/op");
    println!("overhead: {delta:+.1} ns/op ({ratio:.3}x)");

    // Span cost is ~two clock reads + one atomic histogram record; the
    // bound is deliberately loose so scheduler noise cannot trip it, while
    // a lock or allocation smuggled into the span path still will.
    if guard && delta > 300.0 && ratio > 2.0 {
        eprintln!("GUARD FAILED: span overhead exceeds noise bound");
        std::process::exit(1);
    }
    if guard {
        println!("GUARD OK");
    }
}
