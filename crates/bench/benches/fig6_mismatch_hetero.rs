//! Figure 6 — receiver-side decoding with and without an unexpected field,
//! heterogeneous case (x86 sender, Sparc receiver).
//!
//! The sender's format carries one extra field *before* all expected fields
//! (worst case: every expected offset shifts). The paper's result: "the
//! extra field has no effect upon the receive-side performance" — a
//! conversion was happening anyway, and the generated routine simply reads
//! from different offsets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbio_bench::workloads::{extended_schema_prepended, extended_value, workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_types::arch::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("fig6_mismatch_hetero");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in MsgSize::all() {
        let w = workload(size);
        let mut matched = prepare(
            WireFormat::PbioDcg,
            &w.schema,
            &w.schema,
            x86,
            sparc,
            &w.value,
        );
        g.bench_function(BenchmarkId::new("matched", size.label()), |b| {
            b.iter(|| (matched.decode)())
        });
        let ext = extended_schema_prepended(&w.schema);
        let v = extended_value(&w.value);
        let mut mism = prepare(WireFormat::PbioDcg, &ext, &w.schema, x86, sparc, &v);
        g.bench_function(BenchmarkId::new("mismatched", size.label()), |b| {
            b.iter(|| (mism.decode)())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
