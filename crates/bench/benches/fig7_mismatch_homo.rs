//! Figure 7 — receiver-side decoding with and without an unexpected field,
//! homogeneous case (Sparc to Sparc).
//!
//! Matched formats take PBIO's zero-copy path (no conversion at all); the
//! unexpected field creates a layout mismatch that forces the generated
//! conversion routine to relocate fields. The paper: "the resulting overhead
//! is non-negligible … roughly comparable to the cost of a memcpy operation
//! for the same amount of data".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbio_bench::workloads::{extended_schema_prepended, extended_value, workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_types::arch::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let mut g = c.benchmark_group("fig7_mismatch_homo");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in MsgSize::all() {
        let w = workload(size);
        let mut matched = prepare(
            WireFormat::PbioDcg,
            &w.schema,
            &w.schema,
            sparc,
            sparc,
            &w.value,
        );
        g.bench_function(BenchmarkId::new("matched_zero_copy", size.label()), |b| {
            b.iter(|| (matched.decode)())
        });
        let ext = extended_schema_prepended(&w.schema);
        let v = extended_value(&w.value);
        let mut mism = prepare(WireFormat::PbioDcg, &ext, &w.schema, sparc, sparc, &v);
        g.bench_function(BenchmarkId::new("mismatched", size.label()), |b| {
            b.iter(|| (mism.decode)())
        });
        // The paper compares the mismatch overhead to a memcpy of the same
        // amount of data: include that as a reference series.
        let layout = pbio_types::layout::Layout::of(&w.schema, sparc).unwrap();
        let src = vec![7u8; layout.size()];
        let mut dst = vec![0u8; layout.size()];
        g.bench_function(BenchmarkId::new("memcpy_reference", size.label()), |b| {
            b.iter(|| {
                dst.copy_from_slice(&src);
                std::hint::black_box(dst.len());
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
