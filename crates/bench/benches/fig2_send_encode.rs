//! Figure 2 — send-side encoding times on the Sparc.
//!
//! Compares the per-record sender cost of XML, MPICH-model, CORBA CDR and
//! PBIO (NDR) across the paper's four message sizes. The paper's result:
//! MPICH costs grow from 34 µs to 13 ms with record size; PBIO is flat
//! (~3 µs) because NDR transmits the sender's native bytes untouched.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_types::arch::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("fig2_send_encode_sparc");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in MsgSize::all() {
        for fmt in [
            WireFormat::Xml,
            WireFormat::Mpi,
            WireFormat::Cdr,
            WireFormat::PbioDcg,
        ] {
            let w = workload(size);
            let mut pb = prepare(fmt, &w.schema, &w.schema, sparc, x86, &w.value);
            g.bench_function(BenchmarkId::new(fmt.label(), size.label()), |b| {
                b.iter(|| (pb.encode)())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
