//! Figure 4 — receiver-side costs: interpreted conversions (MPICH, PBIO)
//! vs dynamically generated conversions (PBIO DCG).
//!
//! The paper's key performance result: "the dynamically generated conversion
//! routine operates significantly faster than the interpreted version …
//! bringing it down to near the level of a copy operation" (§4.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_types::arch::ArchProfile;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let mut g = c.benchmark_group("fig4_dcg_decode_sparc");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for size in MsgSize::all() {
        for fmt in [WireFormat::Mpi, WireFormat::PbioInterp, WireFormat::PbioDcg] {
            let w = workload(size);
            let mut pb = prepare(fmt, &w.schema, &w.schema, x86, sparc, &w.value);
            g.bench_function(BenchmarkId::new(fmt.label(), size.label()), |b| {
                b.iter(|| (pb.decode)())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
