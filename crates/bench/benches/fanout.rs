//! Fan-out benchmark: one publisher, N subscribers, one daemon.
//!
//! Measures the serv/net/core delivery path end to end over loopback TCP:
//! events/sec (publisher clock: first publish until every subscriber has
//! received every event) and heap allocations per published event, counted
//! by a wrapping global allocator across the whole process — daemon fan-out,
//! reactor flushes and subscriber decode included. The allocation count is
//! the tentpole metric: with shared event buffers it must stay O(1) in the
//! subscriber count instead of O(subscribers).
//!
//! Runs as a plain `harness = false` binary. `--smoke` runs one tiny
//! configuration (CI bit-rot check); the default sweep is 1 / 8 / 64
//! subscribers, homogeneous (subscriber arch == publisher arch, zero-copy
//! receive) and heterogeneous (big-endian subscribers, DCG-converted
//! receive).

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio_bench::cli::json_object;
use pbio_bench::workloads::{workload, MsgSize};
use pbio_serv::{
    home_of, ClientConfig, MeshConfig, ServClient, ServConfig, ServDaemon, StoreConfig, TapConfig,
    TraceConfig,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::encode_native;

// ---------------------------------------------------------------------------
// Counting allocator: every alloc/realloc in the process bumps one counter.

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------

const CHANNEL: &str = "fanout-bench";
const CASE_DEADLINE: Duration = Duration::from_secs(120);

struct CaseResult {
    subscribers: usize,
    heterogeneous: bool,
    events: u64,
    events_per_sec: f64,
    deliveries_per_sec: f64,
    allocs_per_event: f64,
    capture_bytes: u64,
}

/// Total file bytes under a capture directory (recursive: the store
/// lays segment files out in per-channel subdirectories).
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| {
            let path = e.path();
            if path.is_dir() {
                dir_bytes(&path)
            } else {
                e.metadata().map_or(0, |m| m.len())
            }
        })
        .sum()
}

/// Wait until every per-subscriber counter reaches `target`.
fn wait_for(counters: &[Arc<AtomicU64>], target: u64, start: Instant, what: &str) {
    loop {
        if counters.iter().all(|c| c.load(Ordering::Acquire) >= target) {
            return;
        }
        if start.elapsed() > CASE_DEADLINE {
            let got: Vec<u64> = counters.iter().map(|c| c.load(Ordering::Acquire)).collect();
            panic!("timed out waiting for {what}: want {target} per subscriber, got {got:?}");
        }
        std::thread::yield_now();
    }
}

fn run_case(
    subscribers: usize,
    heterogeneous: bool,
    warmup: u64,
    events: u64,
    tap_dir: Option<std::path::PathBuf>,
) -> CaseResult {
    let pub_profile = ArchProfile::X86_64;
    let sub_profile = if heterogeneous {
        ArchProfile::SPARC_V8
    } else {
        ArchProfile::X86_64
    };

    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: (warmup + events) as usize + 64,
            // The allocation count below must see only the event path,
            // not a concurrent stats publisher.
            stats_interval: None,
            // Ditto for tracing: the guard measures the disabled path.
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            // The tap ring must absorb the whole burst: a drop would
            // understate capture bytes/event.
            tap: tap_dir.clone().map(|dir| TapConfig {
                ring_capacity: ((warmup + events) as usize * (subscribers + 1) + 1024).max(4096),
                ..TapConfig::new(dir)
            }),
            ..ServConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total = warmup + events;
    let received: Vec<Arc<AtomicU64>> = (0..subscribers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));

    let mut sub_threads = Vec::with_capacity(subscribers);
    for counter in &received {
        let counter = Arc::clone(counter);
        let schema = w.schema.clone();
        let profile = sub_profile.clone();
        let ready = ready.clone();
        sub_threads.push(std::thread::spawn(move || {
            let mut client = ServClient::connect(addr, &profile).expect("subscriber connect");
            let chan = client.open_channel(CHANNEL).expect("open channel");
            client.subscribe(chan, &schema, None).expect("subscribe");
            ready.fetch_add(1, Ordering::Release);
            let start = Instant::now();
            while counter.load(Ordering::Acquire) < total {
                match client.poll(Duration::from_millis(200)) {
                    Ok(Some(_event)) => {
                        counter.fetch_add(1, Ordering::Release);
                    }
                    Ok(None) => {
                        if start.elapsed() > CASE_DEADLINE {
                            panic!("subscriber starved");
                        }
                    }
                    Err(e) => panic!("subscriber poll failed: {e}"),
                }
            }
            client.disconnect().expect("disconnect");
        }));
    }

    let mut publisher = ServClient::connect(addr, &pub_profile).expect("publisher connect");
    let chan = publisher.open_channel(CHANNEL).expect("open channel");
    let fmt = publisher.register_format(&w.schema).expect("register");
    let layout = Layout::of(&w.schema, &pub_profile).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");

    let setup_start = Instant::now();
    while ready.load(Ordering::Acquire) < subscribers {
        if setup_start.elapsed() > CASE_DEADLINE {
            panic!("subscribers failed to subscribe in time");
        }
        std::thread::yield_now();
    }

    // Warmup: announce the format everywhere, compile conversions, open
    // TCP windows — steady state is what we want to measure.
    for _ in 0..warmup {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, warmup, setup_start, "warmup delivery");

    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, total, t0, "measured delivery");
    let elapsed = t0.elapsed();
    let allocs_after = ALLOCATIONS.load(Ordering::Relaxed);

    for t in sub_threads {
        t.join().expect("subscriber thread");
    }
    publisher.disconnect().expect("publisher disconnect");

    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "benchmark must run drop-free: {stats:?}");
    daemon.shutdown();
    let capture_bytes = tap_dir.as_deref().map_or(0, dir_bytes);

    let secs = elapsed.as_secs_f64();
    CaseResult {
        subscribers,
        heterogeneous,
        events,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: (events as f64 * subscribers as f64) / secs,
        allocs_per_event: (allocs_after - allocs_before) as f64 / events as f64,
        capture_bytes,
    }
}

/// `--durable` mode: the same fan-out topology over a *durable* channel.
///
/// Three numbers per case, all of which EXPERIMENTS.md tracks:
/// * **live events/s** — publisher clock from first measured publish
///   until every subscriber has every event *and* every publish has been
///   acked durable (the honest durable-path throughput: fan-out plus the
///   store writer thread plus the ack round-trip);
/// * **replay events/s** — a fresh `subscribe_from(0)` client draining
///   the whole log from disk;
/// * **disk bytes/event** — segment-file bytes on disk (entry framing,
///   CRCs and per-segment format metas included) over total events.
fn run_durable_case(subscribers: usize, warmup: u64, events: u64) {
    let dir = std::env::temp_dir().join(format!(
        "pbio-fanout-durable-{}-{subscribers}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: (warmup + events) as usize + 64,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            durability: Some(StoreConfig::new(dir.clone())),
            ..ServConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total = warmup + events;
    let received: Vec<Arc<AtomicU64>> = (0..subscribers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));
    let mut sub_threads = Vec::with_capacity(subscribers);
    for counter in &received {
        let counter = Arc::clone(counter);
        let schema = w.schema.clone();
        let ready = ready.clone();
        sub_threads.push(std::thread::spawn(move || {
            let mut client =
                ServClient::connect(addr, &ArchProfile::X86_64).expect("subscriber connect");
            let chan = client.open_channel(CHANNEL).expect("open channel");
            client.subscribe(chan, &schema, None).expect("subscribe");
            ready.fetch_add(1, Ordering::Release);
            let start = Instant::now();
            while counter.load(Ordering::Acquire) < total {
                match client.poll(Duration::from_millis(200)) {
                    Ok(Some(_event)) => {
                        counter.fetch_add(1, Ordering::Release);
                    }
                    Ok(None) => {
                        if start.elapsed() > CASE_DEADLINE {
                            panic!("subscriber starved");
                        }
                    }
                    Err(e) => panic!("subscriber poll failed: {e}"),
                }
            }
            client.disconnect().expect("disconnect");
        }));
    }

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
    assert!(publisher.durable_negotiated(), "daemon grants CAP_DURABLE");
    let chan = publisher
        .open_channel_durable(CHANNEL)
        .expect("open channel");
    let fmt = publisher.register_format(&w.schema).expect("register");
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");

    let setup_start = Instant::now();
    while ready.load(Ordering::Acquire) < subscribers {
        if setup_start.elapsed() > CASE_DEADLINE {
            panic!("subscribers failed to subscribe in time");
        }
        std::thread::yield_now();
    }
    for _ in 0..warmup {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, warmup, setup_start, "warmup delivery");

    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, total, t0, "measured delivery");
    // The durable clock stops only once every publish is acked on disk.
    while publisher.stats().publishes_acked < total {
        if t0.elapsed() > CASE_DEADLINE {
            panic!(
                "acks stalled at {}/{total}",
                publisher.stats().publishes_acked
            );
        }
        let _ = publisher.poll(Duration::from_millis(50)).expect("poll");
    }
    let live_secs = t0.elapsed().as_secs_f64();

    for t in sub_threads {
        t.join().expect("subscriber thread");
    }

    let log = daemon
        .store()
        .expect("durable daemon has a store")
        .channel(CHANNEL)
        .expect("open channel log");
    let disk_bytes = log.disk_bytes().expect("disk bytes") as f64 / total as f64;

    // Replay path: a fresh subscriber drains the entire log from disk.
    let mut replayer = ServClient::connect(addr, &ArchProfile::X86_64).expect("replayer connect");
    let r_chan = replayer.open_channel(CHANNEL).expect("open channel");
    let r0 = Instant::now();
    replayer
        .subscribe_from(r_chan, &w.schema, 0)
        .expect("subscribe_from");
    let mut replayed = 0u64;
    while replayed < total {
        match replayer.poll(Duration::from_millis(200)) {
            Ok(Some(_event)) => replayed += 1,
            Ok(None) => {
                if r0.elapsed() > CASE_DEADLINE {
                    panic!("replay starved at {replayed}/{total}");
                }
            }
            Err(e) => panic!("replay poll failed: {e}"),
        }
    }
    let replay_secs = r0.elapsed().as_secs_f64();
    replayer.disconnect().expect("replayer disconnect");
    publisher.disconnect().expect("publisher disconnect");

    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "benchmark must run drop-free: {stats:?}");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "| {:>4} | {:>13.0} | {:>11.0} | {:>12.1} |",
        subscribers,
        events as f64 / live_secs,
        total as f64 / replay_secs,
        disk_bytes,
    );
}

/// `--subs` mode: connection scaling. Same topology as the default sweep
/// (one publisher, N subscribers, homogeneous), but N climbs into the
/// thousands and the interesting numbers change: events/s, the per-event
/// and per-delivery cost in µs, and how many OS threads the daemon needs
/// to serve N connections. With the sharded reactor core that last column
/// must stay O(shards) — it is the whole point of the measurement.
fn run_subs_case(subscribers: usize, warmup: u64, events: u64) {
    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: (warmup + events) as usize + 64,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            // Fixed so the thread-count column is comparable across
            // machines (and across rows on CI runners of any width).
            shards: 4,
            ..ServConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total = warmup + events;
    let received: Vec<Arc<AtomicU64>> = (0..subscribers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));
    let mut sub_threads = Vec::with_capacity(subscribers);
    for counter in &received {
        let counter = Arc::clone(counter);
        let schema = w.schema.clone();
        let ready = ready.clone();
        // Thousands of subscriber threads are the *load generator*, not
        // the system under test; small stacks keep the harness cheap.
        let t = std::thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(move || {
                let mut client =
                    ServClient::connect(addr, &ArchProfile::X86_64).expect("subscriber connect");
                let chan = client.open_channel(CHANNEL).expect("open channel");
                client.subscribe(chan, &schema, None).expect("subscribe");
                ready.fetch_add(1, Ordering::Release);
                let start = Instant::now();
                while counter.load(Ordering::Acquire) < total {
                    match client.poll(Duration::from_millis(200)) {
                        Ok(Some(_event)) => {
                            counter.fetch_add(1, Ordering::Release);
                        }
                        Ok(None) => {
                            if start.elapsed() > CASE_DEADLINE {
                                panic!("subscriber starved");
                            }
                        }
                        Err(e) => panic!("subscriber poll failed: {e}"),
                    }
                }
                client.disconnect().expect("disconnect");
            })
            .expect("spawn subscriber");
        sub_threads.push(t);
    }

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
    let chan = publisher.open_channel(CHANNEL).expect("open channel");
    let fmt = publisher.register_format(&w.schema).expect("register");
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");

    let setup_start = Instant::now();
    while ready.load(Ordering::Acquire) < subscribers {
        if setup_start.elapsed() > CASE_DEADLINE {
            panic!("subscribers failed to subscribe in time");
        }
        std::thread::yield_now();
    }
    for _ in 0..warmup {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, warmup, setup_start, "warmup delivery");

    // Sampled while every subscriber connection is live.
    let daemon_threads = daemon.thread_count();

    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, total, t0, "measured delivery");
    let elapsed = t0.elapsed();

    for t in sub_threads {
        t.join().expect("subscriber thread");
    }
    publisher.disconnect().expect("publisher disconnect");
    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "benchmark must run drop-free: {stats:?}");
    daemon.shutdown();

    let secs = elapsed.as_secs_f64();
    let per_event_us = secs * 1e6 / events as f64;
    let per_delivery_us = per_event_us / subscribers as f64;
    println!(
        "| {:>4} | {:>8.0} | {:>11.1} | {:>14.3} | {:>14} |",
        subscribers,
        events as f64 / secs,
        per_event_us,
        per_delivery_us,
        daemon_threads,
    );
}

/// `--faults seed=N` mode: the same topology (one publisher, two
/// subscribers, one daemon) with every daemon connection wrapped in the
/// seeded deterministic fault plan — torn writes, read stalls, byte
/// corruption, and (odd seeds) mid-stream disconnects. Not a
/// measurement: a reproducible crash-recovery exercise. Resume clients
/// must ride out whatever the seed injects, and every delivered event is
/// still a valid record; damage shows up only in the printed counters.
fn run_fault_case(seed: u64, events: u64, tap: bool) {
    let tap_dir = tap.then(|| {
        let dir = std::env::temp_dir().join(format!(
            "pbio-fanout-fault-tap-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            fault_seed: Some(seed),
            // Deep queues: losses in this mode should come from the fault
            // plan, not from drop-oldest backpressure.
            queue_capacity: events as usize + 64,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            // Aggressive liveness so a connection severed by the plan is
            // detected, evicted, and resumed within the run, not after it.
            heartbeat_ping: Duration::from_millis(250),
            heartbeat_dead: Duration::from_millis(750),
            stall_budget: Duration::from_millis(250),
            durability: None,
            shards: 0,
            max_replay: 32,
            flight_capacity: 256,
            flight_dump: None,
            tap: tap_dir.clone().map(|dir| TapConfig {
                ring_capacity: (events as usize * 4).max(4096),
                ..TapConfig::new(dir)
            }),
            pin_shards: false,
            peers: None,
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();
    let resume = ClientConfig {
        resume: true,
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(250),
        ..ClientConfig::default()
    };
    // Connecting runs through the faulty transport too; each retry is a
    // fresh connection with its own derived plan.
    let connect = move |profile: &ArchProfile| -> ServClient {
        for _ in 0..10 {
            if let Ok(c) = ServClient::connect_with(addr, profile, resume.clone()) {
                return c;
            }
        }
        panic!("seed {seed}: no session within 10 attempts");
    };

    let done = Arc::new(AtomicUsize::new(0));
    let mut sub_threads = Vec::new();
    for profile in [ArchProfile::X86_64, ArchProfile::SPARC_V8] {
        let schema = w.schema.clone();
        let done = Arc::clone(&done);
        let connect = connect.clone();
        sub_threads.push(std::thread::spawn(move || {
            let mut client = connect(&profile);
            let chan = loop {
                if let Ok(c) = client.open_channel(CHANNEL) {
                    break c;
                }
                std::thread::sleep(Duration::from_millis(10));
            };
            while client.subscribe(chan, &schema, None).is_err() {
                std::thread::sleep(Duration::from_millis(10));
            }
            let mut delivered = 0u64;
            let mut errors = 0u64;
            let mut quiet = 0u32;
            let deadline = Instant::now() + CASE_DEADLINE;
            // Keep draining until the publisher is done and the wire has
            // gone quiet; poll errors (a corrupted frame, a dropped
            // session mid-resume) are counted and survived.
            while quiet < 10 && Instant::now() < deadline {
                match client.poll(Duration::from_millis(200)) {
                    Ok(Some(_event)) => {
                        quiet = 0;
                        delivered += 1;
                    }
                    // Quiet only counts on a healthy session: a
                    // subscriber severed mid-run must finish its
                    // reconnect before it may call the wire drained.
                    Ok(None) => {
                        if done.load(Ordering::Acquire) == 1 && !client.in_outage() {
                            quiet += 1;
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            (delivered, errors, client.stats())
        }));
    }

    let mut publisher = connect(&ArchProfile::X86_64);
    let chan = loop {
        if let Ok(c) = publisher.open_channel(CHANNEL) {
            break c;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let fmt = loop {
        if let Ok(f) = publisher.register_format(&w.schema) {
            break f;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");
    let mut publish_errors = 0u64;
    for _ in 0..events {
        if publisher.publish(chan, fmt, &native).is_err() {
            publish_errors += 1;
        }
    }
    // Give an in-flight reconnect a chance to flush the outage buffer.
    let grace = Instant::now() + Duration::from_secs(3);
    while publisher.in_outage() && Instant::now() < grace {
        std::thread::sleep(Duration::from_millis(25));
        let _ = publisher.publish(chan, fmt, &native);
    }
    done.store(1, Ordering::Release);

    println!("fan-out under faults: seed {seed}, {events} events, 2 subscribers");
    println!("| peer        | delivered | errors | reconnects | rejected |");
    println!("|-------------|-----------|--------|------------|----------|");
    let p = publisher.stats();
    println!(
        "| publisher   | {:>9} | {:>6} | {:>10} | {:>8} |",
        p.publishes, publish_errors, p.reconnects, p.frames_rejected
    );
    for (i, t) in sub_threads.into_iter().enumerate() {
        let (delivered, errors, s) = t.join().expect("subscriber thread");
        println!(
            "| subscriber{i} | {delivered:>9} | {errors:>6} | {:>10} | {:>8} |",
            s.reconnects, s.frames_rejected
        );
    }
    let d = daemon.stats();
    println!(
        "daemon: rejected {} frames, dropped {} events, resumed {} sessions, \
         evicted {} dead / {} stalled",
        d.frames_rejected, d.dropped, d.resumes, d.evicted_dead, d.evicted_stalled
    );
    daemon.shutdown();

    // With the tap on, the capture itself must survive the fault plan:
    // torn tails may be truncated by recovery, but every frame that
    // reads back clean must actually decode — a corrupted record behind
    // a valid CRC would be a capture-path bug, not a wire fault.
    if let Some(dir) = tap_dir {
        let capture = pbio_serv::read_capture(&dir).expect("capture must recover and decode");
        println!(
            "capture under faults: {} frame(s) decoded clean, {} torn tail(s) truncated \
             ({} bytes)",
            capture.frames.len(),
            capture.torn_tails,
            capture.truncated_bytes
        );
        assert!(
            !capture.frames.is_empty(),
            "tap was enabled but captured nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// `--mesh N` mode: sharded channels over a daemon federation.

/// Bind `n` federated daemons (each one reactor shard, so added daemons
/// are the only added capacity) and fully cross-connect their peer
/// links.
fn mesh_bind(n: usize, queue: usize) -> Vec<ServDaemon> {
    let daemons: Vec<ServDaemon> = (0..n)
        .map(|i| {
            ServDaemon::bind_with(
                "127.0.0.1:0",
                ServConfig {
                    queue_capacity: queue,
                    stats_interval: None,
                    trace: TraceConfig {
                        sample_mod: 0,
                        publish_interval: None,
                        sink_capacity: 16,
                    },
                    shards: 1,
                    peers: Some(MeshConfig::new(i as u32, n as u32, Vec::new())),
                    ..ServConfig::default()
                },
            )
            .expect("bind mesh daemon")
        })
        .collect();
    for (i, d) in daemons.iter().enumerate() {
        for (j, peer) in daemons.iter().enumerate() {
            if i != j {
                assert!(d.connect_peer(j as u32, peer.local_addr().to_string()));
            }
        }
    }
    let t0 = Instant::now();
    while !daemons
        .iter()
        .all(|d| d.peer_stats().iter().all(|p| p.connected))
    {
        if t0.elapsed() > CASE_DEADLINE {
            panic!("mesh links failed to connect");
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    daemons
}

/// A channel name whose home is daemon `home` in a mesh of `size`.
fn mesh_chan_name(c: usize, home: u32, size: u32) -> String {
    (0..)
        .map(|k| format!("mesh-{c}-{k}"))
        .find(|n| home_of(n, size) == home)
        .unwrap()
}

/// Relay correctness: a publisher and a subscriber both attached to the
/// *wrong* daemon for a channel homed elsewhere. Every event crosses
/// two peer hops (forward to home, relay back) and must arrive exactly
/// once, byte-identical to what was published.
fn mesh_relay_check(daemons: &[ServDaemon]) {
    let n = daemons.len() as u32;
    let name = mesh_chan_name(usize::MAX, 1, n);
    let schema = Schema::new("mesh-check", vec![FieldDecl::atom("seq", AtomType::U64)]).unwrap();

    let mut sub =
        ServClient::connect(daemons[0].local_addr(), &ArchProfile::X86_64).expect("sub connect");
    let chan = sub.open_channel(&name).expect("open channel");
    sub.subscribe_raw(chan, None).expect("subscribe");

    let mut publisher =
        ServClient::connect(daemons[0].local_addr(), &ArchProfile::X86_64).expect("pub connect");
    let fmt = publisher.register_format(&schema).expect("register");
    let pchan = publisher.open_channel(&name).expect("open channel");

    // Probe until the relay subscription is live end to end.
    let t0 = Instant::now();
    loop {
        publisher
            .publish(pchan, fmt, &0u64.to_le_bytes())
            .expect("probe publish");
        if sub
            .poll_raw(Duration::from_millis(100))
            .expect("poll")
            .is_some()
        {
            break;
        }
        if t0.elapsed() > CASE_DEADLINE {
            panic!("relay subscription never became live");
        }
    }

    const K: u64 = 32;
    for seq in 1..=K {
        publisher
            .publish(pchan, fmt, &seq.to_le_bytes())
            .expect("publish");
    }
    let mut got = vec![0u32; K as usize + 1];
    let deadline = Instant::now() + CASE_DEADLINE;
    while got[1..].contains(&0) {
        if Instant::now() > deadline {
            panic!("relay delivery incomplete: {got:?}");
        }
        let Some(ev) = sub.poll_raw(Duration::from_millis(100)).expect("poll") else {
            continue;
        };
        let seq = u64::from_le_bytes(ev.bytes[..8].try_into().unwrap());
        assert_eq!(
            ev.bytes,
            &seq.to_le_bytes(),
            "relayed event bytes differ from the published record"
        );
        got[seq as usize] += 1;
    }
    // Drain a beat to catch duplicates.
    while let Some(ev) = sub.poll_raw(Duration::from_millis(200)).expect("poll") {
        let seq = u64::from_le_bytes(ev.bytes[..8].try_into().unwrap());
        got[seq as usize] += 1;
    }
    assert!(
        got[1..].iter().all(|&c| c == 1),
        "relay duplicated events: {got:?}"
    );
    sub.disconnect().expect("sub disconnect");
    publisher.disconnect().expect("pub disconnect");
}

/// One aggregate-throughput cell: `channels` channels sharded across
/// `n` daemons, each with its own publisher and `subs_per_chan`
/// subscribers attached to the channel's *home* daemon (the steady
/// state a shard map buys: hot-path traffic never crosses a peer link).
/// Returns aggregate events/s across all channels on one wall clock.
fn run_mesh_sweep(
    n: usize,
    channels: usize,
    subs_per_chan: usize,
    warmup: u64,
    events: u64,
) -> f64 {
    let total = warmup + events;
    let daemons = mesh_bind(n, total as usize + 64);
    let w = workload(MsgSize::B100);

    let received: Vec<Vec<Arc<AtomicU64>>> = (0..channels)
        .map(|_| {
            (0..subs_per_chan)
                .map(|_| Arc::new(AtomicU64::new(0)))
                .collect()
        })
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));
    // Publishers + the timing thread meet here once every channel has
    // finished warmup, so the measured window is pure steady state.
    let start_gate = Arc::new(std::sync::Barrier::new(channels + 1));

    let mut threads = Vec::new();
    for (c, counters) in received.iter().enumerate() {
        let home = (c % n) as u32;
        let name: Arc<str> = Arc::from(mesh_chan_name(c, home, n as u32));
        let addr = daemons[home as usize].local_addr();

        for counter in counters {
            let counter = Arc::clone(counter);
            let schema = w.schema.clone();
            let ready = ready.clone();
            let name = name.clone();
            threads.push(std::thread::spawn(move || {
                let mut client =
                    ServClient::connect(addr, &ArchProfile::X86_64).expect("subscriber connect");
                let chan = client.open_channel(&name).expect("open channel");
                client.subscribe(chan, &schema, None).expect("subscribe");
                ready.fetch_add(1, Ordering::Release);
                let start = Instant::now();
                while counter.load(Ordering::Acquire) < total {
                    match client.poll(Duration::from_millis(200)) {
                        Ok(Some(_event)) => {
                            counter.fetch_add(1, Ordering::Release);
                        }
                        Ok(None) => {
                            if start.elapsed() > CASE_DEADLINE {
                                panic!("mesh subscriber starved");
                            }
                        }
                        Err(e) => panic!("mesh subscriber poll failed: {e}"),
                    }
                }
                client.disconnect().expect("disconnect");
            }));
        }

        let counters: Vec<Arc<AtomicU64>> = counters.clone();
        let schema = w.schema.clone();
        let value = w.value.clone();
        let ready = ready.clone();
        let gate = start_gate.clone();
        let want_ready = channels * subs_per_chan;
        threads.push(std::thread::spawn(move || {
            let mut publisher =
                ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
            let chan = publisher.open_channel(&name).expect("open channel");
            let fmt = publisher.register_format(&schema).expect("register");
            let layout = Layout::of(&schema, &ArchProfile::X86_64).expect("layout");
            let native = encode_native(&value, &layout).expect("encode");
            let t0 = Instant::now();
            while ready.load(Ordering::Acquire) < want_ready {
                if t0.elapsed() > CASE_DEADLINE {
                    panic!("mesh subscribers failed to subscribe in time");
                }
                std::thread::yield_now();
            }
            for _ in 0..warmup {
                publisher.publish(chan, fmt, &native).expect("publish");
            }
            wait_for(&counters, warmup, t0, "mesh warmup delivery");
            gate.wait();
            for _ in 0..events {
                publisher.publish(chan, fmt, &native).expect("publish");
            }
            wait_for(&counters, total, t0, "mesh measured delivery");
            publisher.disconnect().expect("publisher disconnect");
        }));
    }

    start_gate.wait();
    let t0 = Instant::now();
    let all: Vec<Arc<AtomicU64>> = received.iter().flatten().cloned().collect();
    wait_for(&all, total, t0, "mesh aggregate delivery");
    let wall = t0.elapsed().as_secs_f64();

    for t in threads {
        t.join().expect("mesh worker thread");
    }
    for d in daemons {
        let stats = d.stats();
        assert_eq!(stats.dropped, 0, "mesh bench must run drop-free: {stats:?}");
        d.shutdown();
    }
    (channels as u64 * events) as f64 / wall
}

fn run_mesh_mode(n: usize, smoke: bool, json: bool) {
    assert!(n >= 2, "--mesh needs at least 2 daemons");
    let (channels, subs_per_chan, warmup, events) = if smoke {
        (2, 2, 20, 150)
    } else {
        (4, 4, 100, 1500)
    };

    // Phase 1: correctness across a relay hop.
    let relay_daemons = mesh_bind(2, 4096);
    mesh_relay_check(&relay_daemons);
    for d in relay_daemons {
        d.shutdown();
    }

    // Phase 2: aggregate throughput, single daemon vs the mesh, at
    // equal channel count and equal total subscribers. Best of three
    // per cell: the cells are sub-second and the max is the honest
    // capability number on a shared host.
    let trials = if smoke { 1 } else { 3 };
    let mut rows = Vec::new();
    for daemons in [1, n] {
        let evps = (0..trials)
            .map(|_| run_mesh_sweep(daemons, channels, subs_per_chan, warmup, events))
            .fold(0.0f64, f64::max);
        rows.push((daemons, evps));
    }
    let single = rows[0].1;
    let meshed = rows[1].1;

    if json {
        let body = format!(
            "\"mode\":\"mesh\",\"relay_check\":\"pass\",\"channels\":{channels},\
             \"subs_per_chan\":{subs_per_chan},\"events_per_chan\":{events},\"rows\":[{}],\
             \"speedup\":{:.3}",
            rows.iter()
                .map(|(d, e)| format!("{{\"daemons\":{d},\"events_per_sec\":{e:.0}}}"))
                .collect::<Vec<_>>()
                .join(","),
            meshed / single,
        );
        println!("{}", json_object("pbio-fanout/v1", body));
    } else {
        println!(
            "fan-out --mesh: {channels} channels x {subs_per_chan} subs, 100b records, \
             relay check passed"
        );
        println!("| daemons | aggregate ev/s |");
        println!("|---------|----------------|");
        for (d, e) in &rows {
            println!("| {d:>7} | {e:>14.0} |");
        }
        println!("mesh speedup over single daemon: {:.2}x", meshed / single);
    }
    // The scale-out claim is only falsifiable with real parallelism:
    // on a single-core host the comparison measures the OS scheduler,
    // not the mesh.
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    if !smoke && cores >= 2 {
        assert!(
            meshed > single,
            "a {n}-daemon mesh must beat one daemon at equal load: {meshed:.0} <= {single:.0} ev/s"
        );
    } else if !smoke {
        eprintln!(
            "single-core host: mesh-vs-single assertion skipped (measured {:.2}x)",
            meshed / single
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let fault_seed: Option<u64> = args.iter().position(|a| a == "--faults").map(|i| {
        args.get(i + 1)
            .and_then(|s| s.strip_prefix("seed="))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("--faults requires seed=N"))
    });
    let mesh: Option<usize> = args.iter().position(|a| a == "--mesh").map(|i| {
        args.get(i + 1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("--mesh requires a daemon count"))
    });
    let (subscriber_counts, warmup, events): (&[usize], u64, u64) = if smoke {
        (&[1], 10, 50)
    } else {
        (&[1, 8, 64], 200, 2000)
    };

    if let Some(n) = mesh {
        run_mesh_mode(n, smoke, json);
        return;
    }

    if let Some(seed) = fault_seed {
        let tap = args.iter().any(|a| a == "--tap");
        run_fault_case(seed, if smoke { 2_000 } else { 10_000 }, tap);
        return;
    }

    if args.iter().any(|a| a == "--subs") {
        let counts: &[usize] = if smoke {
            &[64, 256]
        } else {
            &[64, 256, 1024, 4096]
        };
        println!("fan-out --subs: connection scaling, 100b records, 4 reactor shards");
        println!("| subs |     ev/s | ev cost µs | delivery cost µs | daemon threads |");
        println!("|------|----------|------------|------------------|----------------|");
        for &subs in counts {
            let events = (200_000 / subs as u64).max(200);
            run_subs_case(subs, 50, events);
        }
        return;
    }

    if args.iter().any(|a| a == "--durable") {
        println!("fan-out --durable: 100b records, durable channel, flush-per-batch to OS");
        println!("| subs | live+ack ev/s | replay ev/s | disk B/event |");
        println!("|------|---------------|-------------|--------------|");
        for &subs in subscriber_counts {
            run_durable_case(subs, warmup, events);
        }
        return;
    }

    if args.iter().any(|a| a == "--tap") {
        println!("fan-out --tap: 100b records, homogeneous, wire capture off vs full");
        println!("| subs | tap  | events/s | deliveries/s | capture B/event frame |");
        println!("|------|------|----------|--------------|-----------------------|");
        for &subs in subscriber_counts {
            let off = run_case(subs, false, warmup, events, None);
            let dir =
                std::env::temp_dir().join(format!("pbio-fanout-tap-{}-{subs}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let on = run_case(subs, false, warmup, events, Some(dir.clone()));
            let _ = std::fs::remove_dir_all(&dir);
            // Every publish (in) and delivery (out) is one captured
            // event frame; warmup traffic is captured too.
            let frames = (warmup + events) * (1 + subs as u64);
            println!(
                "| {:>4} | off  | {:>8.0} | {:>12.0} | {:>21} |",
                subs, off.events_per_sec, off.deliveries_per_sec, "-"
            );
            println!(
                "| {:>4} | full | {:>8.0} | {:>12.0} | {:>21.1} |",
                subs,
                on.events_per_sec,
                on.deliveries_per_sec,
                on.capture_bytes as f64 / frames as f64
            );
        }
        return;
    }

    let mut results = Vec::new();
    if !json {
        println!("fan-out benchmark: 100b records, publisher x86-64, loopback TCP");
        println!("| subs | mode   | events/s | deliveries/s | allocs/event |");
        println!("|------|--------|----------|--------------|--------------|");
    }
    for &heterogeneous in &[false, true] {
        for &subs in subscriber_counts {
            let r = run_case(subs, heterogeneous, warmup, events, None);
            if !json {
                println!(
                    "| {:>4} | {} | {:>8.0} | {:>12.0} | {:>12.1} |",
                    r.subscribers,
                    if r.heterogeneous { "hetero" } else { "homo  " },
                    r.events_per_sec,
                    r.deliveries_per_sec,
                    r.allocs_per_event,
                );
            }
            let _ = r.events;
            results.push(r);
        }
    }
    if json {
        let body = format!(
            "\"mode\":\"fanout\",\"events_per_case\":{events},\"rows\":[{}]",
            results
                .iter()
                .map(|r| format!(
                    "{{\"subscribers\":{},\"heterogeneous\":{},\"events_per_sec\":{:.0},\
                     \"deliveries_per_sec\":{:.0},\"allocs_per_event\":{:.1}}}",
                    r.subscribers,
                    r.heterogeneous,
                    r.events_per_sec,
                    r.deliveries_per_sec,
                    r.allocs_per_event
                ))
                .collect::<Vec<_>>()
                .join(",")
        );
        println!("{}", json_object("pbio-fanout/v1", body));
    }
}
