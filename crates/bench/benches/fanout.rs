//! Fan-out benchmark: one publisher, N subscribers, one daemon.
//!
//! Measures the serv/net/core delivery path end to end over loopback TCP:
//! events/sec (publisher clock: first publish until every subscriber has
//! received every event) and heap allocations per published event, counted
//! by a wrapping global allocator across the whole process — daemon fan-out,
//! reactor flushes and subscriber decode included. The allocation count is
//! the tentpole metric: with shared event buffers it must stay O(1) in the
//! subscriber count instead of O(subscribers).
//!
//! Runs as a plain `harness = false` binary. `--smoke` runs one tiny
//! configuration (CI bit-rot check); the default sweep is 1 / 8 / 64
//! subscribers, homogeneous (subscriber arch == publisher arch, zero-copy
//! receive) and heterogeneous (big-endian subscribers, DCG-converted
//! receive).

use std::alloc::{GlobalAlloc, Layout as AllocLayout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio_bench::workloads::{workload, MsgSize};
use pbio_serv::{
    ClientConfig, ServClient, ServConfig, ServDaemon, StoreConfig, TapConfig, TraceConfig,
};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::value::encode_native;

// ---------------------------------------------------------------------------
// Counting allocator: every alloc/realloc in the process bumps one counter.

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: AllocLayout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: AllocLayout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: AllocLayout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// ---------------------------------------------------------------------------

const CHANNEL: &str = "fanout-bench";
const CASE_DEADLINE: Duration = Duration::from_secs(120);

struct CaseResult {
    subscribers: usize,
    heterogeneous: bool,
    events: u64,
    events_per_sec: f64,
    deliveries_per_sec: f64,
    allocs_per_event: f64,
    capture_bytes: u64,
}

/// Total file bytes under a capture directory (recursive: the store
/// lays segment files out in per-channel subdirectories).
fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| {
            let path = e.path();
            if path.is_dir() {
                dir_bytes(&path)
            } else {
                e.metadata().map_or(0, |m| m.len())
            }
        })
        .sum()
}

/// Wait until every per-subscriber counter reaches `target`.
fn wait_for(counters: &[Arc<AtomicU64>], target: u64, start: Instant, what: &str) {
    loop {
        if counters.iter().all(|c| c.load(Ordering::Acquire) >= target) {
            return;
        }
        if start.elapsed() > CASE_DEADLINE {
            let got: Vec<u64> = counters.iter().map(|c| c.load(Ordering::Acquire)).collect();
            panic!("timed out waiting for {what}: want {target} per subscriber, got {got:?}");
        }
        std::thread::yield_now();
    }
}

fn run_case(
    subscribers: usize,
    heterogeneous: bool,
    warmup: u64,
    events: u64,
    tap_dir: Option<std::path::PathBuf>,
) -> CaseResult {
    let pub_profile = ArchProfile::X86_64;
    let sub_profile = if heterogeneous {
        ArchProfile::SPARC_V8
    } else {
        ArchProfile::X86_64
    };

    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: (warmup + events) as usize + 64,
            // The allocation count below must see only the event path,
            // not a concurrent stats publisher.
            stats_interval: None,
            // Ditto for tracing: the guard measures the disabled path.
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            // The tap ring must absorb the whole burst: a drop would
            // understate capture bytes/event.
            tap: tap_dir.clone().map(|dir| TapConfig {
                ring_capacity: ((warmup + events) as usize * (subscribers + 1) + 1024).max(4096),
                ..TapConfig::new(dir)
            }),
            ..ServConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total = warmup + events;
    let received: Vec<Arc<AtomicU64>> = (0..subscribers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));

    let mut sub_threads = Vec::with_capacity(subscribers);
    for counter in &received {
        let counter = Arc::clone(counter);
        let schema = w.schema.clone();
        let profile = sub_profile.clone();
        let ready = ready.clone();
        sub_threads.push(std::thread::spawn(move || {
            let mut client = ServClient::connect(addr, &profile).expect("subscriber connect");
            let chan = client.open_channel(CHANNEL).expect("open channel");
            client.subscribe(chan, &schema, None).expect("subscribe");
            ready.fetch_add(1, Ordering::Release);
            let start = Instant::now();
            while counter.load(Ordering::Acquire) < total {
                match client.poll(Duration::from_millis(200)) {
                    Ok(Some(_event)) => {
                        counter.fetch_add(1, Ordering::Release);
                    }
                    Ok(None) => {
                        if start.elapsed() > CASE_DEADLINE {
                            panic!("subscriber starved");
                        }
                    }
                    Err(e) => panic!("subscriber poll failed: {e}"),
                }
            }
            client.disconnect().expect("disconnect");
        }));
    }

    let mut publisher = ServClient::connect(addr, &pub_profile).expect("publisher connect");
    let chan = publisher.open_channel(CHANNEL).expect("open channel");
    let fmt = publisher.register_format(&w.schema).expect("register");
    let layout = Layout::of(&w.schema, &pub_profile).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");

    let setup_start = Instant::now();
    while ready.load(Ordering::Acquire) < subscribers {
        if setup_start.elapsed() > CASE_DEADLINE {
            panic!("subscribers failed to subscribe in time");
        }
        std::thread::yield_now();
    }

    // Warmup: announce the format everywhere, compile conversions, open
    // TCP windows — steady state is what we want to measure.
    for _ in 0..warmup {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, warmup, setup_start, "warmup delivery");

    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, total, t0, "measured delivery");
    let elapsed = t0.elapsed();
    let allocs_after = ALLOCATIONS.load(Ordering::Relaxed);

    for t in sub_threads {
        t.join().expect("subscriber thread");
    }
    publisher.disconnect().expect("publisher disconnect");

    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "benchmark must run drop-free: {stats:?}");
    daemon.shutdown();
    let capture_bytes = tap_dir.as_deref().map_or(0, dir_bytes);

    let secs = elapsed.as_secs_f64();
    CaseResult {
        subscribers,
        heterogeneous,
        events,
        events_per_sec: events as f64 / secs,
        deliveries_per_sec: (events as f64 * subscribers as f64) / secs,
        allocs_per_event: (allocs_after - allocs_before) as f64 / events as f64,
        capture_bytes,
    }
}

/// `--durable` mode: the same fan-out topology over a *durable* channel.
///
/// Three numbers per case, all of which EXPERIMENTS.md tracks:
/// * **live events/s** — publisher clock from first measured publish
///   until every subscriber has every event *and* every publish has been
///   acked durable (the honest durable-path throughput: fan-out plus the
///   store writer thread plus the ack round-trip);
/// * **replay events/s** — a fresh `subscribe_from(0)` client draining
///   the whole log from disk;
/// * **disk bytes/event** — segment-file bytes on disk (entry framing,
///   CRCs and per-segment format metas included) over total events.
fn run_durable_case(subscribers: usize, warmup: u64, events: u64) {
    let dir = std::env::temp_dir().join(format!(
        "pbio-fanout-durable-{}-{subscribers}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: (warmup + events) as usize + 64,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            durability: Some(StoreConfig::new(dir.clone())),
            ..ServConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total = warmup + events;
    let received: Vec<Arc<AtomicU64>> = (0..subscribers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));
    let mut sub_threads = Vec::with_capacity(subscribers);
    for counter in &received {
        let counter = Arc::clone(counter);
        let schema = w.schema.clone();
        let ready = ready.clone();
        sub_threads.push(std::thread::spawn(move || {
            let mut client =
                ServClient::connect(addr, &ArchProfile::X86_64).expect("subscriber connect");
            let chan = client.open_channel(CHANNEL).expect("open channel");
            client.subscribe(chan, &schema, None).expect("subscribe");
            ready.fetch_add(1, Ordering::Release);
            let start = Instant::now();
            while counter.load(Ordering::Acquire) < total {
                match client.poll(Duration::from_millis(200)) {
                    Ok(Some(_event)) => {
                        counter.fetch_add(1, Ordering::Release);
                    }
                    Ok(None) => {
                        if start.elapsed() > CASE_DEADLINE {
                            panic!("subscriber starved");
                        }
                    }
                    Err(e) => panic!("subscriber poll failed: {e}"),
                }
            }
            client.disconnect().expect("disconnect");
        }));
    }

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
    assert!(publisher.durable_negotiated(), "daemon grants CAP_DURABLE");
    let chan = publisher
        .open_channel_durable(CHANNEL)
        .expect("open channel");
    let fmt = publisher.register_format(&w.schema).expect("register");
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");

    let setup_start = Instant::now();
    while ready.load(Ordering::Acquire) < subscribers {
        if setup_start.elapsed() > CASE_DEADLINE {
            panic!("subscribers failed to subscribe in time");
        }
        std::thread::yield_now();
    }
    for _ in 0..warmup {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, warmup, setup_start, "warmup delivery");

    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, total, t0, "measured delivery");
    // The durable clock stops only once every publish is acked on disk.
    while publisher.stats().publishes_acked < total {
        if t0.elapsed() > CASE_DEADLINE {
            panic!(
                "acks stalled at {}/{total}",
                publisher.stats().publishes_acked
            );
        }
        let _ = publisher.poll(Duration::from_millis(50)).expect("poll");
    }
    let live_secs = t0.elapsed().as_secs_f64();

    for t in sub_threads {
        t.join().expect("subscriber thread");
    }

    let log = daemon
        .store()
        .expect("durable daemon has a store")
        .channel(CHANNEL)
        .expect("open channel log");
    let disk_bytes = log.disk_bytes().expect("disk bytes") as f64 / total as f64;

    // Replay path: a fresh subscriber drains the entire log from disk.
    let mut replayer = ServClient::connect(addr, &ArchProfile::X86_64).expect("replayer connect");
    let r_chan = replayer.open_channel(CHANNEL).expect("open channel");
    let r0 = Instant::now();
    replayer
        .subscribe_from(r_chan, &w.schema, 0)
        .expect("subscribe_from");
    let mut replayed = 0u64;
    while replayed < total {
        match replayer.poll(Duration::from_millis(200)) {
            Ok(Some(_event)) => replayed += 1,
            Ok(None) => {
                if r0.elapsed() > CASE_DEADLINE {
                    panic!("replay starved at {replayed}/{total}");
                }
            }
            Err(e) => panic!("replay poll failed: {e}"),
        }
    }
    let replay_secs = r0.elapsed().as_secs_f64();
    replayer.disconnect().expect("replayer disconnect");
    publisher.disconnect().expect("publisher disconnect");

    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "benchmark must run drop-free: {stats:?}");
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "| {:>4} | {:>13.0} | {:>11.0} | {:>12.1} |",
        subscribers,
        events as f64 / live_secs,
        total as f64 / replay_secs,
        disk_bytes,
    );
}

/// `--subs` mode: connection scaling. Same topology as the default sweep
/// (one publisher, N subscribers, homogeneous), but N climbs into the
/// thousands and the interesting numbers change: events/s, the per-event
/// and per-delivery cost in µs, and how many OS threads the daemon needs
/// to serve N connections. With the sharded reactor core that last column
/// must stay O(shards) — it is the whole point of the measurement.
fn run_subs_case(subscribers: usize, warmup: u64, events: u64) {
    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: (warmup + events) as usize + 64,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            // Fixed so the thread-count column is comparable across
            // machines (and across rows on CI runners of any width).
            shards: 4,
            ..ServConfig::default()
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();

    let total = warmup + events;
    let received: Vec<Arc<AtomicU64>> = (0..subscribers)
        .map(|_| Arc::new(AtomicU64::new(0)))
        .collect();
    let ready = Arc::new(AtomicUsize::new(0));
    let mut sub_threads = Vec::with_capacity(subscribers);
    for counter in &received {
        let counter = Arc::clone(counter);
        let schema = w.schema.clone();
        let ready = ready.clone();
        // Thousands of subscriber threads are the *load generator*, not
        // the system under test; small stacks keep the harness cheap.
        let t = std::thread::Builder::new()
            .stack_size(128 * 1024)
            .spawn(move || {
                let mut client =
                    ServClient::connect(addr, &ArchProfile::X86_64).expect("subscriber connect");
                let chan = client.open_channel(CHANNEL).expect("open channel");
                client.subscribe(chan, &schema, None).expect("subscribe");
                ready.fetch_add(1, Ordering::Release);
                let start = Instant::now();
                while counter.load(Ordering::Acquire) < total {
                    match client.poll(Duration::from_millis(200)) {
                        Ok(Some(_event)) => {
                            counter.fetch_add(1, Ordering::Release);
                        }
                        Ok(None) => {
                            if start.elapsed() > CASE_DEADLINE {
                                panic!("subscriber starved");
                            }
                        }
                        Err(e) => panic!("subscriber poll failed: {e}"),
                    }
                }
                client.disconnect().expect("disconnect");
            })
            .expect("spawn subscriber");
        sub_threads.push(t);
    }

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
    let chan = publisher.open_channel(CHANNEL).expect("open channel");
    let fmt = publisher.register_format(&w.schema).expect("register");
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");

    let setup_start = Instant::now();
    while ready.load(Ordering::Acquire) < subscribers {
        if setup_start.elapsed() > CASE_DEADLINE {
            panic!("subscribers failed to subscribe in time");
        }
        std::thread::yield_now();
    }
    for _ in 0..warmup {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, warmup, setup_start, "warmup delivery");

    // Sampled while every subscriber connection is live.
    let daemon_threads = daemon.thread_count();

    let t0 = Instant::now();
    for _ in 0..events {
        publisher.publish(chan, fmt, &native).expect("publish");
    }
    wait_for(&received, total, t0, "measured delivery");
    let elapsed = t0.elapsed();

    for t in sub_threads {
        t.join().expect("subscriber thread");
    }
    publisher.disconnect().expect("publisher disconnect");
    let stats = daemon.stats();
    assert_eq!(stats.dropped, 0, "benchmark must run drop-free: {stats:?}");
    daemon.shutdown();

    let secs = elapsed.as_secs_f64();
    let per_event_us = secs * 1e6 / events as f64;
    let per_delivery_us = per_event_us / subscribers as f64;
    println!(
        "| {:>4} | {:>8.0} | {:>11.1} | {:>14.3} | {:>14} |",
        subscribers,
        events as f64 / secs,
        per_event_us,
        per_delivery_us,
        daemon_threads,
    );
}

/// `--faults seed=N` mode: the same topology (one publisher, two
/// subscribers, one daemon) with every daemon connection wrapped in the
/// seeded deterministic fault plan — torn writes, read stalls, byte
/// corruption, and (odd seeds) mid-stream disconnects. Not a
/// measurement: a reproducible crash-recovery exercise. Resume clients
/// must ride out whatever the seed injects, and every delivered event is
/// still a valid record; damage shows up only in the printed counters.
fn run_fault_case(seed: u64, events: u64, tap: bool) {
    let tap_dir = tap.then(|| {
        let dir = std::env::temp_dir().join(format!(
            "pbio-fanout-fault-tap-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let w = workload(MsgSize::B100);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            fault_seed: Some(seed),
            // Deep queues: losses in this mode should come from the fault
            // plan, not from drop-oldest backpressure.
            queue_capacity: events as usize + 64,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            // Aggressive liveness so a connection severed by the plan is
            // detected, evicted, and resumed within the run, not after it.
            heartbeat_ping: Duration::from_millis(250),
            heartbeat_dead: Duration::from_millis(750),
            stall_budget: Duration::from_millis(250),
            durability: None,
            shards: 0,
            max_replay: 32,
            flight_capacity: 256,
            flight_dump: None,
            tap: tap_dir.clone().map(|dir| TapConfig {
                ring_capacity: (events as usize * 4).max(4096),
                ..TapConfig::new(dir)
            }),
            pin_shards: false,
        },
    )
    .expect("bind daemon");
    let addr = daemon.local_addr();
    let resume = ClientConfig {
        resume: true,
        backoff_initial: Duration::from_millis(10),
        backoff_max: Duration::from_millis(250),
        ..ClientConfig::default()
    };
    // Connecting runs through the faulty transport too; each retry is a
    // fresh connection with its own derived plan.
    let connect = move |profile: &ArchProfile| -> ServClient {
        for _ in 0..10 {
            if let Ok(c) = ServClient::connect_with(addr, profile, resume.clone()) {
                return c;
            }
        }
        panic!("seed {seed}: no session within 10 attempts");
    };

    let done = Arc::new(AtomicUsize::new(0));
    let mut sub_threads = Vec::new();
    for profile in [ArchProfile::X86_64, ArchProfile::SPARC_V8] {
        let schema = w.schema.clone();
        let done = Arc::clone(&done);
        let connect = connect.clone();
        sub_threads.push(std::thread::spawn(move || {
            let mut client = connect(&profile);
            let chan = loop {
                if let Ok(c) = client.open_channel(CHANNEL) {
                    break c;
                }
                std::thread::sleep(Duration::from_millis(10));
            };
            while client.subscribe(chan, &schema, None).is_err() {
                std::thread::sleep(Duration::from_millis(10));
            }
            let mut delivered = 0u64;
            let mut errors = 0u64;
            let mut quiet = 0u32;
            let deadline = Instant::now() + CASE_DEADLINE;
            // Keep draining until the publisher is done and the wire has
            // gone quiet; poll errors (a corrupted frame, a dropped
            // session mid-resume) are counted and survived.
            while quiet < 10 && Instant::now() < deadline {
                match client.poll(Duration::from_millis(200)) {
                    Ok(Some(_event)) => {
                        quiet = 0;
                        delivered += 1;
                    }
                    // Quiet only counts on a healthy session: a
                    // subscriber severed mid-run must finish its
                    // reconnect before it may call the wire drained.
                    Ok(None) => {
                        if done.load(Ordering::Acquire) == 1 && !client.in_outage() {
                            quiet += 1;
                        }
                    }
                    Err(_) => errors += 1,
                }
            }
            (delivered, errors, client.stats())
        }));
    }

    let mut publisher = connect(&ArchProfile::X86_64);
    let chan = loop {
        if let Ok(c) = publisher.open_channel(CHANNEL) {
            break c;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let fmt = loop {
        if let Ok(f) = publisher.register_format(&w.schema) {
            break f;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let layout = Layout::of(&w.schema, &ArchProfile::X86_64).expect("layout");
    let native = encode_native(&w.value, &layout).expect("encode");
    let mut publish_errors = 0u64;
    for _ in 0..events {
        if publisher.publish(chan, fmt, &native).is_err() {
            publish_errors += 1;
        }
    }
    // Give an in-flight reconnect a chance to flush the outage buffer.
    let grace = Instant::now() + Duration::from_secs(3);
    while publisher.in_outage() && Instant::now() < grace {
        std::thread::sleep(Duration::from_millis(25));
        let _ = publisher.publish(chan, fmt, &native);
    }
    done.store(1, Ordering::Release);

    println!("fan-out under faults: seed {seed}, {events} events, 2 subscribers");
    println!("| peer        | delivered | errors | reconnects | rejected |");
    println!("|-------------|-----------|--------|------------|----------|");
    let p = publisher.stats();
    println!(
        "| publisher   | {:>9} | {:>6} | {:>10} | {:>8} |",
        p.publishes, publish_errors, p.reconnects, p.frames_rejected
    );
    for (i, t) in sub_threads.into_iter().enumerate() {
        let (delivered, errors, s) = t.join().expect("subscriber thread");
        println!(
            "| subscriber{i} | {delivered:>9} | {errors:>6} | {:>10} | {:>8} |",
            s.reconnects, s.frames_rejected
        );
    }
    let d = daemon.stats();
    println!(
        "daemon: rejected {} frames, dropped {} events, resumed {} sessions, \
         evicted {} dead / {} stalled",
        d.frames_rejected, d.dropped, d.resumes, d.evicted_dead, d.evicted_stalled
    );
    daemon.shutdown();

    // With the tap on, the capture itself must survive the fault plan:
    // torn tails may be truncated by recovery, but every frame that
    // reads back clean must actually decode — a corrupted record behind
    // a valid CRC would be a capture-path bug, not a wire fault.
    if let Some(dir) = tap_dir {
        let capture = pbio_serv::read_capture(&dir).expect("capture must recover and decode");
        println!(
            "capture under faults: {} frame(s) decoded clean, {} torn tail(s) truncated \
             ({} bytes)",
            capture.frames.len(),
            capture.torn_tails,
            capture.truncated_bytes
        );
        assert!(
            !capture.frames.is_empty(),
            "tap was enabled but captured nothing"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let fault_seed: Option<u64> = args.iter().position(|a| a == "--faults").map(|i| {
        args.get(i + 1)
            .and_then(|s| s.strip_prefix("seed="))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("--faults requires seed=N"))
    });
    let (subscriber_counts, warmup, events): (&[usize], u64, u64) = if smoke {
        (&[1], 10, 50)
    } else {
        (&[1, 8, 64], 200, 2000)
    };

    if let Some(seed) = fault_seed {
        let tap = args.iter().any(|a| a == "--tap");
        run_fault_case(seed, if smoke { 2_000 } else { 10_000 }, tap);
        return;
    }

    if args.iter().any(|a| a == "--subs") {
        let counts: &[usize] = if smoke {
            &[64, 256]
        } else {
            &[64, 256, 1024, 4096]
        };
        println!("fan-out --subs: connection scaling, 100b records, 4 reactor shards");
        println!("| subs |     ev/s | ev cost µs | delivery cost µs | daemon threads |");
        println!("|------|----------|------------|------------------|----------------|");
        for &subs in counts {
            let events = (200_000 / subs as u64).max(200);
            run_subs_case(subs, 50, events);
        }
        return;
    }

    if args.iter().any(|a| a == "--durable") {
        println!("fan-out --durable: 100b records, durable channel, flush-per-batch to OS");
        println!("| subs | live+ack ev/s | replay ev/s | disk B/event |");
        println!("|------|---------------|-------------|--------------|");
        for &subs in subscriber_counts {
            run_durable_case(subs, warmup, events);
        }
        return;
    }

    if args.iter().any(|a| a == "--tap") {
        println!("fan-out --tap: 100b records, homogeneous, wire capture off vs full");
        println!("| subs | tap  | events/s | deliveries/s | capture B/event frame |");
        println!("|------|------|----------|--------------|-----------------------|");
        for &subs in subscriber_counts {
            let off = run_case(subs, false, warmup, events, None);
            let dir =
                std::env::temp_dir().join(format!("pbio-fanout-tap-{}-{subs}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let on = run_case(subs, false, warmup, events, Some(dir.clone()));
            let _ = std::fs::remove_dir_all(&dir);
            // Every publish (in) and delivery (out) is one captured
            // event frame; warmup traffic is captured too.
            let frames = (warmup + events) * (1 + subs as u64);
            println!(
                "| {:>4} | off  | {:>8.0} | {:>12.0} | {:>21} |",
                subs, off.events_per_sec, off.deliveries_per_sec, "-"
            );
            println!(
                "| {:>4} | full | {:>8.0} | {:>12.0} | {:>21.1} |",
                subs,
                on.events_per_sec,
                on.deliveries_per_sec,
                on.capture_bytes as f64 / frames as f64
            );
        }
        return;
    }

    println!("fan-out benchmark: 100b records, publisher x86-64, loopback TCP");
    println!("| subs | mode   | events/s | deliveries/s | allocs/event |");
    println!("|------|--------|----------|--------------|--------------|");
    for &heterogeneous in &[false, true] {
        for &subs in subscriber_counts {
            let r = run_case(subs, heterogeneous, warmup, events, None);
            println!(
                "| {:>4} | {} | {:>8.0} | {:>12.0} | {:>12.1} |",
                r.subscribers,
                if r.heterogeneous { "hetero" } else { "homo  " },
                r.events_per_sec,
                r.deliveries_per_sec,
                r.allocs_per_event,
            );
            let _ = r.events;
        }
    }
}
