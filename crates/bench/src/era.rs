//! Era scaling: relating 2020s-host CPU measurements to the paper's 1999
//! testbed.
//!
//! The network model is calibrated to the paper's measured wire times
//! (1999-era TCP on 100 Mbps Ethernet), but encode/decode CPU work runs on
//! a modern host that is tens of times faster than a 247 MHz UltraSPARC or
//! a 450 MHz Pentium II. Reporting raw measurements therefore *understates*
//! every CPU-side effect relative to the network — the paper's "66% of
//! total cost is encode/decode" and "PBIO round-trip in 45% of MPICH's
//! time" both depend on the era's CPU:network balance.
//!
//! Era mode multiplies measured CPU components by per-machine factors
//! calibrated once, from Figure 1's MPICH components at 100 KB (the most
//! CPU-bound point): paper sparc encode 13 310 µs vs our ~456 µs → ≈ 29×;
//! paper x86 encode 8 950 µs vs our ~423 µs → ≈ 21×. The factors are a
//! *calibration of the substitution* (documented in DESIGN.md), not a knob:
//! the same two constants are applied to every wire format and every size.

use pbio_net::LegCosts;

/// CPU slowdown of the paper's Sparc (Ultra 30, 247 MHz) vs this host,
/// calibrated from Figure 1's 100 KB MPI sparc-encode component.
pub const SPARC_FACTOR: f64 = 29.0;

/// CPU slowdown of the paper's x86 (Pentium II, 450 MHz) vs this host.
pub const X86_FACTOR: f64 = 21.0;

/// Scale a leg's CPU components: `enc_factor` applies to the sender's
/// encode, `dec_factor` to the receiver's decode. Network time is already
/// era-calibrated and is left untouched.
pub fn scale_leg(leg: LegCosts, enc_factor: f64, dec_factor: f64) -> LegCosts {
    LegCosts {
        encode: leg.encode.mul_f64(enc_factor),
        decode: leg.decode.mul_f64(dec_factor),
        ..leg
    }
}

/// True if `--era` was passed on the command line.
pub fn era_mode() -> bool {
    std::env::args().any(|a| a == "--era")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn scaling_touches_only_cpu_components() {
        let leg = LegCosts {
            encode: Duration::from_micros(10),
            network: Duration::from_micros(100),
            decode: Duration::from_micros(20),
            wire_bytes: 42,
        };
        let scaled = scale_leg(leg, 2.0, 3.0);
        assert_eq!(scaled.encode, Duration::from_micros(20));
        assert_eq!(scaled.decode, Duration::from_micros(60));
        assert_eq!(scaled.network, leg.network);
        assert_eq!(scaled.wire_bytes, 42);
    }
}
