//! # pbio-bench — workloads and measurement plumbing for the evaluation
//!
//! Everything needed to regenerate the paper's figures:
//!
//! * [`workloads`] — the mixed-field record schemas at the paper's four
//!   message sizes (100 B, 1 KB, 10 KB, 100 KB on the Sparc), value
//!   generation, and the format-mismatch variants of §4.4,
//! * [`protocols`] — uniform prepared encode/decode closures for every wire
//!   format under test (PBIO zero-copy / interpreted / DCG, MPICH-model,
//!   CORBA CDR, XML), so figures and Criterion benches measure identical
//!   work,
//! * [`cli`] — the flag loop and schema-bearing JSON envelope shared by
//!   the `pbio-*` observability tools.
//!
//! See `DESIGN.md` (per-experiment index) and `EXPERIMENTS.md`
//! (paper-vs-measured results).

#![warn(missing_docs)]

pub mod cli;
pub mod era;
pub mod protocols;
pub mod workloads;

pub use protocols::{prepare, ProtoBench, WireFormat};
pub use workloads::{MsgSize, Workload};
