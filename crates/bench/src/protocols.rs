//! Prepared encode/decode closures per wire format.
//!
//! Each [`prepare`] call sets up one (wire format, sender arch, receiver
//! arch, schema) combination exactly as a steady-state application would run
//! it — formats registered/announced, conversion routines generated, buffers
//! pre-allocated — and returns closures measuring only the *per-record* work
//! the paper's figures charge to each system:
//!
//! | format | sender cost | receiver cost |
//! |---|---|---|
//! | PBIO (NDR) | frame header + buffered copy of native bytes | zero-copy view, or one generated-code conversion |
//! | PBIO interpreted | same | table-driven plan walk |
//! | MPICH model | interpreted pack into contiguous buffer | interpreted unpack into a **fresh** buffer (MPICH behaviour) |
//! | CORBA CDR | stub-compiled marshal (copy, writer's order) | stub-compiled unmarshal (copy, swap iff orders differ) |
//! | XML | binary→ASCII emit | streaming parse + ASCII→binary |

use std::sync::Arc;

use pbio::{CodegenMode, DcgConverter, InterpConverter, Plan, RecordView, Writer};
use pbio_cdr::CdrCodec;
use pbio_mpi::{mpi_pack_into, mpi_unpack, Datatype};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::schema::Schema;
use pbio_types::value::{encode_native, RecordValue};
use pbio_xml::{emitter, XmlDecoder};

/// The systems under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFormat {
    /// PBIO with optimized dynamic code generation (the paper's "PBIO DCG").
    PbioDcg,
    /// PBIO with unoptimized generated code (ablation).
    PbioDcgNaive,
    /// PBIO with the table-driven interpreted converter (the paper's "PBIO").
    PbioInterp,
    /// The MPICH-model baseline.
    Mpi,
    /// The CORBA IIOP/CDR baseline.
    Cdr,
    /// The XML baseline.
    Xml,
}

impl WireFormat {
    /// Display name used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::PbioDcg => "PBIO DCG",
            WireFormat::PbioDcgNaive => "PBIO DCG (naive)",
            WireFormat::PbioInterp => "PBIO",
            WireFormat::Mpi => "MPICH",
            WireFormat::Cdr => "CORBA",
            WireFormat::Xml => "XML",
        }
    }
}

/// A prepared benchmark: steady-state per-record closures plus the wire
/// image they exchange.
pub struct ProtoBench {
    /// Bytes as they cross the wire (for size accounting).
    pub wire: Vec<u8>,
    /// Sender-side per-record work; returns wire byte count.
    pub encode: Box<dyn FnMut() -> usize>,
    /// Receiver-side per-record work (decode `wire` into usable native data).
    pub decode: Box<dyn FnMut()>,
}

/// Prepare one (format, sender, receiver) combination. The sender transmits
/// records of `sender_schema`; the receiver expects `receiver_schema`
/// (usually the same — Figures 6/7 pass an extended sender schema).
pub fn prepare(
    format: WireFormat,
    sender_schema: &Schema,
    receiver_schema: &Schema,
    sp: &ArchProfile,
    dp: &ArchProfile,
    value: &RecordValue,
) -> ProtoBench {
    match format {
        WireFormat::PbioDcg => prepare_pbio(
            sender_schema,
            receiver_schema,
            sp,
            dp,
            value,
            Backend::Dcg(CodegenMode::Optimized),
        ),
        WireFormat::PbioDcgNaive => prepare_pbio(
            sender_schema,
            receiver_schema,
            sp,
            dp,
            value,
            Backend::Dcg(CodegenMode::Naive),
        ),
        WireFormat::PbioInterp => prepare_pbio(
            sender_schema,
            receiver_schema,
            sp,
            dp,
            value,
            Backend::Interp,
        ),
        WireFormat::Mpi => prepare_mpi(sender_schema, receiver_schema, sp, dp, value),
        WireFormat::Cdr => prepare_cdr(sender_schema, receiver_schema, sp, dp, value),
        WireFormat::Xml => prepare_xml(sender_schema, receiver_schema, sp, dp, value),
    }
}

enum Backend {
    Interp,
    Dcg(CodegenMode),
}

fn prepare_pbio(
    sender_schema: &Schema,
    receiver_schema: &Schema,
    sp: &ArchProfile,
    dp: &ArchProfile,
    value: &RecordValue,
    backend: Backend,
) -> ProtoBench {
    let mut writer = Writer::new(sp);
    let fmt = writer.register(sender_schema).expect("register");
    let native = writer.encode_value(fmt, value).expect("encode value");

    // Steady state: announce the format once so per-record framing is just
    // the data header.
    let mut warmup = Vec::new();
    writer
        .write(fmt, &native, &mut warmup)
        .expect("warmup write");

    let mut out = Vec::with_capacity(native.len() + 64);
    writer.write(fmt, &native, &mut out).expect("wire write");
    let wire = out.clone();

    let native_enc = native.clone();
    let mut enc_buf: Vec<u8> = Vec::with_capacity(wire.len());
    let encode = Box::new(move || {
        enc_buf.clear();
        writer.write(fmt, &native_enc, &mut enc_buf).expect("write");
        enc_buf.len()
    });

    // Receiver side: the data payload is the native record itself (NDR).
    let payload = native;
    let slay = Arc::new(Layout::of(sender_schema, sp).expect("sender layout"));
    let dlay = Arc::new(Layout::of(receiver_schema, dp).expect("receiver layout"));
    let plan = Arc::new(Plan::build(slay, dlay.clone()));

    let decode: Box<dyn FnMut()> = if plan.zero_copy {
        // Zero-copy: receiving is constructing a view over the buffer.
        Box::new(move || {
            let view = RecordView::borrowed(&payload, dlay.clone());
            std::hint::black_box(view.bytes().len());
        })
    } else {
        match backend {
            Backend::Interp => {
                let conv = InterpConverter::new(plan);
                let mut buf = Vec::with_capacity(dlay.size() + 64);
                Box::new(move || {
                    conv.convert_into(&payload, &mut buf).expect("convert");
                    std::hint::black_box(buf.len());
                })
            }
            Backend::Dcg(mode) => {
                let conv = DcgConverter::compile(plan, mode).expect("compile");
                let mut buf = Vec::with_capacity(dlay.size() + 64);
                Box::new(move || {
                    conv.convert_into(&payload, &mut buf).expect("convert");
                    std::hint::black_box(buf.len());
                })
            }
        }
    };

    ProtoBench {
        wire,
        encode,
        decode,
    }
}

fn prepare_mpi(
    sender_schema: &Schema,
    receiver_schema: &Schema,
    sp: &ArchProfile,
    dp: &ArchProfile,
    value: &RecordValue,
) -> ProtoBench {
    let sdt = Datatype::from_schema(sender_schema, sp).expect("sender datatype");
    let ddt = Datatype::from_schema(receiver_schema, dp).expect("receiver datatype");
    let slay = Layout::of(sender_schema, sp).expect("layout");
    let native = encode_native(value, &slay).expect("encode");

    let mut wire = Vec::new();
    mpi_pack_into(&sdt, sp, &native, &mut wire).expect("pack");

    let sp2 = sp.clone();
    let native_enc = native.clone();
    let mut enc_buf: Vec<u8> = Vec::with_capacity(wire.len());
    let encode = Box::new(move || {
        enc_buf.clear();
        mpi_pack_into(&sdt, &sp2, &native_enc, &mut enc_buf).expect("pack");
        enc_buf.len()
    });

    let dp2 = dp.clone();
    let wire_dec = wire.clone();
    let decode = Box::new(move || {
        // MPICH model: a separate unpack buffer per message (§4.3).
        let out = mpi_unpack(&ddt, &dp2, &wire_dec).expect("unpack");
        std::hint::black_box(out.len());
    });

    ProtoBench {
        wire,
        encode,
        decode,
    }
}

fn prepare_cdr(
    sender_schema: &Schema,
    receiver_schema: &Schema,
    sp: &ArchProfile,
    dp: &ArchProfile,
    value: &RecordValue,
) -> ProtoBench {
    let sc = CdrCodec::new(sender_schema, sp).expect("sender codec");
    let dc = CdrCodec::new(receiver_schema, dp).expect("receiver codec");
    let native = encode_native(value, sc.layout()).expect("encode");
    let wire = sc.marshal(&native).expect("marshal");

    let native_enc = native.clone();
    let mut enc_buf: Vec<u8> = Vec::with_capacity(wire.len());
    let encode = Box::new(move || {
        sc.marshal_into(&native_enc, &mut enc_buf).expect("marshal");
        enc_buf.len()
    });

    let wire_dec = wire.clone();
    let mut dec_buf: Vec<u8> = Vec::new();
    let decode = Box::new(move || {
        dc.unmarshal_into(&wire_dec, &mut dec_buf)
            .expect("unmarshal");
        std::hint::black_box(dec_buf.len());
    });

    ProtoBench {
        wire,
        encode,
        decode,
    }
}

fn prepare_xml(
    sender_schema: &Schema,
    receiver_schema: &Schema,
    sp: &ArchProfile,
    dp: &ArchProfile,
    value: &RecordValue,
) -> ProtoBench {
    let slay = Layout::of(sender_schema, sp).expect("sender layout");
    let dlay = Layout::of(receiver_schema, dp).expect("receiver layout");
    let native = encode_native(value, &slay).expect("encode");
    let xml = emitter::emit_record(&slay, &native).expect("emit");
    let wire = xml.clone().into_bytes();

    let native_enc = native.clone();
    let slay2 = slay.clone();
    let mut enc_buf = String::with_capacity(xml.len() + 64);
    let encode = Box::new(move || {
        enc_buf.clear();
        emitter::emit_into(&slay2, &native_enc, &mut enc_buf).expect("emit");
        enc_buf.len()
    });

    let decoder = XmlDecoder::new(&dlay);
    let mut dec_buf: Vec<u8> = Vec::with_capacity(dlay.size() + 64);
    let decode = Box::new(move || {
        decoder.decode_into(&xml, &mut dec_buf).expect("decode");
        std::hint::black_box(dec_buf.len());
    });

    ProtoBench {
        wire,
        encode,
        decode,
    }
}

/// All formats compared in Figures 2 and 3.
pub fn figure23_formats() -> [WireFormat; 4] {
    [
        WireFormat::Xml,
        WireFormat::Mpi,
        WireFormat::Cdr,
        WireFormat::PbioInterp,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{workload, MsgSize};

    #[test]
    fn every_format_prepares_and_runs() {
        let w = workload(MsgSize::B100);
        for fmt in [
            WireFormat::PbioDcg,
            WireFormat::PbioDcgNaive,
            WireFormat::PbioInterp,
            WireFormat::Mpi,
            WireFormat::Cdr,
            WireFormat::Xml,
        ] {
            let mut pb = prepare(
                fmt,
                &w.schema,
                &w.schema,
                &ArchProfile::SPARC_V8,
                &ArchProfile::X86,
                &w.value,
            );
            let n = (pb.encode)();
            assert!(n > 0, "{fmt:?}");
            assert_eq!(n, pb.wire.len(), "{fmt:?}: steady-state wire size");
            (pb.decode)();
        }
    }

    #[test]
    fn pbio_wire_is_smallest_mpi_packed_xml_biggest() {
        let w = workload(MsgSize::K1);
        let sizes: Vec<(WireFormat, usize)> =
            [WireFormat::PbioDcg, WireFormat::Mpi, WireFormat::Xml]
                .into_iter()
                .map(|f| {
                    let pb = prepare(
                        f,
                        &w.schema,
                        &w.schema,
                        &ArchProfile::SPARC_V8,
                        &ArchProfile::X86,
                        &w.value,
                    );
                    (f, pb.wire.len())
                })
                .collect();
        let pbio = sizes[0].1;
        let mpi = sizes[1].1;
        let xml = sizes[2].1;
        // MPI wire is packed (no padding) but PBIO carries padding + header;
        // both are within a few dozen bytes. XML is several times larger.
        assert!(xml > 2 * pbio, "xml {xml} vs pbio {pbio}");
        assert!(xml > 2 * mpi, "xml {xml} vs mpi {mpi}");
    }

    #[test]
    fn homogeneous_pbio_is_zero_copy_path() {
        let w = workload(MsgSize::B100);
        let mut pb = prepare(
            WireFormat::PbioDcg,
            &w.schema,
            &w.schema,
            &ArchProfile::SPARC_V8,
            &ArchProfile::SPARC_V8,
            &w.value,
        );
        (pb.decode)(); // must not panic; plan.identical path
    }

    #[test]
    fn mismatched_schemas_prepare() {
        let w = workload(MsgSize::B100);
        let extended = crate::workloads::extended_schema_prepended(&w.schema);
        let value = crate::workloads::extended_value(&w.value);
        let mut pb = prepare(
            WireFormat::PbioDcg,
            &extended,
            &w.schema,
            &ArchProfile::X86,
            &ArchProfile::X86,
            &value,
        );
        (pb.encode)();
        (pb.decode)();
    }
}
