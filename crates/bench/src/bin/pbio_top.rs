//! pbio-top — live daemon topology viewer fed by the `INSPECT` exchange.
//!
//! Asks a serv daemon for a [`TopoSnapshot`] — per-connection queue
//! depths, per-channel durable heads, per-shard load, consumer-lag
//! watermarks, and the tail of the flight recorder — and renders it as
//! a `top`-style table. The snapshot itself crosses the wire as a
//! self-describing PBIO record on the `K_INSPECT_ACK` frame.
//!
//! ```text
//! pbio-top                      # self-contained demo: durable replay,
//!                               #   sampled until consumer lag hits 0
//! pbio-top --addr HOST:PORT     # one-shot snapshot of a live daemon
//! pbio-top --events N           # demo history size (default 4000)
//! pbio-top --json               # machine-readable output
//! pbio-top --smoke              # demo run + assertions (CI)
//! ```

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio_bench::cli::{json_escape, json_object, require, CommonArgs};
use pbio_obs::export::TopoSnapshot;
use pbio_obs::{flight_kind_name, FL_CONNECT, FL_REPLAY_FINISH, FL_REPLAY_START};
use pbio_serv::{FlushPolicy, ServClient, ServConfig, ServDaemon, StoreConfig, TraceConfig};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;

/// One convergence sample from the demo's monitor loop.
struct Sample {
    t_ms: u64,
    /// Worst consumer lag across all watermarks (events behind head).
    max_lag: u64,
    /// Deepest outbound queue across all connections.
    max_queue: u64,
}

struct Report {
    snapshot: TopoSnapshot,
    /// Demo mode only: lag/queue trajectory while replay drained.
    convergence: Vec<Sample>,
}

fn main() -> ExitCode {
    let mut events: u64 = 4_000;
    let parsed = CommonArgs::parse(
        "pbio-top [--addr HOST:PORT] [--events N] [--json] [--smoke]",
        |flag, args| match flag {
            "--events" => {
                events = require(args, "--events", "a count")?;
                Ok(true)
            }
            _ => Ok(false),
        },
    );
    let Some(CommonArgs { addr, json, smoke }) = parsed else {
        return ExitCode::FAILURE;
    };

    let outcome = match addr {
        Some(addr) => observe(&addr),
        None => demo(events),
    };
    let report = match outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pbio-top: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print_json(&report);
    } else {
        print_table(&report);
    }
    if smoke {
        if let Err(e) = check_smoke(&report, events) {
            eprintln!("SMOKE FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nSMOKE OK");
    }
    ExitCode::SUCCESS
}

/// One-shot snapshot of a live daemon.
fn observe(addr: &str) -> Result<Report, String> {
    let mut client =
        ServClient::connect(addr, &ArchProfile::X86_64).map_err(|e| format!("connect: {e}"))?;
    let snapshot = client.inspect().map_err(|e| format!("inspect: {e}"))?;
    Ok(Report {
        snapshot,
        convergence: Vec::new(),
    })
}

fn tick_schema() -> Schema {
    Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::I64),
            FieldDecl::atom("temp", AtomType::F64),
        ],
    )
    .unwrap()
}

/// Self-contained demo: a durable daemon, `events` records of history,
/// then a `subscribe_from(0)` reader whose catch-up the monitor watches
/// through `inspect()` until its consumer-lag watermark reaches 0.
fn demo(events: u64) -> Result<Report, String> {
    let dir = std::env::temp_dir().join(format!("pbio-top-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: Some(Duration::from_millis(100)),
            trace: TraceConfig {
                sample_mod: 0,
                publish_interval: None,
                sink_capacity: 16,
            },
            durability: Some(StoreConfig {
                flush: FlushPolicy::EveryBatch,
                ..StoreConfig::new(dir.clone())
            }),
            ..ServConfig::default()
        },
    )
    .map_err(|e| format!("bind daemon: {e}"))?;
    let addr = daemon.local_addr();
    let schema = tick_schema();

    // Lay down the durable history and wait until every publish is acked
    // (on disk), so the reader's replay faces the full backlog at once.
    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64)
        .map_err(|e| format!("publisher connect: {e}"))?;
    let format = publisher
        .register_format(&schema)
        .map_err(|e| format!("register: {e}"))?;
    let chan = publisher
        .open_channel_durable("ticks")
        .map_err(|e| format!("open ticks: {e}"))?;
    for seq in 0..events {
        let value = RecordValue::new()
            .with("seq", seq as i64)
            .with("temp", seq as f64 * 0.5);
        publisher
            .publish_value(chan, format, &value)
            .map_err(|e| format!("publish: {e}"))?;
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while publisher.stats().publishes_acked < events {
        if Instant::now() >= deadline {
            return Err(format!(
                "acks stalled at {}/{events}",
                publisher.stats().publishes_acked
            ));
        }
        let _ = publisher.poll(Duration::from_millis(20));
    }

    // Reader: replay everything from offset 0 on its own thread so the
    // monitor below can watch the watermark drain concurrently.
    let stop = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicU64::new(0));
    let reader = {
        let stop = stop.clone();
        let delivered = delivered.clone();
        let schema = schema.clone();
        std::thread::spawn(move || {
            let mut client =
                ServClient::connect(addr, &ArchProfile::X86_64).expect("reader connect");
            let chan = client.open_channel("ticks").expect("reader open");
            client
                .subscribe_from(chan, &schema, 0)
                .expect("subscribe_from");
            while !stop.load(Ordering::Relaxed) {
                if let Ok(Some(_)) = client.poll(Duration::from_millis(20)) {
                    delivered.fetch_add(1, Ordering::Relaxed);
                }
            }
        })
    };

    // Monitor: sample the topology until the reader's lag converges to 0
    // *and* every event has actually been handed to the application.
    let mut monitor =
        ServClient::connect(addr, &ArchProfile::X86_64).map_err(|e| format!("monitor: {e}"))?;
    let started = Instant::now();
    let deadline = started + Duration::from_secs(60);
    let mut convergence = Vec::new();
    let snapshot = loop {
        let snap = monitor.inspect().map_err(|e| format!("inspect: {e}"))?;
        let max_lag = snap.lags.iter().map(|l| l.lag()).max().unwrap_or(0);
        let max_queue = snap.conns.iter().map(|c| c.queue_depth).max().unwrap_or(0);
        convergence.push(Sample {
            t_ms: started.elapsed().as_millis() as u64,
            max_lag,
            max_queue,
        });
        let caught_up = !snap.lags.is_empty()
            && max_lag == 0
            && max_queue == 0
            && delivered.load(Ordering::Relaxed) >= events;
        if caught_up {
            break snap;
        }
        if Instant::now() >= deadline {
            stop.store(true, Ordering::Relaxed);
            let _ = reader.join();
            return Err(format!(
                "lag never converged: max_lag={max_lag} max_queue={max_queue} delivered={}",
                delivered.load(Ordering::Relaxed)
            ));
        }
        std::thread::sleep(Duration::from_millis(25));
    };

    stop.store(true, Ordering::Relaxed);
    let _ = reader.join();
    publisher
        .disconnect()
        .map_err(|e| format!("disconnect: {e}"))?;
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    Ok(Report {
        snapshot,
        convergence,
    })
}

fn print_table(report: &Report) {
    let s = &report.snapshot;
    println!(
        "pbio-top — {} conn(s), {} channel(s), {} shard(s) @ t={}ms",
        s.conn_total,
        s.chan_total,
        s.shards.len(),
        s.t_ns / 1_000_000
    );

    println!(
        "\n{:<6} {:<6} {:<6} {:>7} {:>12} {:>9} {:>7} {:>9}",
        "conn", "shard", "caps", "queue", "bytes_sent", "frames", "tapped", "idle_ms"
    );
    for c in &s.conns {
        let idle_ms = s.t_ns.saturating_sub(c.last_active_ns) / 1_000_000;
        println!(
            "{:<6} {:<6} {:<#6x} {:>7} {:>12} {:>9} {:>7} {:>9}",
            c.conn, c.shard, c.caps, c.queue_depth, c.bytes_sent, c.frames_sent, c.tapped, idle_ms
        );
    }

    println!(
        "\n{:<6} {:<18} {:<7} {:>4} {:>5} {:>10} {:>8} {:>5} {:>11}",
        "chan", "name", "durable", "home", "subs", "publishes", "head", "segs", "disk_bytes"
    );
    for ch in &s.channels {
        println!(
            "{:<6} {:<18} {:<7} {:>4} {:>5} {:>10} {:>8} {:>5} {:>11}",
            ch.id,
            ch.name,
            if ch.durable { "yes" } else { "-" },
            ch.home,
            ch.subscribers,
            ch.publishes,
            ch.head,
            ch.segments,
            ch.disk_bytes
        );
    }

    if !s.peers.is_empty() {
        println!(
            "\n{:<6} {:<5} {:>10} {:>10} {:>9} {:>8} {:>9}",
            "peer", "up", "relay_tx", "relay_rx", "dropped", "pending", "idle_ms"
        );
        for p in &s.peers {
            let idle_ms = s.t_ns.saturating_sub(p.last_rx_ns) / 1_000_000;
            println!(
                "{:<6} {:<5} {:>10} {:>10} {:>9} {:>8} {:>9}",
                p.peer,
                if p.connected { "yes" } else { "-" },
                p.relay_tx,
                p.relay_rx,
                p.relay_dropped,
                p.pending,
                idle_ms
            );
        }
    }

    println!(
        "\n{:<6} {:>6} {:>6} {:>9} {:>5}",
        "shard", "conns", "ready", "wakeups", "cpu"
    );
    for sh in &s.shards {
        let cpu = if sh.cpu < 0 {
            "-".to_string()
        } else {
            sh.cpu.to_string()
        };
        println!(
            "{:<6} {:>6} {:>6} {:>9} {:>5}",
            sh.shard, sh.conns, sh.ready, sh.wakeups, cpu
        );
    }

    if !s.lags.is_empty() {
        println!(
            "\n{:<6} {:<6} {:>8} {:>10} {:>6}",
            "chan", "conn", "head", "delivered", "lag"
        );
        for l in &s.lags {
            println!(
                "{:<6} {:<6} {:>8} {:>10} {:>6}",
                l.chan,
                l.conn,
                l.head,
                l.delivered,
                l.lag()
            );
        }
    }

    if !s.flight.is_empty() {
        println!(
            "\nflight recorder ({} recorded, last {}):",
            s.flight_total,
            s.flight.len()
        );
        for ev in &s.flight {
            println!(
                "  t={:>8}ms {:<14} conn={} chan={} code={} aux={}",
                ev.t_ns / 1_000_000,
                flight_kind_name(ev.kind),
                ev.conn,
                ev.chan,
                ev.code,
                ev.aux
            );
        }
    }

    if !report.convergence.is_empty() {
        println!("\nreplay convergence (max lag / max queue over time):");
        for sample in &report.convergence {
            println!(
                "  t={:>6}ms lag={:>6} queue={:>5}",
                sample.t_ms, sample.max_lag, sample.max_queue
            );
        }
    }
}

fn print_json(report: &Report) {
    let s = &report.snapshot;
    let mut out = format!(
        "\"snapshot\":{{\"t_ns\":{},\"conn_total\":{},\"chan_total\":{},\
         \"lag_total\":{},\"flight_total\":{},",
        s.t_ns, s.conn_total, s.chan_total, s.lag_total, s.flight_total
    );
    out.push_str("\"conns\":[");
    for (i, c) in s.conns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"conn\":{},\"shard\":{},\"caps\":{},\"queue_depth\":{},\
             \"bytes_sent\":{},\"frames_sent\":{},\"tapped\":{},\"last_active_ns\":{}}}",
            c.conn,
            c.shard,
            c.caps,
            c.queue_depth,
            c.bytes_sent,
            c.frames_sent,
            c.tapped,
            c.last_active_ns
        ));
    }
    out.push_str("],\"channels\":[");
    for (i, ch) in s.channels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"name\":\"{}\",\"durable\":{},\"home\":{},\"subscribers\":{},\
             \"publishes\":{},\"head\":{},\"segments\":{},\"disk_bytes\":{}}}",
            ch.id,
            json_escape(&ch.name),
            ch.durable,
            ch.home,
            ch.subscribers,
            ch.publishes,
            ch.head,
            ch.segments,
            ch.disk_bytes
        ));
    }
    out.push_str("],\"peers\":[");
    for (i, p) in s.peers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"peer\":{},\"connected\":{},\"relay_tx\":{},\"relay_rx\":{},\
             \"relay_dropped\":{},\"pending\":{},\"last_rx_ns\":{}}}",
            p.peer, p.connected, p.relay_tx, p.relay_rx, p.relay_dropped, p.pending, p.last_rx_ns
        ));
    }
    out.push_str("],\"shards\":[");
    for (i, sh) in s.shards.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"shard\":{},\"conns\":{},\"ready\":{},\"wakeups\":{},\"cpu\":{}}}",
            sh.shard, sh.conns, sh.ready, sh.wakeups, sh.cpu
        ));
    }
    out.push_str("],\"lags\":[");
    for (i, l) in s.lags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"chan\":{},\"conn\":{},\"head\":{},\"delivered\":{},\"lag\":{}}}",
            l.chan,
            l.conn,
            l.head,
            l.delivered,
            l.lag()
        ));
    }
    out.push_str("],\"flight\":[");
    for (i, ev) in s.flight.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"t_ns\":{},\"kind\":\"{}\",\"conn\":{},\"chan\":{},\"code\":{},\"aux\":{}}}",
            ev.t_ns,
            flight_kind_name(ev.kind),
            ev.conn,
            ev.chan,
            ev.code,
            ev.aux
        ));
    }
    out.push_str("]},\"convergence\":[");
    for (i, sample) in report.convergence.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"t_ms\":{},\"max_lag\":{},\"max_queue\":{}}}",
            sample.t_ms, sample.max_lag, sample.max_queue
        ));
    }
    out.push(']');
    println!("{}", json_object("pbio-top/v1", out));
}

/// CI assertions: the demo's topology actually witnessed the replay —
/// the watermark was visibly behind, then converged to zero.
fn check_smoke(report: &Report, events: u64) -> Result<(), String> {
    let s = &report.snapshot;
    let ticks = s
        .channels
        .iter()
        .find(|ch| ch.name == "ticks")
        .ok_or("snapshot is missing the demo channel")?;
    if !ticks.durable {
        return Err("demo channel lost its durable flag".into());
    }
    if ticks.head != events {
        return Err(format!("durable head is {}, expected {events}", ticks.head));
    }
    if s.shards.is_empty() || s.shards.iter().all(|sh| sh.wakeups == 0) {
        return Err("no shard recorded any wakeups".into());
    }
    if s.lags.is_empty() || s.lags.iter().any(|l| l.lag() != 0) {
        return Err("consumer lag did not converge to 0".into());
    }
    if !report.convergence.iter().any(|sample| sample.max_lag > 0) {
        return Err("monitor never observed a mid-replay watermark (lag > 0)".into());
    }
    for kind in [FL_CONNECT, FL_REPLAY_START, FL_REPLAY_FINISH] {
        if !s.flight.iter().any(|ev| ev.kind == kind) {
            return Err(format!(
                "flight recorder is missing a {} event",
                flight_kind_name(kind)
            ));
        }
    }
    Ok(())
}
