//! pbio-stats — a live per-stage cost table fed from the `$stats` channel.
//!
//! Attaches to a serv daemon as an ordinary subscriber on the reserved
//! `$stats` channel and renders a Figure-1-style component breakdown
//! (encode → send → receive → convert) from the metric snapshots the
//! daemon and clients publish about themselves — PBIO records describing
//! the PBIO machinery that carried them.
//!
//! ```text
//! pbio-stats                    # self-contained demo: daemon + publisher
//!                               #   + homogeneous + big-endian subscriber
//! pbio-stats --addr HOST:PORT   # attach to a live daemon
//! pbio-stats --duration 5       # observe for 5 seconds (default 3)
//! pbio-stats --json             # machine-readable output
//! pbio-stats --smoke            # short demo run + assertions (CI)
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio_bench::cli::{json_escape, json_object, require, CommonArgs};
use pbio_bench::workloads::{workload, MsgSize};
use pbio_obs::export::{snapshot_from_value, StatsHeader, ROLE_DAEMON};
use pbio_obs::{HistogramSnapshot, Snapshot};
use pbio_serv::{ServClient, ServConfig, ServDaemon, TraceConfig, STATS_CHANNEL};
use pbio_types::arch::ArchProfile;
use pbio_types::value::decode_native;

/// Channel the demo publisher streams workload records on.
const DEMO_CHANNEL: &str = "pbio-stats-demo";

fn main() -> ExitCode {
    let mut duration = Duration::from_secs(3);
    let parsed = CommonArgs::parse(
        "pbio-stats [--addr HOST:PORT] [--duration SECS] [--json] [--smoke]",
        |flag, args| match flag {
            "--duration" => {
                let secs: u64 = require(args, "--duration", "whole seconds")?;
                duration = Duration::from_secs(secs);
                Ok(true)
            }
            _ => Ok(false),
        },
    );
    let Some(CommonArgs { addr, json, smoke }) = parsed else {
        return ExitCode::FAILURE;
    };
    if smoke {
        duration = Duration::from_secs(2);
    }

    let outcome = match addr {
        Some(addr) => observe(&addr, duration),
        None => demo(duration),
    };
    let snapshots = match outcome {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pbio-stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        print_json(&snapshots);
    } else {
        print_table(&snapshots);
    }
    if smoke {
        if let Err(e) = check_smoke(&snapshots) {
            eprintln!("SMOKE FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nSMOKE OK");
    }
    ExitCode::SUCCESS
}

/// Latest snapshot per publisher, keyed by (role, id).
type Snapshots = HashMap<(u32, u32), (StatsHeader, Snapshot)>;

/// Subscribe to `$stats` on a live daemon and collect snapshots for
/// `duration`. Records arrive in the publisher's native layout and are
/// decoded through the announced wire layout — the heterogeneous path
/// when daemon and monitor disagree on architecture.
fn observe(addr: &str, duration: Duration) -> Result<Snapshots, String> {
    let mut client =
        ServClient::connect(addr, &ArchProfile::X86_64).map_err(|e| format!("connect: {e}"))?;
    let chan = client
        .open_channel(STATS_CHANNEL)
        .map_err(|e| format!("open {STATS_CHANNEL}: {e}"))?;
    client
        .subscribe_raw(chan, None)
        .map_err(|e| format!("subscribe: {e}"))?;

    let mut snapshots = Snapshots::new();
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        let ev = match client.poll_raw(Duration::from_millis(200)) {
            Ok(Some(ev)) => ev,
            Ok(None) => continue,
            Err(e) => return Err(format!("poll: {e}")),
        };
        let value = decode_native(ev.bytes, &ev.layout).map_err(|e| format!("decode: {e}"))?;
        if let Some((header, snap)) = snapshot_from_value(&value) {
            // Snapshots are cumulative: the latest per publisher wins.
            snapshots.insert((header.role, header.id), (header, snap));
        }
    }
    Ok(snapshots)
}

/// Self-contained demo: daemon, an x86-64 publisher driving `publish_value`
/// (so encode is timed per event), one homogeneous subscriber (zero-copy
/// receive) and one SPARC subscriber (DCG-converted receive). Every client
/// publishes its own registry on `$stats` alongside the daemon's ticks.
fn demo(duration: Duration) -> Result<Snapshots, String> {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 4096,
            stats_interval: Some(Duration::from_millis(200)),
            trace: TraceConfig::default(),
            ..ServConfig::default()
        },
    )
    .map_err(|e| format!("bind daemon: {e}"))?;
    let addr = daemon.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::new();
    for profile in [
        &ArchProfile::X86_64,   // homogeneous subscriber: zero-copy
        &ArchProfile::SPARC_V8, // big-endian subscriber: converted
    ] {
        let stop = stop.clone();
        let profile = profile.clone();
        threads.push(std::thread::spawn(move || {
            let w = workload(MsgSize::B100);
            let mut client = ServClient::connect(addr, &profile).expect("subscriber connect");
            let chan = client.open_channel(DEMO_CHANNEL).expect("open channel");
            let stats_chan = client.open_channel(STATS_CHANNEL).expect("open $stats");
            client.subscribe(chan, &w.schema, None).expect("subscribe");
            let mut last_stats = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                let _ = client.poll(Duration::from_millis(10));
                if last_stats.elapsed() >= Duration::from_millis(200) {
                    last_stats = Instant::now();
                    let _ = client.publish_stats(stats_chan);
                }
            }
            let _ = client.publish_stats(stats_chan);
        }));
    }

    {
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let w = workload(MsgSize::B100);
            let mut client =
                ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
            let format = client.register_format(&w.schema).expect("register format");
            let chan = client.open_channel(DEMO_CHANNEL).expect("open channel");
            let stats_chan = client.open_channel(STATS_CHANNEL).expect("open $stats");
            let mut last_stats = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..100 {
                    client
                        .publish_value(chan, format, &w.value)
                        .expect("publish");
                }
                if last_stats.elapsed() >= Duration::from_millis(200) {
                    last_stats = Instant::now();
                    let _ = client.publish_stats(stats_chan);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            let _ = client.publish_stats(stats_chan);
        }));
    }

    let snapshots = observe(&addr.to_string(), duration);
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    daemon.shutdown();
    snapshots
}

fn fmt_us(ns: f64) -> String {
    format!("{:.2}", ns / 1_000.0)
}

fn hist_row(label: &str, source: &str, h: &HistogramSnapshot) -> String {
    format!(
        "{label:<34} {source:<16} {:>9} {:>10} {:>10}",
        h.count,
        fmt_us(h.mean()),
        fmt_us(h.quantile(0.99) as f64),
    )
}

/// Render the Figure-1-style component table: one row per measured stage,
/// every number sourced from a `$stats` snapshot that crossed the wire.
fn print_table(snapshots: &Snapshots) {
    let mut keys: Vec<&(u32, u32)> = snapshots.keys().collect();
    keys.sort();
    println!(
        "collected {} publisher snapshot(s) on {STATS_CHANNEL}:",
        keys.len()
    );
    for key in &keys {
        let (header, _) = &snapshots[key];
        let role = if header.role == ROLE_DAEMON {
            "daemon"
        } else {
            "client"
        };
        println!(
            "  {role}#{} seq={} t={}ms",
            header.id,
            header.seq,
            header.t_ns / 1_000_000
        );
    }

    println!(
        "\n{:<34} {:<16} {:>9} {:>10} {:>10}",
        "stage", "source", "count", "mean µs", "p99 µs"
    );
    for key in &keys {
        let (header, snap) = &snapshots[key];
        let source = if header.role == ROLE_DAEMON {
            "daemon".to_string()
        } else {
            format!("client#{}", header.id)
        };
        if let Some(h) = snap.histogram("client_encode_ns").filter(|h| h.count > 0) {
            println!("{}", hist_row("encode (publish_value)", &source, h));
        }
        if let Some(h) = snap.histogram("serv_recv_ns").filter(|h| h.count > 0) {
            println!(
                "{}",
                hist_row("receive (daemon frame handling)", &source, h)
            );
        }
        if let Some(h) = snap.histogram("serv_fanout_ns").filter(|h| h.count > 0) {
            println!("{}", hist_row("fan-out (per event)", &source, h));
        }
        if let Some(h) = snap.histogram("serv_send_ns").filter(|h| h.count > 0) {
            println!("{}", hist_row("send (vectored write batch)", &source, h));
        }
        if let Some(h) = snap.histogram("client_convert_ns").filter(|h| h.count > 0) {
            println!("{}", hist_row("convert (DCG, heterogeneous)", &source, h));
        }
        if let Some(zc) = snap.counter("client_zero_copy_events").filter(|&n| n > 0) {
            println!(
                "{:<34} {:<16} {zc:>9} {:>10} {:>10}",
                "receive (zero-copy, homogeneous)", source, "-", "-"
            );
        }
    }

    for key in &keys {
        let (header, snap) = &snapshots[key];
        if header.role != ROLE_DAEMON {
            continue;
        }
        println!("\ndaemon counters:");
        for name in [
            "serv_events_in",
            "serv_events_out",
            "serv_filtered_at_source",
            "serv_dropped",
            "serv_bytes_in",
            "serv_bytes_out",
            "serv_writes",
            "serv_frames_batched",
            "pool_hits",
            "pool_misses",
        ] {
            if let Some(v) = snap.counter(name) {
                println!("  {name:<26} {v}");
            }
        }
        let (Some(events), Some(writes)) =
            (snap.counter("serv_events_out"), snap.counter("serv_writes"))
        else {
            continue;
        };
        if writes > 0 {
            println!(
                "  realized batching factor    {:.2} frames/write",
                events as f64 / writes as f64
            );
        }
    }
}

/// Machine-readable report: one schema-bearing object with one entry
/// per publisher snapshot, every metric keyed by its (escaped) registry
/// name. Histograms are reduced to count/sum/mean/p50/p90/p99 rather
/// than raw buckets.
fn print_json(snapshots: &Snapshots) {
    let mut keys: Vec<&(u32, u32)> = snapshots.keys().collect();
    keys.sort();
    let mut out = String::from("\"snapshots\":[");
    for (i, key) in keys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (header, snap) = &snapshots[key];
        let role = if header.role == ROLE_DAEMON {
            "daemon"
        } else {
            "client"
        };
        out.push_str(&format!(
            "{{\"role\":\"{role}\",\"id\":{},\"seq\":{},\"t_ns\":{},",
            header.id, header.seq, header.t_ns
        ));
        out.push_str("\"counters\":{");
        for (j, (name, v)) in snap.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (j, (name, v)) in snap.gauges.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (j, (name, h)) in snap.histograms.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                json_escape(name),
                h.count,
                h.sum,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
        }
        out.push_str("},\"traces\":[");
        for (j, (stage, at, value)) in snap.traces.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"at\":{at},\"value\":{value}}}",
                json_escape(stage)
            ));
        }
        out.push_str("]}");
    }
    out.push(']');
    println!("{}", json_object("pbio-stats/v1", out));
}

/// CI assertions: the dogfooded channel actually carried nonzero
/// measurements for every stage the acceptance criteria name.
fn check_smoke(snapshots: &Snapshots) -> Result<(), String> {
    let daemon = snapshots
        .values()
        .find(|(h, _)| h.role == ROLE_DAEMON)
        .map(|(_, s)| s)
        .ok_or("no daemon snapshot arrived on $stats")?;
    if daemon.counter("serv_events_in").unwrap_or(0) == 0 {
        return Err("daemon snapshot has serv_events_in == 0".into());
    }
    if daemon.histogram("serv_send_ns").map_or(0, |h| h.count) == 0 {
        return Err("daemon snapshot has no write timings".into());
    }
    let clients: Vec<&Snapshot> = snapshots
        .values()
        .filter(|(h, _)| h.role != ROLE_DAEMON)
        .map(|(_, s)| s)
        .collect();
    if !clients
        .iter()
        .any(|s| s.histogram("client_encode_ns").map_or(0, |h| h.count) > 0)
    {
        return Err("no client snapshot carried encode timings".into());
    }
    if !clients
        .iter()
        .any(|s| s.histogram("client_convert_ns").map_or(0, |h| h.count) > 0)
    {
        return Err("no client snapshot carried convert timings (hetero pair)".into());
    }
    if !clients
        .iter()
        .any(|s| s.counter("client_zero_copy_events").unwrap_or(0) > 0)
    {
        return Err("no client snapshot saw zero-copy events (homo pair)".into());
    }
    Ok(())
}
