//! Figure 5: round-trip cost comparison, PBIO (with DCG) vs MPICH.
//!
//! ```text
//! cargo run -p pbio-bench --release --bin fig5_roundtrip
//! ```
//!
//! The paper's headline: "PBIO can accomplish a round-trip in 45% of the
//! time required by MPICH" at 100 KB, because the sender-side encoding cost
//! is virtually eliminated and the receiver-side conversion is generated
//! code (§4.3/Figure 5).

use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_net::{measure_leg, RoundTripCosts, SimLink};
use pbio_types::arch::ArchProfile;

fn iters_for(size: MsgSize) -> u32 {
    match size {
        MsgSize::B100 => 20_000,
        MsgSize::K1 => 10_000,
        MsgSize::K10 => 2_000,
        MsgSize::K100 => 300,
    }
}

fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn round_trip(fmt: WireFormat, size: MsgSize, link: &SimLink, era: bool) -> RoundTripCosts {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let w = workload(size);
    let iters = iters_for(size);
    let mut fwd = prepare(fmt, &w.schema, &w.schema, sparc, x86, &w.value);
    let mut forward = measure_leg(link, &mut *fwd.encode, &mut *fwd.decode, iters);
    let mut bck = prepare(fmt, &w.schema, &w.schema, x86, sparc, &w.value);
    let mut back = measure_leg(link, &mut *bck.encode, &mut *bck.decode, iters);
    if era {
        use pbio_bench::era::{scale_leg, SPARC_FACTOR, X86_FACTOR};
        forward = scale_leg(forward, SPARC_FACTOR, X86_FACTOR);
        back = scale_leg(back, X86_FACTOR, SPARC_FACTOR);
    }
    RoundTripCosts { forward, back }
}

fn main() {
    let link = SimLink::paper_ethernet();
    let era = pbio_bench::era::era_mode();

    println!("Figure 5 — round-trip comparison: PBIO DCG vs MPICH (sparc <-> x86)");
    if era {
        println!("(--era: CPU components scaled to the paper's 1999 hosts; see pbio_bench::era)");
    } else {
        println!("(raw host CPU times; pass --era to scale CPU to the paper's 1999 hosts)");
    }
    println!("(microseconds; paper: PBIO 100Kb round-trip = 35270 vs MPICH 80090, ratio 44%)\n");
    println!(
        "{:>6} | {:>22} | {:>22} | {:>12}",
        "size", "MPICH total (enc/dec)", "PBIO total (enc/dec)", "PBIO/MPICH"
    );
    println!("{}", "-".repeat(76));

    for size in MsgSize::all() {
        let mpi = round_trip(WireFormat::Mpi, size, &link, era);
        let pbio = round_trip(WireFormat::PbioDcg, size, &link, era);
        let mpi_cpu =
            us(mpi.forward.encode + mpi.forward.decode + mpi.back.encode + mpi.back.decode);
        let pbio_cpu =
            us(pbio.forward.encode + pbio.forward.decode + pbio.back.encode + pbio.back.decode);
        println!(
            "{:>6} | {:>11.1} ({:>8.1}) | {:>11.1} ({:>8.1}) | {:>11.0}%",
            size.label(),
            us(mpi.total()),
            mpi_cpu,
            us(pbio.total()),
            pbio_cpu,
            us(pbio.total()) / us(mpi.total()) * 100.0
        );
    }

    println!();
    println!("Detailed PBIO legs (compare paper Figure 5 lower half):");
    println!(
        "{:>6} | {:>12} {:>10} {:>10} | {:>10} {:>10} {:>12}",
        "size", "sparc enc", "network", "i86 dec", "i86 enc", "network", "sparc dec"
    );
    println!("{}", "-".repeat(86));
    for size in MsgSize::all() {
        let rt = round_trip(WireFormat::PbioDcg, size, &link, era);
        println!(
            "{:>6} | {:>12.2} {:>10.1} {:>10.1} | {:>10.2} {:>10.1} {:>12.1}",
            size.label(),
            us(rt.forward.encode),
            us(rt.forward.network),
            us(rt.forward.decode),
            us(rt.back.encode),
            us(rt.back.network),
            us(rt.back.decode),
        );
    }
    println!();
    println!(
        "Paper PBIO DCG reference (µs): 100b rt=620; 1Kb rt=870; 10Kb rt=4300; 100Kb rt=35270"
    );
    println!("Paper PBIO legs at 100Kb: enc 2, net 15390, i86 dec 3320 | enc 1, net 15390, sparc dec 1160");
}
