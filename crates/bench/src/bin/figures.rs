//! Figures 2, 3, 4, 6 and 7 — one table per figure.
//!
//! ```text
//! cargo run -p pbio-bench --release --bin figures
//! ```
//!
//! * Fig. 2 — send-side encode times on the Sparc (XML / MPICH / CORBA / PBIO)
//! * Fig. 3 — receive-side decode times on the Sparc, heterogeneous
//!   (x86 sender), interpreted converters
//! * Fig. 4 — receive-side: MPICH vs PBIO interpreted vs PBIO DCG
//! * Fig. 6 — PBIO DCG receive with/without an unexpected field, heterogeneous
//! * Fig. 7 — same, homogeneous (matched case is zero-copy)
//!
//! Times are per-record microseconds, averaged over many iterations.

use pbio_bench::workloads::{extended_schema_prepended, extended_value, workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_net::time_avg;
use pbio_types::arch::ArchProfile;

fn iters_for(size: MsgSize) -> u32 {
    match size {
        MsgSize::B100 => 30_000,
        MsgSize::K1 => 10_000,
        MsgSize::K10 => 2_000,
        MsgSize::K100 => 300,
    }
}

/// Measure the encode closure of one prepared combination, in µs.
fn encode_us(fmt: WireFormat, size: MsgSize, sp: &ArchProfile, dp: &ArchProfile) -> f64 {
    let w = workload(size);
    let mut pb = prepare(fmt, &w.schema, &w.schema, sp, dp, &w.value);
    time_avg(
        || {
            (pb.encode)();
        },
        iters_for(size),
    )
    .as_secs_f64()
        * 1e6
}

/// Measure the decode closure, in µs.
fn decode_us(fmt: WireFormat, size: MsgSize, sp: &ArchProfile, dp: &ArchProfile) -> f64 {
    let w = workload(size);
    let mut pb = prepare(fmt, &w.schema, &w.schema, sp, dp, &w.value);
    time_avg(|| (pb.decode)(), iters_for(size)).as_secs_f64() * 1e6
}

/// Decode µs with a mismatched (extended) sender format.
fn decode_mismatch_us(size: MsgSize, sp: &ArchProfile, dp: &ArchProfile) -> f64 {
    let w = workload(size);
    let ext = extended_schema_prepended(&w.schema);
    let v = extended_value(&w.value);
    let mut pb = prepare(WireFormat::PbioDcg, &ext, &w.schema, sp, dp, &v);
    time_avg(|| (pb.decode)(), iters_for(size)).as_secs_f64() * 1e6
}

fn print_table(title: &str, columns: &[&str], rows: Vec<(MsgSize, Vec<f64>)>) {
    println!("{title}");
    print!("{:>6}", "size");
    for c in columns {
        print!(" | {c:>16}");
    }
    println!();
    println!("{}", "-".repeat(8 + columns.len() * 19));
    for (size, vals) in rows {
        print!("{:>6}", size.label());
        for v in vals {
            print!(" | {v:>16.2}");
        }
        println!();
    }
    println!();
}

fn main() {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;

    // ---- Figure 2: sender encode on the Sparc ----
    let formats2 = [
        WireFormat::Xml,
        WireFormat::Mpi,
        WireFormat::Cdr,
        WireFormat::PbioDcg,
    ];
    let rows = MsgSize::all()
        .into_iter()
        .map(|size| {
            let vals = formats2
                .iter()
                .map(|f| encode_us(*f, size, sparc, x86))
                .collect();
            (size, vals)
        })
        .collect();
    print_table(
        "Figure 2 — sender encode times on the Sparc (µs)\n\
         (paper: MPICH 34 µs -> 13 ms with size; PBIO flat ~3 µs; XML far above all)",
        &["XML", "MPICH", "CORBA", "PBIO"],
        rows,
    );

    // ---- Figure 3: receiver decode on the Sparc, heterogeneous ----
    let formats3 = [
        WireFormat::Xml,
        WireFormat::Mpi,
        WireFormat::Cdr,
        WireFormat::PbioInterp,
    ];
    let rows = MsgSize::all()
        .into_iter()
        .map(|size| {
            let vals = formats3
                .iter()
                .map(|f| decode_us(*f, size, x86, sparc))
                .collect();
            (size, vals)
        })
        .collect();
    print_table(
        "Figure 3 — receiver decode times on the Sparc, x86 sender (µs)\n\
         (paper: XML 1-2 orders of magnitude above PBIO interpreted; PBIO < MPICH)",
        &["XML", "MPICH", "CORBA", "PBIO interp"],
        rows,
    );

    // ---- Figure 4: interpreted vs DCG receive ----
    let formats4 = [WireFormat::Mpi, WireFormat::PbioInterp, WireFormat::PbioDcg];
    let rows = MsgSize::all()
        .into_iter()
        .map(|size| {
            let vals = formats4
                .iter()
                .map(|f| decode_us(*f, size, x86, sparc))
                .collect();
            (size, vals)
        })
        .collect();
    print_table(
        "Figure 4 — receiver decode: interpreted vs DCG conversions (µs)\n\
         (paper: DCG 'significantly faster', near copy speed)",
        &["MPICH", "PBIO interp", "PBIO DCG"],
        rows,
    );

    // ---- Figure 6: heterogeneous receive, matched vs unexpected field ----
    let rows = MsgSize::all()
        .into_iter()
        .map(|size| {
            let matched = decode_us(WireFormat::PbioDcg, size, x86, sparc);
            let mismatched = decode_mismatch_us(size, x86, sparc);
            (size, vec![matched, mismatched])
        })
        .collect();
    print_table(
        "Figure 6 — heterogeneous receive (sparc side): matched vs unexpected leading field (µs)\n\
         (paper: 'the extra field has no effect upon the receive-side performance')",
        &["matched", "mismatched"],
        rows,
    );

    // ---- Figure 7: homogeneous receive, matched vs unexpected field ----
    let rows = MsgSize::all()
        .into_iter()
        .map(|size| {
            let matched = decode_us(WireFormat::PbioDcg, size, sparc, sparc);
            let mismatched = decode_mismatch_us(size, sparc, sparc);
            (size, vec![matched, mismatched])
        })
        .collect();
    print_table(
        "Figure 7 — homogeneous receive (sparc-sparc): matched (zero-copy) vs unexpected field (µs)\n\
         (paper: mismatch forces conversion; overhead ~= memcpy of the data)",
        &["matched", "mismatched"],
        rows,
    );

    // ---- Wire sizes (the paper's compactness discussion, §4.1/§5) ----
    println!("Wire sizes in bytes (native record on the Sparc vs bytes on the wire)");
    println!(
        "{:>6} | {:>8} | {:>8} {:>8} {:>8} {:>10} | {:>9}",
        "size", "native", "PBIO", "MPICH", "CORBA", "XML", "XML×native"
    );
    println!("{}", "-".repeat(76));
    for size in MsgSize::all() {
        let w = workload(size);
        let native = pbio_types::layout::Layout::of(&w.schema, sparc)
            .unwrap()
            .size();
        let mut row = Vec::new();
        for fmt in [
            WireFormat::PbioDcg,
            WireFormat::Mpi,
            WireFormat::Cdr,
            WireFormat::Xml,
        ] {
            row.push(
                prepare(fmt, &w.schema, &w.schema, sparc, x86, &w.value)
                    .wire
                    .len(),
            );
        }
        println!(
            "{:>6} | {:>8} | {:>8} {:>8} {:>8} {:>10} | {:>8.1}x",
            size.label(),
            native,
            row[0],
            row[1],
            row[2],
            row[3],
            row[3] as f64 / native as f64
        );
    }
    println!("\n(paper: XML expansion of 6-8x is not unusual for mixed text/numeric records;");
    println!(" dense double arrays formatted at full precision land in the same range)");
}
