//! pbio-dump — offline renderer for wire-tap capture directories.
//!
//! Opens a capture written by a daemon configured with
//! [`pbio_serv::ServConfig::tap`] (crash recovery included: torn tails
//! are CRC-truncated exactly like any other store channel) and renders
//! it at two levels:
//!
//! * **frame level** — every captured frame with direction, relative
//!   timestamp, connection id, kind, args, and body length;
//! * **record level** — `PUBLISH`/`EVENT` bodies decoded back into
//!   field/value records using the `FORMAT`/`ANNOUNCE` frames *inside
//!   the capture itself*. No daemon, no schema registry: a capture is
//!   self-describing or it is a bug.
//!
//! ```text
//! pbio-dump --dir DIR           # render a capture directory
//! pbio-dump --dir DIR --limit 40
//! pbio-dump --dir DIR --json    # one schema-bearing JSON object
//! pbio-dump --smoke             # self-contained demo + assertions (CI)
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;

use pbio_bench::cli::{json_escape, json_object, require, CommonArgs};
use pbio_obs::TRACE_TRAILER_LEN;
use pbio_serv::protocol::{
    kind_name, K_EVENT, K_HELLO, K_HELLO_ACK, K_PUBLISH, OFFSET_FLAG, OFFSET_TRAILER_LEN,
    TRACE_FLAG,
};
use pbio_serv::tap::{
    capture_connections, capture_layouts, read_capture, CaptureFile, CapturedFrame, TAP_IN,
};
use pbio_serv::{ServClient, ServConfig, ServDaemon, TapConfig};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{decode_native, RecordValue};

fn main() -> ExitCode {
    let mut dir: Option<String> = None;
    let mut limit: usize = 0;
    let parsed = CommonArgs::parse(
        "pbio-dump --dir DIR [--limit N] [--json] | pbio-dump --smoke",
        |flag, args| match flag {
            "--dir" => {
                dir = Some(require::<String>(args, "--dir", "a capture directory")?);
                Ok(true)
            }
            "--limit" => {
                limit = require(args, "--limit", "a row count")?;
                Ok(true)
            }
            _ => Ok(false),
        },
    );
    let Some(CommonArgs { addr, json, smoke }) = parsed else {
        return ExitCode::FAILURE;
    };
    if addr.is_some() {
        eprintln!("pbio-dump reads capture directories, not live daemons (drop --addr)");
        return ExitCode::FAILURE;
    }

    if smoke {
        return match run_smoke(json) {
            Ok(()) => {
                println!("\nSMOKE OK");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("SMOKE FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let Some(dir) = dir else {
        eprintln!("pbio-dump: --dir is required (or --smoke for the self-test)");
        return ExitCode::FAILURE;
    };
    let capture = match read_capture(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pbio-dump: {e}");
            return ExitCode::FAILURE;
        }
    };
    render(&dir, &capture, limit, json);
    ExitCode::SUCCESS
}

/// Decode one event/publish body through the capture's own layouts,
/// stripping the offset and trace trailers the flag bits announce.
fn decode_record(
    layouts: &HashMap<u32, Layout>,
    b: u32,
    body: &[u8],
) -> Option<Result<RecordValue, String>> {
    let mut end = body.len();
    if b & OFFSET_FLAG != 0 {
        end = end.checked_sub(OFFSET_TRAILER_LEN)?;
    }
    if b & TRACE_FLAG != 0 {
        end = end.checked_sub(TRACE_TRAILER_LEN)?;
    }
    let format = b & !(OFFSET_FLAG | TRACE_FLAG);
    let layout = layouts.get(&format)?;
    Some(decode_native(&body[..end], layout).map_err(|e| e.to_string()))
}

/// Render the capture at frame level and record level.
fn render(dir: &str, capture: &CaptureFile, limit: usize, json: bool) {
    let frames = &capture.frames;
    let layouts = capture_layouts(frames);
    let conns = capture_connections(frames);
    let t0 = frames.first().map_or(0, |f| f.t_ns);

    if json {
        let mut out = format!(
            "\"dir\":\"{}\",\"frames\":{},\"torn_tails\":{},\"truncated_bytes\":{},",
            json_escape(dir),
            frames.len(),
            capture.torn_tails,
            capture.truncated_bytes
        );
        out.push_str("\"conns\":[");
        for (i, c) in conns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str("],\"formats\":[");
        let mut ids: Vec<&u32> = layouts.keys().collect();
        ids.sort();
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&id.to_string());
        }
        out.push_str("],\"capture\":[");
        for (i, f) in frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"t_ns\":{},\"conn\":{},\"dir\":\"{}\",\"kind\":\"{}\",\
                 \"a\":{},\"b\":{},\"len\":{}",
                f.t_ns,
                f.conn,
                if f.dir == TAP_IN { "in" } else { "out" },
                kind_name(f.frame.kind),
                f.frame.a,
                f.frame.b,
                f.frame.body.len()
            ));
            if f.frame.kind == K_EVENT || f.frame.kind == K_PUBLISH {
                match decode_record(&layouts, f.frame.b, f.frame.body.as_slice()) {
                    Some(Ok(rec)) => {
                        out.push_str(&format!(
                            ",\"record\":\"{}\"",
                            json_escape(&rec.to_string())
                        ));
                    }
                    Some(Err(e)) => {
                        out.push_str(&format!(",\"record_error\":\"{}\"", json_escape(&e)));
                    }
                    None => {}
                }
            }
            out.push('}');
        }
        out.push(']');
        println!("{}", json_object("pbio-dump/v1", out));
        return;
    }

    println!(
        "capture {dir}: {} frame(s), {} connection(s), {} decodable format(s)",
        frames.len(),
        conns.len(),
        layouts.len()
    );
    if capture.torn_tails > 0 {
        println!(
            "recovery: {} torn tail(s) truncated ({} bytes discarded)",
            capture.torn_tails, capture.truncated_bytes
        );
    }
    println!(
        "\n{:<6} {:>9} {:<5} {:<4} {:<14} {:>10} {:>10} {:>7}",
        "idx", "t_ms", "conn", "dir", "kind", "a", "b", "len"
    );
    let shown = if limit > 0 { limit } else { frames.len() };
    for (i, f) in frames.iter().take(shown).enumerate() {
        let dir_glyph = if f.dir == TAP_IN { "->" } else { "<-" };
        let mut line = format!(
            "{:<6} {:>9} {:<5} {:<4} {:<14} {:>10} {:>10} {:>7}",
            i,
            f.t_ns.saturating_sub(t0) / 1_000_000,
            f.conn,
            dir_glyph,
            kind_name(f.frame.kind),
            f.frame.a,
            f.frame.b,
            f.frame.body.len()
        );
        if f.frame.kind == K_EVENT || f.frame.kind == K_PUBLISH {
            match decode_record(&layouts, f.frame.b, f.frame.body.as_slice()) {
                Some(Ok(rec)) => line.push_str(&format!("  {rec}")),
                Some(Err(e)) => line.push_str(&format!("  <undecodable: {e}>")),
                None => line.push_str("  <no layout in capture>"),
            }
        }
        println!("{line}");
    }
    if shown < frames.len() {
        println!("... {} more frame(s) (raise --limit)", frames.len() - shown);
    }
}

fn tick_schema() -> Schema {
    Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::I64),
            FieldDecl::atom("temp", AtomType::F64),
        ],
    )
    .unwrap()
}

/// Self-contained CI check: run a tapped daemon through a short
/// publish/subscribe session, then dump the capture and assert it is
/// complete, self-describing, and fully decodable.
fn run_smoke(json: bool) -> Result<(), String> {
    const EVENTS: u64 = 50;
    let dir = std::env::temp_dir().join(format!("pbio-dump-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: None,
            tap: Some(TapConfig::new(&dir)),
            ..ServConfig::default()
        },
    )
    .map_err(|e| format!("bind daemon: {e}"))?;
    let addr = daemon.local_addr();
    let schema = tick_schema();

    let mut subscriber = ServClient::connect(addr, &ArchProfile::X86_64)
        .map_err(|e| format!("subscriber connect: {e}"))?;
    let chan = subscriber
        .open_channel("dump-demo")
        .map_err(|e| format!("open channel: {e}"))?;
    subscriber
        .subscribe(chan, &schema, None)
        .map_err(|e| format!("subscribe: {e}"))?;

    let mut publisher = ServClient::connect(addr, &ArchProfile::X86_64)
        .map_err(|e| format!("publisher connect: {e}"))?;
    let format = publisher
        .register_format(&schema)
        .map_err(|e| format!("register: {e}"))?;
    let chan_pub = publisher
        .open_channel("dump-demo")
        .map_err(|e| format!("open channel: {e}"))?;
    for seq in 0..EVENTS {
        let value = RecordValue::new()
            .with("seq", seq as i64)
            .with("temp", seq as f64 * 0.25);
        publisher
            .publish_value(chan_pub, format, &value)
            .map_err(|e| format!("publish: {e}"))?;
    }
    let mut received = 0u64;
    while received < EVENTS {
        match subscriber.poll(Duration::from_secs(5)) {
            Ok(Some(_)) => received += 1,
            Ok(None) => return Err(format!("delivery stalled at {received}/{EVENTS}")),
            Err(e) => return Err(format!("poll: {e}")),
        }
    }
    publisher.disconnect().map_err(|e| format!("bye: {e}"))?;
    subscriber.disconnect().map_err(|e| format!("bye: {e}"))?;
    // Orderly shutdown flushes the tap ring's tail into the capture log.
    daemon.shutdown();

    let capture = read_capture(&dir)?;
    render(&dir.display().to_string(), &capture, 30, json);

    let frames = &capture.frames;
    if capture.torn_tails != 0 {
        return Err("clean shutdown left a torn tail".into());
    }
    if !frames
        .iter()
        .any(|f| f.dir == TAP_IN && f.frame.kind == K_HELLO)
    {
        return Err("capture is missing the inbound HELLO".into());
    }
    if !frames
        .iter()
        .any(|f| f.dir != TAP_IN && f.frame.kind == K_HELLO_ACK)
    {
        return Err("capture is missing the outbound HELLO_ACK".into());
    }
    let layouts = capture_layouts(frames);
    if layouts.is_empty() {
        return Err("capture carries no decodable format".into());
    }
    let check = |f: &CapturedFrame| -> Result<u64, String> {
        match decode_record(&layouts, f.frame.b, f.frame.body.as_slice()) {
            Some(Ok(_)) => Ok(1),
            Some(Err(e)) => Err(format!("{} body undecodable: {e}", kind_name(f.frame.kind))),
            None => Err(format!(
                "{} references a format the capture does not describe",
                kind_name(f.frame.kind)
            )),
        }
    };
    let mut publishes = 0;
    let mut events = 0;
    for f in frames {
        match f.frame.kind {
            K_PUBLISH => publishes += check(f)?,
            K_EVENT => events += check(f)?,
            _ => {}
        }
    }
    if publishes != EVENTS || events != EVENTS {
        return Err(format!(
            "expected {EVENTS} publishes and {EVENTS} events, captured {publishes}/{events}"
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
