//! pbio-trace — causal timelines from the `$trace` channel.
//!
//! Attaches to a serv daemon as an ordinary subscriber on the reserved
//! `$trace` channel, collects the hop records every stage publishes
//! about sampled events, and reconstructs per-event waterfalls:
//! publish → ingress → filter → enqueue → flush → decode, all on the
//! daemon's skew-corrected time axis, plus a per-hop p50/p99 summary.
//!
//! ```text
//! pbio-trace                    # self-contained demo: daemon + publisher
//!                               #   + homogeneous + big-endian subscriber
//! pbio-trace --addr HOST:PORT   # attach to a live daemon
//! pbio-trace --duration 5       # observe for 5 seconds (default 3)
//! pbio-trace --subs 64          # demo fan-out width (default 2)
//! pbio-trace --json             # machine-readable output
//! pbio-trace --smoke            # short demo run + assertions (CI)
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pbio_bench::cli::{json_object, require, CommonArgs};
use pbio_bench::workloads::{workload, MsgSize};
use pbio_obs::export::hop_from_value;
use pbio_obs::{hop_name, TraceHop, HOP_COUNT, HOP_PUBLISH, HOP_REQUIRED};
use pbio_serv::{ServClient, ServConfig, ServDaemon, TraceConfig, TRACE_CHANNEL};
use pbio_types::arch::ArchProfile;
use pbio_types::value::decode_native;

/// Channel the demo publisher streams workload records on.
const DEMO_CHANNEL: &str = "pbio-trace-demo";

/// Most recent complete timelines rendered (text) or emitted (JSON).
const MAX_RENDERED: usize = 64;

/// Causality slack for the smoke assertions: hop timestamps come from
/// two processes corrected onto one axis, so allow this much residual
/// skew before calling a timeline out of order.
const SMOKE_SLACK_NS: u64 = 1_000_000;

fn main() -> ExitCode {
    let mut duration = Duration::from_secs(3);
    let mut subs = 2usize;
    let parsed = CommonArgs::parse(
        "pbio-trace [--addr HOST:PORT] [--duration SECS] [--subs N] [--json] [--smoke]",
        |flag, args| match flag {
            "--duration" => {
                let secs: u64 = require(args, "--duration", "whole seconds")?;
                duration = Duration::from_secs(secs);
                Ok(true)
            }
            "--subs" => {
                subs = require(args, "--subs", "a subscriber count >= 1")?;
                if subs < 1 {
                    return Err("--subs takes a subscriber count >= 1".into());
                }
                Ok(true)
            }
            _ => Ok(false),
        },
    );
    let Some(CommonArgs { addr, json, smoke }) = parsed else {
        return ExitCode::FAILURE;
    };
    if smoke {
        duration = Duration::from_secs(2);
    }

    let outcome = match addr {
        Some(addr) => observe(&addr, duration),
        None => demo(duration, subs),
    };
    let hops = match outcome {
        Ok(h) => h,
        Err(e) => {
            eprintln!("pbio-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let timelines = assemble(hops);
    if json {
        print_json(&timelines);
    } else {
        print_report(&timelines);
    }
    if smoke {
        if let Err(e) = check_smoke(&timelines) {
            eprintln!("SMOKE FAILED: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nSMOKE OK");
    }
    ExitCode::SUCCESS
}

/// Subscribe to `$trace` on a live daemon and collect hop records for
/// `duration`. Hop records are ordinary PBIO records — the daemon's and
/// each subscriber's exports arrive through the same announce/decode
/// machinery as any other channel.
fn observe(addr: &str, duration: Duration) -> Result<Vec<TraceHop>, String> {
    let mut client =
        ServClient::connect(addr, &ArchProfile::X86_64).map_err(|e| format!("connect: {e}"))?;
    let chan = client
        .open_channel(TRACE_CHANNEL)
        .map_err(|e| format!("open {TRACE_CHANNEL}: {e}"))?;
    client
        .subscribe_raw(chan, None)
        .map_err(|e| format!("subscribe: {e}"))?;

    let mut hops = Vec::new();
    let deadline = Instant::now() + duration;
    while Instant::now() < deadline {
        let ev = match client.poll_raw(Duration::from_millis(200)) {
            Ok(Some(ev)) => ev,
            Ok(None) => continue,
            Err(e) => return Err(format!("poll: {e}")),
        };
        let value = decode_native(ev.bytes, &ev.layout).map_err(|e| format!("decode: {e}"))?;
        if let Some(hop) = hop_from_value(&value) {
            hops.push(hop);
        }
    }
    Ok(hops)
}

/// Self-contained demo: daemon sampling every publish, an x86-64
/// publisher whose events carry trace trailers, and `subs` subscribers
/// alternating homogeneous and SPARC profiles — so decode hops cover
/// both the zero-copy and the DCG-converted receive path. Subscribers
/// export their decode hops on `$trace`; the daemon exports its own
/// stages on a timer.
fn demo(duration: Duration, subs: usize) -> Result<Vec<TraceHop>, String> {
    let daemon = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            queue_capacity: 4096,
            stats_interval: None,
            trace: TraceConfig {
                sample_mod: 1,
                publish_interval: Some(Duration::from_millis(100)),
                sink_capacity: 4096,
            },
            ..ServConfig::default()
        },
    )
    .map_err(|e| format!("bind daemon: {e}"))?;
    let addr = daemon.local_addr();
    let stop = Arc::new(AtomicBool::new(false));

    let mut threads = Vec::new();
    for i in 0..subs {
        let profile = if i % 2 == 0 {
            ArchProfile::X86_64 // homogeneous subscriber: zero-copy decode
        } else {
            ArchProfile::SPARC_V8 // big-endian subscriber: converted decode
        };
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let w = workload(MsgSize::B100);
            let mut client = ServClient::connect(addr, &profile).expect("subscriber connect");
            let chan = client.open_channel(DEMO_CHANNEL).expect("open channel");
            let trace_chan = client.open_channel(TRACE_CHANNEL).expect("open $trace");
            client.subscribe(chan, &w.schema, None).expect("subscribe");
            let mut last_export = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                let _ = client.poll(Duration::from_millis(10));
                if last_export.elapsed() >= Duration::from_millis(100) {
                    last_export = Instant::now();
                    let _ = client.publish_trace(trace_chan);
                }
            }
            let _ = client.publish_trace(trace_chan);
        }));
    }

    {
        let stop = stop.clone();
        threads.push(std::thread::spawn(move || {
            let w = workload(MsgSize::B100);
            let mut client =
                ServClient::connect(addr, &ArchProfile::X86_64).expect("publisher connect");
            let format = client.register_format(&w.schema).expect("register format");
            let chan = client.open_channel(DEMO_CHANNEL).expect("open channel");
            while !stop.load(Ordering::Relaxed) {
                client
                    .publish_value(chan, format, &w.value)
                    .expect("publish");
                std::thread::sleep(Duration::from_millis(10));
            }
        }));
    }

    let hops = observe(&addr.to_string(), duration);
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        let _ = t.join();
    }
    daemon.shutdown();
    hops
}

/// One reconstructed event timeline: every hop record sharing a trace
/// id, sorted onto the daemon's time axis.
struct Timeline {
    trace_id: u64,
    channel: u32,
    /// Sorted by `(hop, t_ns)`: hop kinds are numbered in pipeline
    /// order, and sorting on the kind first keeps the waterfall causal
    /// even when residual cross-process skew (well under the stage
    /// durations, but nonzero) reorders raw timestamps by a hair.
    hops: Vec<TraceHop>,
}

impl Timeline {
    /// The trace's origin: the publish hop's timestamp (which *is* the
    /// trailer's `origin_ns`), or the earliest hop seen.
    fn origin_ns(&self) -> u64 {
        self.hops
            .iter()
            .find(|h| h.hop == HOP_PUBLISH)
            .or(self.hops.first())
            .map_or(0, |h| h.t_ns)
    }

    /// Whether all [`HOP_REQUIRED`] mandatory stages are present at
    /// least once (relay hops are mesh-only and never required).
    fn complete(&self) -> bool {
        let mut seen = [false; HOP_REQUIRED];
        for h in &self.hops {
            if let Some(slot) = seen.get_mut(h.hop as usize) {
                *slot = true;
            }
        }
        seen.iter().all(|&s| s)
    }
}

/// Group hop records by trace id into time-sorted timelines, oldest
/// origin first.
fn assemble(hops: Vec<TraceHop>) -> Vec<Timeline> {
    let mut by_id: HashMap<u64, Vec<TraceHop>> = HashMap::new();
    for hop in hops {
        by_id.entry(hop.trace_id).or_default().push(hop);
    }
    let mut timelines: Vec<Timeline> = by_id
        .into_iter()
        .map(|(trace_id, mut hops)| {
            hops.sort_by_key(|h| (h.hop, h.t_ns));
            let channel = hops
                .iter()
                .find(|h| h.hop == HOP_PUBLISH)
                .or(hops.first())
                .map_or(0, |h| h.channel);
            Timeline {
                trace_id,
                channel,
                hops,
            }
        })
        .collect();
    timelines.sort_by_key(Timeline::origin_ns);
    timelines
}

/// Offset of each hop from its timeline's origin, in pipeline context:
/// `(hop kind, conn, offset ns)` rows in time order.
fn offsets(t: &Timeline) -> Vec<(u32, u32, u64)> {
    let origin = t.origin_ns();
    t.hops
        .iter()
        .map(|h| (h.hop, h.conn, h.t_ns.saturating_sub(origin)))
        .collect()
}

fn fmt_us(ns: f64) -> String {
    format!("{:.1}", ns / 1_000.0)
}

/// `sorted` must be ascending; nearest-rank percentile.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Per-hop-kind origin offsets across every timeline that has a publish
/// hop, sorted ascending — the summary table's raw material.
fn summarize(timelines: &[Timeline]) -> [Vec<u64>; HOP_COUNT] {
    let mut cols: [Vec<u64>; HOP_COUNT] = Default::default();
    for t in timelines {
        for (hop, _, off) in offsets(t) {
            if let Some(col) = cols.get_mut(hop as usize) {
                col.push(off);
            }
        }
    }
    for col in &mut cols {
        col.sort_unstable();
    }
    cols
}

/// Render one waterfall: offset column plus a bar scaled to the
/// timeline's end-to-end latency.
fn print_waterfall(t: &Timeline) {
    let rows = offsets(t);
    let span = rows.iter().map(|r| r.2).max().unwrap_or(0).max(1);
    println!(
        "trace {:#018x} (channel {}, {} hop{}):",
        t.trace_id,
        t.channel,
        rows.len(),
        if rows.len() == 1 { "" } else { "s" }
    );
    for (hop, conn, off) in &rows {
        let width = (off * 40 / span) as usize;
        println!(
            "  {:<8} conn {:<3} +{:>8} µs  |{:<40}|",
            hop_name(*hop),
            conn,
            fmt_us(*off as f64),
            "#".repeat(width),
        );
    }
    println!(
        "  end-to-end: {} µs",
        fmt_us(rows.iter().map(|r| r.2).max().unwrap_or(0) as f64)
    );
}

/// Human-readable report: waterfalls for the most recent complete
/// timelines, then the per-hop p50/p99 summary.
fn print_report(timelines: &[Timeline]) {
    let complete: Vec<&Timeline> = timelines.iter().filter(|t| t.complete()).collect();
    println!(
        "collected {} timeline(s) on {TRACE_CHANNEL}, {} complete (all {HOP_REQUIRED} stages)",
        timelines.len(),
        complete.len()
    );

    let shown = complete.iter().rev().take(2).rev().collect::<Vec<_>>();
    for t in shown {
        println!();
        print_waterfall(t);
    }

    let cols = summarize(timelines);
    println!(
        "\n{:<10} {:>7} {:>12} {:>12}",
        "hop", "count", "p50 µs", "p99 µs"
    );
    for (kind, col) in cols.iter().enumerate() {
        if col.is_empty() {
            continue;
        }
        println!(
            "{:<10} {:>7} {:>12} {:>12}",
            hop_name(kind as u32),
            col.len(),
            fmt_us(percentile(col, 0.50) as f64),
            fmt_us(percentile(col, 0.99) as f64),
        );
    }
}

/// Machine-readable report: the most recent [`MAX_RENDERED`] complete
/// timelines plus the per-hop summary, as a single JSON object. Every
/// value is a number or a fixed hop name, so no escaping is needed.
fn print_json(timelines: &[Timeline]) {
    let complete: Vec<&Timeline> = timelines.iter().filter(|t| t.complete()).collect();
    let shown = complete
        .iter()
        .rev()
        .take(MAX_RENDERED)
        .rev()
        .collect::<Vec<_>>();

    let mut out = format!(
        "\"timelines\":{},\"complete\":{},\"traces\":[",
        timelines.len(),
        complete.len()
    );
    for (i, t) in shown.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"trace_id\":\"{:#x}\",\"channel\":{},\"hops\":[",
            t.trace_id, t.channel
        ));
        for (j, (hop, conn, off)) in offsets(t).iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"hop\":\"{}\",\"conn\":{conn},\"offset_ns\":{off}}}",
                hop_name(*hop)
            ));
        }
        out.push_str("]}");
    }
    out.push_str("],\"summary\":[");
    let cols = summarize(timelines);
    let mut first = true;
    for (kind, col) in cols.iter().enumerate() {
        if col.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"hop\":\"{}\",\"count\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            hop_name(kind as u32),
            col.len(),
            percentile(col, 0.50),
            percentile(col, 0.99),
        ));
    }
    out.push(']');
    println!("{}", json_object("pbio-trace/v1", out));
}

/// CI assertions: at least one event's timeline reconstructed with all
/// six stages in causal order, and every stage measured at least once
/// across the run.
fn check_smoke(timelines: &[Timeline]) -> Result<(), String> {
    let complete: Vec<&Timeline> = timelines.iter().filter(|t| t.complete()).collect();
    if complete.is_empty() {
        return Err(format!(
            "no complete timeline among {} collected",
            timelines.len()
        ));
    }
    // Causality on the first complete timeline: in pipeline order, each
    // stage's earliest stamp may not precede its predecessor's by more
    // than the skew slack.
    let t = complete[0];
    let mut earliest = [u64::MAX; HOP_COUNT];
    for h in &t.hops {
        if let Some(slot) = earliest.get_mut(h.hop as usize) {
            *slot = (*slot).min(h.t_ns);
        }
    }
    for kind in 1..HOP_REQUIRED {
        if earliest[kind] + SMOKE_SLACK_NS < earliest[kind - 1] {
            return Err(format!(
                "hop {} (t={}ns) precedes {} (t={}ns) beyond slack",
                hop_name(kind as u32),
                earliest[kind],
                hop_name(kind as u32 - 1),
                earliest[kind - 1]
            ));
        }
    }
    let cols = summarize(timelines);
    for (kind, col) in cols.iter().enumerate().take(HOP_REQUIRED) {
        if col.is_empty() {
            return Err(format!("no {} hop was recorded", hop_name(kind as u32)));
        }
    }
    Ok(())
}
