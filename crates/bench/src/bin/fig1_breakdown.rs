//! Figure 1: cost breakdown for an MPICH message round-trip between the
//! Sparc and the x86 over (modeled) 100 Mbps Ethernet.
//!
//! ```text
//! cargo run -p pbio-bench --release --bin fig1_breakdown
//! ```
//!
//! Prints, for each of the paper's four message sizes, the six components of
//! the round trip (sparc encode, network, i86 decode, i86 encode, network,
//! sparc decode) plus the CPU fraction — the paper's observation is that
//! encode/decode "typically represent 66% of the total cost" (§4.1).

use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_net::{measure_leg, SimLink};
use pbio_types::arch::ArchProfile;

fn iters_for(size: MsgSize) -> u32 {
    match size {
        MsgSize::B100 => 20_000,
        MsgSize::K1 => 10_000,
        MsgSize::K10 => 2_000,
        MsgSize::K100 => 300,
    }
}

fn us(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let link = SimLink::paper_ethernet();
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let era = pbio_bench::era::era_mode();

    println!(
        "Figure 1 — MPICH round-trip cost breakdown (sparc <-> x86, modeled 100 Mbps Ethernet)"
    );
    if era {
        println!("(--era: CPU components scaled to the paper's 1999 hosts; see pbio_bench::era)");
    } else {
        println!("(raw host CPU times; pass --era to scale CPU to the paper's 1999 hosts)");
    }
    println!("(all times in microseconds; paper round-trips: 100b=660, 1Kb=1110, 10Kb=8430, 100Kb=80090)\n");
    println!(
        "{:>6} | {:>12} {:>10} {:>10} | {:>10} {:>10} {:>12} | {:>10} {:>8}",
        "size",
        "sparc enc",
        "network",
        "i86 dec",
        "i86 enc",
        "network",
        "sparc dec",
        "total",
        "cpu frac"
    );
    println!("{}", "-".repeat(112));

    for size in MsgSize::all() {
        let w = workload(size);
        let iters = iters_for(size);

        // Forward leg: sparc encodes, x86 decodes.
        let mut fwd = prepare(WireFormat::Mpi, &w.schema, &w.schema, sparc, x86, &w.value);
        let mut fwd_costs = measure_leg(&link, &mut *fwd.encode, &mut *fwd.decode, iters);

        // Reply leg: x86 encodes, sparc decodes.
        let mut back = prepare(WireFormat::Mpi, &w.schema, &w.schema, x86, sparc, &w.value);
        let mut back_costs = measure_leg(&link, &mut *back.encode, &mut *back.decode, iters);

        if era {
            use pbio_bench::era::{scale_leg, SPARC_FACTOR, X86_FACTOR};
            fwd_costs = scale_leg(fwd_costs, SPARC_FACTOR, X86_FACTOR);
            back_costs = scale_leg(back_costs, X86_FACTOR, SPARC_FACTOR);
        }

        let rt = pbio_net::RoundTripCosts {
            forward: fwd_costs,
            back: back_costs,
        };
        println!(
            "{:>6} | {:>12.1} {:>10.1} {:>10.1} | {:>10.1} {:>10.1} {:>12.1} | {:>10.1} {:>7.0}%",
            size.label(),
            us(fwd_costs.encode),
            us(fwd_costs.network),
            us(fwd_costs.decode),
            us(back_costs.encode),
            us(back_costs.network),
            us(back_costs.decode),
            us(rt.total()),
            rt.cpu_fraction() * 100.0
        );
    }

    println!();
    println!("Paper (Figure 1) reference components, microseconds:");
    println!(
        "  100b : sparc enc 34,  net 227,  i86 dec 63,   i86 enc 10,  net 227,  sparc dec 104"
    );
    println!(
        "  1Kb  : sparc enc 86,  net 345,  i86 dec 106,  i86 enc 46,  net 345,  sparc dec 186"
    );
    println!(
        "  10Kb : sparc enc 971, net 1940, i86 dec 1190, i86 enc 876, net 1940, sparc dec 1510"
    );
    println!("  100Kb: sparc enc 13310, net 15390, i86 dec 11630, i86 enc 8950, net 15390, sparc dec 15410");
}
