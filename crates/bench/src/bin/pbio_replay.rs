//! pbio-replay — re-drive a captured client session against a live daemon.
//!
//! Reads a wire-tap capture directory (see `pbio-dump`), selects one
//! captured connection, and replays its *inbound* frames against a
//! fresh daemon — re-handshaking, re-registering formats and channels
//! (identifiers are remapped through the live acks), and re-publishing
//! every record. The event stream the live daemon delivers back is
//! then diffed byte-for-byte against the event stream recorded in the
//! capture: in-order per-connection processing makes delivery
//! deterministic, so any divergence is a real behaviour change.
//!
//! ```text
//! pbio-replay --dir DIR --addr HOST:PORT [--conn N] [--timing original|max]
//! pbio-replay --roundtrip [--events N]   # capture + replay in one process
//! pbio-replay --smoke                    # alias for --roundtrip (CI)
//! ```
//!
//! Exit status is non-zero when the delivered stream diverges from the
//! captured one.

use std::process::ExitCode;
use std::time::Duration;

use pbio_bench::cli::{json_escape, json_object, require, CommonArgs};
use pbio_serv::tap::{capture_connections, read_capture};
use pbio_serv::{
    replay_session, ReplayOptions, ReplayReport, ReplaySpeed, ServClient, ServConfig, ServDaemon,
    TapConfig,
};
use pbio_types::arch::ArchProfile;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;

fn main() -> ExitCode {
    let mut dir: Option<String> = None;
    let mut conn: Option<u32> = None;
    let mut speed = ReplaySpeed::Max;
    let mut roundtrip = false;
    let mut events: u64 = 1000;
    let parsed = CommonArgs::parse(
        "pbio-replay --dir DIR --addr HOST:PORT [--conn N] [--timing original|max] [--json] \
         | pbio-replay --roundtrip [--events N]",
        |flag, args| match flag {
            "--dir" => {
                dir = Some(require::<String>(args, "--dir", "a capture directory")?);
                Ok(true)
            }
            "--conn" => {
                conn = Some(require(args, "--conn", "a captured connection id")?);
                Ok(true)
            }
            "--timing" => {
                speed = match require::<String>(args, "--timing", "original|max")?.as_str() {
                    "original" => ReplaySpeed::Original,
                    "max" => ReplaySpeed::Max,
                    other => return Err(format!("--timing expects original|max, got {other}")),
                };
                Ok(true)
            }
            "--roundtrip" => {
                roundtrip = true;
                Ok(true)
            }
            "--events" => {
                events = require(args, "--events", "an event count")?;
                Ok(true)
            }
            _ => Ok(false),
        },
    );
    let Some(CommonArgs { addr, json, smoke }) = parsed else {
        return ExitCode::FAILURE;
    };

    if smoke || roundtrip {
        return match run_roundtrip(events, speed, json) {
            Ok(()) => {
                println!("\nROUNDTRIP OK ({events} events, byte-identical delivery)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ROUNDTRIP FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let (Some(dir), Some(addr)) = (dir, addr) else {
        eprintln!("pbio-replay: --dir and --addr are required (or --roundtrip)");
        return ExitCode::FAILURE;
    };
    let capture = match read_capture(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("pbio-replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    let conns = capture_connections(&capture.frames);
    let Some(conn) = conn.or_else(|| conns.first().copied()) else {
        eprintln!("pbio-replay: capture holds no connections");
        return ExitCode::FAILURE;
    };
    if !conns.contains(&conn) {
        eprintln!("pbio-replay: connection {conn} not in capture (have {conns:?})");
        return ExitCode::FAILURE;
    }
    let opts = ReplayOptions {
        speed,
        ..ReplayOptions::default()
    };
    let report = match replay_session(&capture.frames, conn, &addr, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pbio-replay: {e}");
            return ExitCode::FAILURE;
        }
    };
    let identical = report.byte_identical();
    print_report(&report, conn, json);
    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_report(report: &ReplayReport, conn: u32, json: bool) {
    if json {
        let mut out = format!(
            "\"conn\":{},\"frames_sent\":{},\"expected_events\":{},\"delivered_events\":{},\
             \"byte_identical\":{}",
            conn,
            report.frames_sent,
            report.expected.len(),
            report.delivered.len(),
            report.byte_identical()
        );
        match report.divergence() {
            Some(i) => out.push_str(&format!(",\"divergence\":{i}")),
            None => out.push_str(",\"divergence\":null"),
        }
        out.push_str(",\"errors\":[");
        for (i, e) in report.errors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(e)));
        }
        out.push(']');
        println!("{}", json_object("pbio-replay/v1", out));
        return;
    }
    println!(
        "replayed conn {conn}: {} frame(s) sent, {} event(s) expected, {} delivered",
        report.frames_sent,
        report.expected.len(),
        report.delivered.len()
    );
    for e in &report.errors {
        println!("  daemon error during replay: {e}");
    }
    match report.divergence() {
        None if report.byte_identical() => println!("delivery is byte-identical to the capture"),
        None => println!(
            "delivered {} of {} expected event(s) (no byte divergence in the common prefix)",
            report.delivered.len(),
            report.expected.len()
        ),
        Some(i) => println!("DIVERGENCE at event {i}: delivered bytes differ from capture"),
    }
}

/// CI round-trip: record a deterministic single-connection session under
/// a tapped daemon, then replay it at max speed against a *fresh* daemon
/// and require byte-identical event delivery.
fn run_roundtrip(events: u64, speed: ReplaySpeed, json: bool) -> Result<(), String> {
    let dir = std::env::temp_dir().join(format!("pbio-replay-rt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Session one: a self-subscribing publisher under a tapped daemon.
    // Both daemons get queue headroom for the whole burst: the session
    // publishes before draining, and drop-oldest would otherwise make
    // the recorded (and replayed) delivery depend on socket timing.
    let queue_capacity = (events as usize * 2).max(256);
    let recorded = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: None,
            queue_capacity,
            tap: Some(TapConfig::new(&dir)),
            ..ServConfig::default()
        },
    )
    .map_err(|e| format!("bind recorded daemon: {e}"))?;
    let schema = Schema::new(
        "tick",
        vec![
            FieldDecl::atom("seq", AtomType::I64),
            FieldDecl::atom("temp", AtomType::F64),
        ],
    )
    .map_err(|e| format!("schema: {e}"))?;
    {
        let mut client = ServClient::connect(recorded.local_addr(), &ArchProfile::X86_64)
            .map_err(|e| format!("connect: {e}"))?;
        let chan = client
            .open_channel("replay-rt")
            .map_err(|e| format!("open channel: {e}"))?;
        client
            .subscribe(chan, &schema, None)
            .map_err(|e| format!("subscribe: {e}"))?;
        let format = client
            .register_format(&schema)
            .map_err(|e| format!("register: {e}"))?;
        for seq in 0..events {
            let value = RecordValue::new()
                .with("seq", seq as i64)
                .with("temp", seq as f64 * 0.5);
            client
                .publish_value(chan, format, &value)
                .map_err(|e| format!("publish: {e}"))?;
        }
        let mut received = 0u64;
        while received < events {
            match client.poll(Duration::from_secs(5)) {
                Ok(Some(_)) => received += 1,
                Ok(None) => return Err(format!("delivery stalled at {received}/{events}")),
                Err(e) => return Err(format!("poll: {e}")),
            }
        }
        client.disconnect().map_err(|e| format!("bye: {e}"))?;
    }
    recorded.shutdown();

    let capture = read_capture(&dir)?;
    let conns = capture_connections(&capture.frames);
    let conn = *conns
        .first()
        .ok_or_else(|| "capture holds no connections".to_string())?;

    // Session two: replay against a daemon with no tap and no history.
    let fresh = ServDaemon::bind_with(
        "127.0.0.1:0",
        ServConfig {
            stats_interval: None,
            queue_capacity,
            ..ServConfig::default()
        },
    )
    .map_err(|e| format!("bind fresh daemon: {e}"))?;
    let opts = ReplayOptions {
        speed,
        ..ReplayOptions::default()
    };
    let report = replay_session(
        &capture.frames,
        conn,
        &fresh.local_addr().to_string(),
        &opts,
    )?;
    fresh.shutdown();
    print_report(&report, conn, json);

    if report.expected.len() != events as usize {
        return Err(format!(
            "capture recorded {} delivered event(s), expected {events}",
            report.expected.len()
        ));
    }
    if !report.byte_identical() {
        return Err(match report.divergence() {
            Some(i) => format!("delivery diverged from capture at event {i}"),
            None => format!(
                "delivered {} of {} expected event(s)",
                report.delivered.len(),
                report.expected.len()
            ),
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
