//! Workload generation: the paper's mixed-field records.
//!
//! The evaluation uses "messages of a selection of sizes (from a real
//! mechanical engineering application)" (§4.1): mixed-field structures of
//! roughly 100 B, 1 KB, 10 KB and 100 KB. We synthesize the same shape: a
//! handful of header scalars of mixed types (the part that exercises
//! byte-order, size and offset conversion) plus dense numeric arrays (nodal
//! coordinates/displacements in the mechanical-engineering reading) that
//! set the record size.

use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::typestr::parse_type_string;
use pbio_types::value::{RecordValue, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's four message sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgSize {
    /// ~100 bytes.
    B100,
    /// ~1 KB.
    K1,
    /// ~10 KB.
    K10,
    /// ~100 KB.
    K100,
}

impl MsgSize {
    /// All sizes, smallest first.
    pub fn all() -> [MsgSize; 4] {
        [MsgSize::B100, MsgSize::K1, MsgSize::K10, MsgSize::K100]
    }

    /// Target native record size in bytes (on the reference Sparc V8).
    pub fn target_bytes(self) -> usize {
        match self {
            MsgSize::B100 => 100,
            MsgSize::K1 => 1_000,
            MsgSize::K10 => 10_000,
            MsgSize::K100 => 100_000,
        }
    }

    /// Label used in figures ("100b", "1Kb", ...), matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            MsgSize::B100 => "100b",
            MsgSize::K1 => "1Kb",
            MsgSize::K10 => "10Kb",
            MsgSize::K100 => "100Kb",
        }
    }
}

/// A generated workload: schema + one record instance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The record schema.
    pub schema: Schema,
    /// A deterministic record instance.
    pub value: RecordValue,
    /// The size class it was generated for.
    pub size: MsgSize,
}

/// The fixed header fields every workload record carries — deliberately
/// mixed types so conversions exercise byte order, integer width (`long`)
/// and offset moves.
fn header_fields() -> Vec<FieldDecl> {
    vec![
        FieldDecl::atom("seq", AtomType::CInt),
        FieldDecl::atom("tag", AtomType::Char),
        FieldDecl::atom("valid", AtomType::Bool),
        FieldDecl::atom("timestep", AtomType::CLong),
        FieldDecl::atom("time", AtomType::CDouble),
        FieldDecl::atom("residual", AtomType::CFloat),
        FieldDecl::atom("node_count", AtomType::CUInt),
    ]
}

/// Build the workload schema for one size class. The double array count is
/// chosen so the native record on the reference architecture (the paper's
/// Sparc) is as close as possible to the target size.
pub fn sized_schema(size: MsgSize) -> Schema {
    let reference = &ArchProfile::SPARC_V8;
    let base = Schema::new("mech_record", header_fields()).expect("valid header schema");
    let base_size = Layout::of(&base, reference).expect("layout").size();
    let target = size.target_bytes();
    let doubles = target.saturating_sub(base_size) / 8;
    let mut fields = header_fields();
    if doubles > 0 {
        fields.push(FieldDecl::new(
            "coords",
            parse_type_string(&format!("double[{doubles}]")).expect("valid type string"),
        ));
    }
    Schema::new("mech_record", fields).expect("valid workload schema")
}

/// Deterministically generate a record instance for `schema`.
///
/// Values are chosen to survive every conversion in the test matrix: `long`
/// fields stay within i32 (ILP32 architectures), floats are f32-exact where
/// the field is `float`.
pub fn value_for(schema: &Schema, seed: u64) -> RecordValue {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = RecordValue::new();
    for f in schema.fields() {
        match f.name.as_str() {
            "seq" => v.set("seq", rng.gen_range(0..1_000_000i32)),
            "tag" => v.set("tag", Value::Char(b'A' + rng.gen_range(0..26u8))),
            "valid" => v.set("valid", rng.gen_bool(0.5)),
            "timestep" => v.set("timestep", rng.gen_range(-1_000_000i64..1_000_000)),
            "time" => v.set("time", rng.gen_range(0.0..1.0e6f64)),
            "residual" => v.set("residual", rng.gen_range(-1.0..1.0f32)),
            "node_count" => v.set("node_count", rng.gen_range(0..100_000u32)),
            "coords" => {
                // Count comes from the schema's fixed array length.
                if let pbio_types::schema::TypeDesc::Fixed(_, n) = &f.ty {
                    let items = (0..*n)
                        .map(|_| Value::F64(rng.gen_range(-1.0e3..1.0e3)))
                        .collect();
                    v.set("coords", Value::Array(items));
                }
            }
            other => panic!("unknown workload field {other:?}"),
        }
    }
    v
}

/// Generate the workload for one size class (deterministic).
pub fn workload(size: MsgSize) -> Workload {
    let schema = sized_schema(size);
    let value = value_for(&schema, 0x5EED_0000 + size.target_bytes() as u64);
    Workload {
        schema,
        value,
        size,
    }
}

/// A second workload family: particle/molecular-dynamics records with a
/// nested record, a variable-length neighbor list and a string tag — the
/// full type system in one schema. Used by integration tests and the
/// variable-length benches (MPI cannot describe these records at all, which
/// is itself one of the paper's points about a-priori-agreement systems).
pub fn particle_schema() -> Schema {
    let vec3 = std::sync::Arc::new(
        Schema::new(
            "vec3",
            vec![
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("y", AtomType::CDouble),
                FieldDecl::atom("z", AtomType::CDouble),
            ],
        )
        .expect("valid vec3 schema"),
    );
    Schema::new(
        "particle",
        vec![
            FieldDecl::atom("id", AtomType::CLong),
            FieldDecl::atom("species", AtomType::Char),
            FieldDecl::atom("charge", AtomType::CFloat),
            FieldDecl::new(
                "position",
                pbio_types::schema::TypeDesc::Record(vec3.clone()),
            ),
            FieldDecl::new("velocity", pbio_types::schema::TypeDesc::Record(vec3)),
            FieldDecl::atom("n_neighbors", AtomType::CUInt),
            FieldDecl::new(
                "neighbors",
                parse_type_string("int32[n_neighbors]").expect("valid type string"),
            ),
            FieldDecl::new("origin", pbio_types::schema::TypeDesc::String),
        ],
    )
    .expect("valid particle schema")
}

/// A deterministic particle record with `neighbors` neighbors.
pub fn particle_value(seed: u64, neighbors: usize) -> RecordValue {
    let mut rng = StdRng::seed_from_u64(seed);
    let vec3 = |rng: &mut StdRng| {
        Value::Record(
            RecordValue::new()
                .with("x", rng.gen_range(-10.0..10.0f64))
                .with("y", rng.gen_range(-10.0..10.0f64))
                .with("z", rng.gen_range(-10.0..10.0f64)),
        )
    };
    let p = vec3(&mut rng);
    let v = vec3(&mut rng);
    RecordValue::new()
        .with("id", rng.gen_range(0..1_000_000i64))
        .with("species", Value::Char(b'A' + rng.gen_range(0..4u8)))
        .with("charge", rng.gen_range(-2.0..2.0f32))
        .with("position", p)
        .with("velocity", v)
        .with("n_neighbors", neighbors as u32)
        .with(
            "neighbors",
            Value::Array(
                (0..neighbors)
                    .map(|_| Value::I64(rng.gen_range(0..1_000_000i32) as i64))
                    .collect(),
            ),
        )
        .with(
            "origin",
            format!("rank-{}", rng.gen_range(0..64u32)).as_str(),
        )
}

/// The §4.4 mismatch scenario: the sender's format with one *unexpected*
/// field prepended — the worst case, shifting every expected field's offset
/// (Figures 6 and 7).
pub fn extended_schema_prepended(schema: &Schema) -> Schema {
    schema
        .with_field_prepended(FieldDecl::atom("unexpected", AtomType::CInt))
        .expect("extension is valid")
}

/// The benign evolution the paper recommends: the new field appended at the
/// end of the record, leaving expected offsets untouched.
pub fn extended_schema_appended(schema: &Schema) -> Schema {
    schema
        .with_field_appended(FieldDecl::atom("unexpected", AtomType::CInt))
        .expect("extension is valid")
}

/// A value for an extended schema: the base value plus the new field.
pub fn extended_value(base: &RecordValue) -> RecordValue {
    let mut v = base.clone();
    v.set("unexpected", 0xBEEF_i32);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::value::encode_native;

    #[test]
    fn sizes_hit_targets_on_reference_arch() {
        for size in MsgSize::all() {
            let w = workload(size);
            let layout = Layout::of(&w.schema, &ArchProfile::SPARC_V8).unwrap();
            let actual = layout.size();
            let target = size.target_bytes();
            let err = (actual as f64 - target as f64).abs() / target as f64;
            assert!(err < 0.12, "{}: {actual} vs {target}", size.label());
        }
    }

    #[test]
    fn workloads_encode_on_every_profile() {
        for size in [MsgSize::B100, MsgSize::K1] {
            let w = workload(size);
            for p in ArchProfile::all() {
                let layout = Layout::of(&w.schema, p).unwrap();
                let native = encode_native(&w.value, &layout).unwrap();
                assert_eq!(native.len(), layout.size());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = workload(MsgSize::K1);
        let b = workload(MsgSize::K1);
        assert_eq!(a.value, b.value);
        assert_eq!(a.schema, b.schema);
    }

    #[test]
    fn different_sizes_differ() {
        assert_ne!(workload(MsgSize::B100).schema, workload(MsgSize::K1).schema);
    }

    #[test]
    fn extension_variants() {
        let w = workload(MsgSize::B100);
        let pre = extended_schema_prepended(&w.schema);
        assert_eq!(pre.fields()[0].name, "unexpected");
        let app = extended_schema_appended(&w.schema);
        assert_eq!(app.fields().last().unwrap().name, "unexpected");
        let v = extended_value(&w.value);
        assert!(v.get("unexpected").is_some());
        // Extended values encode under extended schemas.
        let layout = Layout::of(&pre, &ArchProfile::X86).unwrap();
        encode_native(&v, &layout).unwrap();
    }

    #[test]
    fn particle_workload_round_trips_everywhere() {
        let schema = particle_schema();
        for neighbors in [0, 1, 17] {
            let value = particle_value(42, neighbors);
            for p in ArchProfile::all() {
                let layout = Layout::of(&schema, p).unwrap();
                let native = encode_native(&value, &layout).unwrap();
                let back = pbio_types::value::decode_native(&native, &layout).unwrap();
                assert_eq!(back, value, "{} n={neighbors}", p.name);
            }
        }
    }

    #[test]
    fn mixed_header_survives_heterogeneous_conversion_semantics() {
        // Values must fit in 4-byte longs (ILP32 targets).
        for size in MsgSize::all() {
            let w = workload(size);
            let ts = w.value.get("timestep").unwrap().as_i64().unwrap();
            assert!(ts >= i32::MIN as i64 && ts <= i32::MAX as i64);
        }
    }
}
