//! Shared command-line plumbing for the `pbio-*` observability tools.
//!
//! `pbio-stats`, `pbio-top`, `pbio-trace`, `pbio-dump` and `pbio-replay`
//! all speak the same dialect: `--addr HOST:PORT` to attach to a live
//! daemon, `--json` for machine-readable output, `--smoke` for a CI
//! self-test, plus a handful of tool-specific flags. This module holds
//! the one flag loop, the one JSON string escaper, and the one JSON
//! envelope they all use, so the tools stop carrying divergent copies.
//!
//! Every tool's `--json` output is a **single JSON object whose first
//! field is `"schema"`** (e.g. `"pbio-top/v1"`) — a consumer can
//! dispatch on the shape before parsing the rest, and a schema bump is
//! an explicit, greppable event.

use std::fmt::Display;
use std::str::FromStr;

/// The flags every observability tool shares.
#[derive(Debug, Default)]
pub struct CommonArgs {
    /// `--addr HOST:PORT`: attach to a live daemon instead of running
    /// the tool's self-contained demo.
    pub addr: Option<String>,
    /// `--json`: emit one schema-bearing JSON object instead of tables.
    pub json: bool,
    /// `--smoke`: short demo run plus CI assertions.
    pub smoke: bool,
}

impl CommonArgs {
    /// Parse `std::env::args()`, handling the common flags here and
    /// offering everything else to `extra(flag, args)` — which returns
    /// `Ok(true)` if it consumed the flag (pulling any value it needs
    /// off `args`), `Ok(false)` if the flag is unknown, or `Err` for a
    /// malformed value. Unknown flags and `Err`s print the message and
    /// `usage` to stderr and return `None`, so `main` can
    /// `return ExitCode::FAILURE`.
    pub fn parse<F>(usage: &str, mut extra: F) -> Option<CommonArgs>
    where
        F: FnMut(&str, &mut dyn Iterator<Item = String>) -> Result<bool, String>,
    {
        let mut common = CommonArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--addr" => common.addr = args.next(),
                "--json" => common.json = true,
                "--smoke" => common.smoke = true,
                other => match extra(other, &mut args) {
                    Ok(true) => {}
                    Ok(false) => {
                        eprintln!("unknown argument {other:?}");
                        eprintln!("usage: {usage}");
                        return None;
                    }
                    Err(msg) => {
                        eprintln!("{msg}");
                        eprintln!("usage: {usage}");
                        return None;
                    }
                },
            }
        }
        Some(common)
    }
}

/// Pull and parse the value of `flag` from the argument stream;
/// `Err(message)` (for the `extra` callback) when it is missing or
/// unparseable.
pub fn require<T: FromStr>(
    args: &mut dyn Iterator<Item = String>,
    flag: &str,
    what: &str,
) -> Result<T, String> {
    args.next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{flag} takes {what}"))
}

/// Escape a string for inclusion in a JSON string literal: labeled
/// metric names like `client_dropped{chan="ticks"}` carry literal
/// quotes, and channel names are user input.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Wrap a tool's JSON body (a comma-separated field list, no outer
/// braces) into the standard envelope: one object, `"schema"` first.
pub fn json_object(schema: &str, body: impl Display) -> String {
    format!("{{\"schema\":\"{}\",{body}}}", json_escape(schema))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn envelope_puts_schema_first() {
        let out = json_object("pbio-test/v1", "\"n\":3");
        assert_eq!(out, "{\"schema\":\"pbio-test/v1\",\"n\":3}");
    }

    #[test]
    fn require_reports_the_flag() {
        let mut empty = std::iter::empty::<String>();
        let err = require::<u64>(&mut empty, "--events", "a count").unwrap_err();
        assert!(err.contains("--events"));
        let mut one = vec!["42".to_string()].into_iter();
        let v: u64 = require(&mut one, "--events", "a count").unwrap();
        assert_eq!(v, 42);
    }
}
