//! An Expat-model streaming XML parser.
//!
//! Event-driven: the caller supplies an [`XmlHandler`] whose callbacks fire
//! for element starts, element ends and character data — the structure of
//! Expat, which the paper used as "the fastest [XML parser] known to us at
//! this time" (§4.2). The subset parsed is what record encoding needs:
//! elements (with attributes, reported but typically ignored), character
//! data with the five predefined entities, comments, processing
//! instructions, and self-closing tags. It does not implement DTDs or
//! namespaces — neither does the paper's usage.

use std::fmt;

/// Parse errors with byte positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset in the input where the error was detected.
    pub pos: usize,
    /// Description.
    pub msg: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for XmlError {}

/// The Expat-style callback interface.
pub trait XmlHandler {
    /// An element opened. `attrs` holds (name, decoded value) pairs.
    fn start_element(&mut self, name: &str, attrs: &[(String, String)]) -> Result<(), XmlError>;
    /// An element closed.
    fn end_element(&mut self, name: &str) -> Result<(), XmlError>;
    /// Character data (entity-decoded). May be called multiple times per
    /// element.
    fn characters(&mut self, text: &str) -> Result<(), XmlError>;
}

/// The streaming parser.
pub struct Parser;

impl Parser {
    /// Parse `input`, firing `handler` callbacks. Checks well-formedness of
    /// the tag structure (balanced, single root).
    pub fn parse<H: XmlHandler>(input: &str, handler: &mut H) -> Result<(), XmlError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let mut stack: Vec<String> = Vec::new();
        let mut seen_root = false;
        let mut text_start: Option<usize> = None;

        while pos < bytes.len() {
            if bytes[pos] == b'<' {
                if let Some(ts) = text_start.take() {
                    flush_text(input, ts, pos, &stack, handler)?;
                }
                pos = Self::markup(input, pos, &mut stack, &mut seen_root, handler)?;
            } else {
                if text_start.is_none() {
                    text_start = Some(pos);
                }
                pos += 1;
            }
        }
        if let Some(ts) = text_start {
            flush_text(input, ts, bytes.len(), &stack, handler)?;
        }
        if let Some(open) = stack.last() {
            return Err(XmlError {
                pos,
                msg: format!("unclosed element <{open}>"),
            });
        }
        if !seen_root {
            return Err(XmlError {
                pos: 0,
                msg: "no root element".into(),
            });
        }
        Ok(())
    }

    fn markup<H: XmlHandler>(
        input: &str,
        start: usize,
        stack: &mut Vec<String>,
        seen_root: &mut bool,
        handler: &mut H,
    ) -> Result<usize, XmlError> {
        let bytes = input.as_bytes();
        let pos = start + 1;
        if pos >= bytes.len() {
            return Err(XmlError {
                pos: start,
                msg: "dangling '<'".into(),
            });
        }
        match bytes[pos] {
            b'!' => {
                // Comment or CDATA.
                if input[pos..].starts_with("!--") {
                    match input[pos + 3..].find("-->") {
                        Some(i) => Ok(pos + 3 + i + 3),
                        None => Err(XmlError {
                            pos: start,
                            msg: "unterminated comment".into(),
                        }),
                    }
                } else if input[pos..].starts_with("![CDATA[") {
                    match input[pos + 8..].find("]]>") {
                        Some(i) => {
                            let text = &input[pos + 8..pos + 8 + i];
                            if stack.is_empty() {
                                return Err(XmlError {
                                    pos: start,
                                    msg: "character data outside root".into(),
                                });
                            }
                            handler.characters(text)?;
                            Ok(pos + 8 + i + 3)
                        }
                        None => Err(XmlError {
                            pos: start,
                            msg: "unterminated CDATA".into(),
                        }),
                    }
                } else {
                    Err(XmlError {
                        pos: start,
                        msg: "unsupported '<!' construct".into(),
                    })
                }
            }
            b'?' => match input[pos..].find("?>") {
                Some(i) => Ok(pos + i + 2),
                None => Err(XmlError {
                    pos: start,
                    msg: "unterminated processing instruction".into(),
                }),
            },
            b'/' => {
                let close = input[pos..].find('>').ok_or(XmlError {
                    pos: start,
                    msg: "unterminated end tag".into(),
                })?;
                let name = input[pos + 1..pos + close].trim();
                if name.is_empty() || !is_name(name) {
                    return Err(XmlError {
                        pos: start,
                        msg: format!("bad end tag name {name:?}"),
                    });
                }
                match stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => {
                        return Err(XmlError {
                            pos: start,
                            msg: format!("mismatched tags: <{open}> closed by </{name}>"),
                        })
                    }
                    None => {
                        return Err(XmlError {
                            pos: start,
                            msg: format!("stray </{name}>"),
                        })
                    }
                }
                handler.end_element(name)?;
                Ok(pos + close + 1)
            }
            _ => {
                // Start tag (possibly self-closing).
                let close = find_tag_end(input, pos).ok_or(XmlError {
                    pos: start,
                    msg: "unterminated start tag".into(),
                })?;
                let self_closing = bytes[close - 1] == b'/';
                let body_end = if self_closing { close - 1 } else { close };
                let body = &input[pos..body_end];
                let (name, attrs) = parse_tag_body(body, start)?;
                if stack.is_empty() {
                    if *seen_root {
                        return Err(XmlError {
                            pos: start,
                            msg: "multiple root elements".into(),
                        });
                    }
                    *seen_root = true;
                }
                handler.start_element(&name, &attrs)?;
                if self_closing {
                    handler.end_element(&name)?;
                } else {
                    stack.push(name);
                }
                Ok(close + 1)
            }
        }
    }
}

fn flush_text<H: XmlHandler>(
    input: &str,
    start: usize,
    end: usize,
    stack: &[String],
    handler: &mut H,
) -> Result<(), XmlError> {
    let raw = &input[start..end];
    if stack.is_empty() {
        if raw.trim().is_empty() {
            return Ok(());
        }
        return Err(XmlError {
            pos: start,
            msg: "character data outside root".into(),
        });
    }
    let decoded = decode_entities(raw, start)?;
    handler.characters(&decoded)
}

/// Find the `>` ending a start tag, respecting quoted attribute values.
fn find_tag_end(input: &str, from: usize) -> Option<usize> {
    let bytes = input.as_bytes();
    let mut quote: Option<u8> = None;
    for (i, &b) in bytes.iter().enumerate().skip(from) {
        match (quote, b) {
            (None, b'>') => return Some(i),
            (None, b'"') | (None, b'\'') => quote = Some(b),
            (Some(q), _) if b == q => quote = None,
            _ => {}
        }
    }
    None
}

fn is_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
}

fn parse_tag_body(body: &str, pos: usize) -> Result<(String, Vec<(String, String)>), XmlError> {
    let mut it = body.char_indices().peekable();
    let name_end = it
        .find(|(_, c)| c.is_whitespace())
        .map(|(i, _)| i)
        .unwrap_or(body.len());
    let name = &body[..name_end];
    if !is_name(name) {
        return Err(XmlError {
            pos,
            msg: format!("bad element name {name:?}"),
        });
    }
    let mut attrs = Vec::new();
    let mut rest = body[name_end..].trim_start();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or(XmlError {
            pos,
            msg: format!("attribute without value in <{name}>"),
        })?;
        let aname = rest[..eq].trim();
        if !is_name(aname) {
            return Err(XmlError {
                pos,
                msg: format!("bad attribute name {aname:?}"),
            });
        }
        let after = rest[eq + 1..].trim_start();
        let quote = after.chars().next().ok_or(XmlError {
            pos,
            msg: "attribute value missing".into(),
        })?;
        if quote != '"' && quote != '\'' {
            return Err(XmlError {
                pos,
                msg: "attribute value must be quoted".into(),
            });
        }
        let vend = after[1..].find(quote).ok_or(XmlError {
            pos,
            msg: "unterminated attribute value".into(),
        })?;
        let value = decode_entities(&after[1..1 + vend], pos)?;
        attrs.push((aname.to_owned(), value));
        rest = after[vend + 2..].trim_start();
    }
    Ok((name.to_owned(), attrs))
}

/// Decode the five predefined entities plus numeric character references.
pub fn decode_entities(raw: &str, pos: usize) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_owned());
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let semi = tail.find(';').ok_or(XmlError {
            pos,
            msg: "unterminated entity".into(),
        })?;
        let ent = &tail[1..semi];
        match ent {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or(XmlError {
                        pos,
                        msg: format!("bad character reference &{ent};"),
                    })?;
                out.push(cp);
            }
            _ if ent.starts_with('#') => {
                let cp = ent[1..]
                    .parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or(XmlError {
                        pos,
                        msg: format!("bad character reference &{ent};"),
                    })?;
                out.push(cp);
            }
            _ => {
                return Err(XmlError {
                    pos,
                    msg: format!("unknown entity &{ent};"),
                })
            }
        }
        rest = &tail[semi + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Escape text for element content.
pub fn escape_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        events: Vec<String>,
    }

    impl XmlHandler for Recorder {
        fn start_element(
            &mut self,
            name: &str,
            attrs: &[(String, String)],
        ) -> Result<(), XmlError> {
            let mut s = format!("+{name}");
            for (k, v) in attrs {
                s.push_str(&format!(" {k}={v}"));
            }
            self.events.push(s);
            Ok(())
        }
        fn end_element(&mut self, name: &str) -> Result<(), XmlError> {
            self.events.push(format!("-{name}"));
            Ok(())
        }
        fn characters(&mut self, text: &str) -> Result<(), XmlError> {
            if !text.trim().is_empty() {
                self.events.push(format!("t:{}", text.trim()));
            }
            Ok(())
        }
    }

    fn events(xml: &str) -> Vec<String> {
        let mut r = Recorder::default();
        Parser::parse(xml, &mut r).unwrap();
        r.events
    }

    #[test]
    fn basic_nested_document() {
        let ev = events("<rec><a>1</a><b><c>x</c></b></rec>");
        assert_eq!(
            ev,
            vec!["+rec", "+a", "t:1", "-a", "+b", "+c", "t:x", "-c", "-b", "-rec"]
        );
    }

    #[test]
    fn attributes_and_self_closing() {
        let ev = events(r#"<r kind="m 1" n='2'><empty/></r>"#);
        assert_eq!(ev, vec!["+r kind=m 1 n=2", "+empty", "-empty", "-r"]);
    }

    #[test]
    fn entities_decode() {
        let ev = events("<r>a&amp;b &lt;tag&gt; &#65;&#x42;</r>");
        assert_eq!(ev, vec!["+r", "t:a&b <tag> AB", "-r"]);
    }

    #[test]
    fn comments_pi_and_cdata() {
        let ev = events("<?xml version=\"1.0\"?><!-- hi --><r><![CDATA[1<2&3]]></r>");
        assert_eq!(ev, vec!["+r", "t:1<2&3", "-r"]);
    }

    #[test]
    fn quoted_gt_inside_attribute() {
        let ev = events(r#"<r note="a>b">x</r>"#);
        assert_eq!(ev, vec!["+r note=a>b", "t:x", "-r"]);
    }

    #[test]
    fn malformed_documents_error() {
        for bad in [
            "<r><a></r>",       // mismatch
            "<r>",              // unclosed
            "</r>",             // stray close
            "text",             // no root
            "<r></r><r2></r2>", // two roots
            "<r>&unknown;</r>", // bad entity
            "<r><a b></a></r>", // attr without value
            "<1bad></1bad>",    // bad name
            "<r><!-- x</r>",    // unterminated comment
            "<r>&#xZZ;</r>",    // bad char ref
        ] {
            let mut rec = Recorder::default();
            assert!(Parser::parse(bad, &mut rec).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let mut rec = Recorder::default();
        let err = Parser::parse("<root><a></b></root>", &mut rec).unwrap_err();
        assert_eq!(err.pos, 9);
    }

    #[test]
    fn escape_round_trips() {
        let mut s = String::new();
        escape_into("a&b<c>d", &mut s);
        assert_eq!(s, "a&amp;b&lt;c&gt;d");
        assert_eq!(decode_entities(&s, 0).unwrap(), "a&b<c>d");
    }
}
