//! XML → binary record, via streaming handlers.
//!
//! This is the receive side of the paper's XML baseline: the parser "calls
//! handler routines for every data element in the XML stream. That handler
//! can interpret the element name, convert the data value from a string to
//! the appropriate binary type and store it in the appropriate place. This
//! flexibility makes XML extremely robust to changes in the incoming
//! record" (§4.3) — and this decoder keeps that robustness: unknown
//! elements are skipped, field order is irrelevant, missing fields stay
//! zero-initialized, and the cost does not change when the sender's format
//! differs from the receiver's (Figures 6/7 discussion, §4.4).

use pbio_types::arch::Endianness;
use pbio_types::layout::{round_up, ConcreteType, Layout};
use pbio_types::prim;

use crate::parser::{Parser, XmlError, XmlHandler};

/// Decodes XML documents into native record images for one receiver layout.
pub struct XmlDecoder {
    layout: Layout,
}

impl XmlDecoder {
    /// Create a decoder producing records laid out as `layout`.
    pub fn new(layout: &Layout) -> XmlDecoder {
        XmlDecoder {
            layout: layout.clone(),
        }
    }

    /// The target layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Decode one document into a native record image.
    pub fn decode(&self, xml: &str) -> Result<Vec<u8>, XmlError> {
        let mut out = Vec::new();
        self.decode_into(xml, &mut out)?;
        Ok(out)
    }

    /// [`XmlDecoder::decode`] into a reusable buffer (cleared first).
    pub fn decode_into(&self, xml: &str, out: &mut Vec<u8>) -> Result<(), XmlError> {
        out.clear();
        out.resize(self.layout.size(), 0);
        let mut state = State {
            out: std::mem::take(out),
            endian: self.layout.endianness(),
            stack: Vec::with_capacity(8),
            root: &self.layout,
            seen_root: false,
        };
        let result = Parser::parse(xml, &mut state);
        *out = state.out;
        result
    }
}

enum Frame<'l> {
    Record {
        layout: &'l Layout,
        base: usize,
    },
    Scalar {
        ty: &'l ConcreteType,
        at: usize,
        text: String,
    },
    StringField {
        desc_at: usize,
        text: String,
    },
    FixedArr {
        elem: &'l ConcreteType,
        base: usize,
        stride: usize,
        count: usize,
        idx: usize,
    },
    VarArr {
        elem: &'l ConcreteType,
        stride: usize,
        desc_at: usize,
        start: usize,
        idx: usize,
    },
    Skip {
        depth: usize,
    },
}

struct State<'l> {
    out: Vec<u8>,
    endian: Endianness,
    stack: Vec<Frame<'l>>,
    root: &'l Layout,
    seen_root: bool,
}

fn name_matches(field: &str, elem: &str) -> bool {
    // The emitter sanitizes names; compare under the same mapping.
    if field == elem {
        return true;
    }
    field.len() == elem.len()
        && field.chars().zip(elem.chars()).all(|(f, e)| {
            let f2 = if f.is_ascii_alphanumeric() || f == '_' || f == '-' {
                f
            } else {
                '_'
            };
            f2 == e
        })
}

impl<'l> State<'l> {
    fn frame_for(&mut self, ty: &'l ConcreteType, at: usize) -> Frame<'l> {
        match ty {
            ConcreteType::FixedArray {
                elem,
                count,
                stride,
            } => Frame::FixedArr {
                elem,
                base: at,
                stride: *stride,
                count: *count,
                idx: 0,
            },
            ConcreteType::Record(sub) => Frame::Record {
                layout: sub,
                base: at,
            },
            ConcreteType::String => Frame::StringField {
                desc_at: at,
                text: String::new(),
            },
            ConcreteType::VarArray { elem, stride, .. } => {
                let start = round_up(self.out.len(), 8);
                self.out.resize(start, 0);
                Frame::VarArr {
                    elem,
                    stride: *stride,
                    desc_at: at,
                    start,
                    idx: 0,
                }
            }
            scalar => Frame::Scalar {
                ty: scalar,
                at,
                text: String::new(),
            },
        }
    }
}

impl<'l> XmlHandler for State<'l> {
    fn start_element(&mut self, name: &str, _attrs: &[(String, String)]) -> Result<(), XmlError> {
        if !self.seen_root {
            self.seen_root = true;
            // Accept any root name: the receiver matches by field names.
            self.stack.push(Frame::Record {
                layout: self.root,
                base: 0,
            });
            return Ok(());
        }
        let frame = match self.stack.last_mut() {
            None => {
                return Err(XmlError {
                    pos: 0,
                    msg: "element after root closed".into(),
                })
            }
            Some(Frame::Skip { depth }) => {
                *depth += 1;
                return Ok(());
            }
            Some(Frame::Record { layout, base }) => {
                let layout: &'l Layout = layout;
                let base = *base;
                match layout.fields().iter().find(|f| name_matches(&f.name, name)) {
                    None => Frame::Skip { depth: 1 },
                    Some(f) => {
                        let ty: &'l ConcreteType = &f.ty;
                        let at = base + f.offset;
                        self.frame_for(ty, at)
                    }
                }
            }
            Some(Frame::FixedArr {
                elem,
                base,
                stride,
                count,
                idx,
            }) => {
                let elem: &'l ConcreteType = elem;
                if *idx >= *count {
                    // Extra members: skip (robustness over strictness).
                    Frame::Skip { depth: 1 }
                } else {
                    let at = *base + *idx * *stride;
                    *idx += 1;
                    self.frame_for(elem, at)
                }
            }
            Some(Frame::VarArr {
                elem,
                stride,
                start,
                idx,
                ..
            }) => {
                let elem: &'l ConcreteType = elem;
                let at = *start + *idx * *stride;
                *idx += 1;
                let need = at + *stride;
                if self.out.len() < need {
                    self.out.resize(need, 0);
                }
                self.frame_for(elem, at)
            }
            Some(Frame::Scalar { .. }) | Some(Frame::StringField { .. }) => {
                Frame::Skip { depth: 1 }
            }
        };
        self.stack.push(frame);
        Ok(())
    }

    fn end_element(&mut self, _name: &str) -> Result<(), XmlError> {
        match self.stack.last_mut() {
            Some(Frame::Skip { depth }) if *depth > 1 => {
                *depth -= 1;
                return Ok(());
            }
            _ => {}
        }
        let frame = self.stack.pop().ok_or(XmlError {
            pos: 0,
            msg: "unbalanced end".into(),
        })?;
        match frame {
            Frame::Scalar { ty, at, text } => {
                store_scalar(ty, &mut self.out, at, self.endian, &text)?;
            }
            Frame::StringField { desc_at, text } => {
                let start = round_up(self.out.len(), 8);
                self.out.resize(start, 0);
                self.out.extend_from_slice(text.as_bytes());
                prim::write_uint(&mut self.out, desc_at, 4, self.endian, start as u64);
                prim::write_uint(
                    &mut self.out,
                    desc_at + 4,
                    4,
                    self.endian,
                    text.len() as u64,
                );
            }
            Frame::VarArr {
                desc_at,
                start,
                idx,
                ..
            } => {
                prim::write_uint(&mut self.out, desc_at, 4, self.endian, start as u64);
                prim::write_uint(&mut self.out, desc_at + 4, 4, self.endian, idx as u64);
            }
            Frame::Record { .. } | Frame::FixedArr { .. } | Frame::Skip { .. } => {}
        }
        Ok(())
    }

    fn characters(&mut self, text: &str) -> Result<(), XmlError> {
        match self.stack.last_mut() {
            Some(Frame::Scalar { text: buf, .. }) | Some(Frame::StringField { text: buf, .. }) => {
                buf.push_str(text);
            }
            _ => {
                // Ignore whitespace between structural elements; anything
                // else is stray content we tolerate (robustness).
            }
        }
        Ok(())
    }
}

fn store_scalar(
    ty: &ConcreteType,
    out: &mut [u8],
    at: usize,
    endian: Endianness,
    text: &str,
) -> Result<(), XmlError> {
    let bad = |msg: String| XmlError { pos: 0, msg };
    match ty {
        ConcreteType::Int {
            bytes,
            signed: true,
        } => {
            let text = text.trim();
            let v: i64 = text
                .parse()
                .map_err(|_| bad(format!("bad integer {text:?}")))?;
            if !prim::fits_signed(v, *bytes) {
                return Err(bad(format!("{v} does not fit in {bytes} bytes")));
            }
            prim::write_uint(out, at, *bytes, endian, v as u64);
        }
        ConcreteType::Int {
            bytes,
            signed: false,
        } => {
            let text = text.trim();
            let v: u64 = text
                .parse()
                .map_err(|_| bad(format!("bad unsigned {text:?}")))?;
            if !prim::fits_unsigned(v, *bytes) {
                return Err(bad(format!("{v} does not fit in {bytes} bytes")));
            }
            prim::write_uint(out, at, *bytes, endian, v);
        }
        ConcreteType::Float { bytes } => {
            let text = text.trim();
            let v: f64 = text
                .parse()
                .map_err(|_| bad(format!("bad float {text:?}")))?;
            prim::write_float(out, at, *bytes, endian, v);
        }
        ConcreteType::Char => {
            // Char content is NOT trimmed: a space is a legitimate value.
            let mut chars = text.chars();
            let c = chars
                .next()
                .ok_or_else(|| bad("empty char element".into()))?;
            if chars.next().is_some() || !c.is_ascii() {
                return Err(bad(format!(
                    "char element must hold one ASCII char, got {text:?}"
                )));
            }
            out[at] = c as u8;
        }
        ConcreteType::Bool => {
            let v = match text.trim() {
                "true" | "1" => 1u8,
                "false" | "0" => 0u8,
                other => return Err(bad(format!("bad boolean {other:?}"))),
            };
            out[at] = v;
        }
        other => return Err(bad(format!("unexpected scalar store for {other:?}"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emitter::emit_record;
    use pbio_types::arch::ArchProfile;
    use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
    use pbio_types::value::{decode_native, encode_native, RecordValue, Value};
    use std::sync::Arc;

    fn schema() -> Schema {
        let inner = Arc::new(
            Schema::new(
                "pt",
                vec![
                    FieldDecl::atom("px", AtomType::CDouble),
                    FieldDecl::atom("py", AtomType::CDouble),
                ],
            )
            .unwrap(),
        );
        Schema::new(
            "sample",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("c", AtomType::Char),
                FieldDecl::atom("ok", AtomType::Bool),
                FieldDecl::new("v", TypeDesc::array(AtomType::CFloat, 2)),
                FieldDecl::new("p", TypeDesc::Record(inner)),
                FieldDecl::new(
                    "data",
                    TypeDesc::Var(Box::new(TypeDesc::Atom(AtomType::CDouble)), "n".into()),
                ),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap()
    }

    fn value() -> RecordValue {
        RecordValue::new()
            .with("n", 2i32)
            .with("x", -1.25f64)
            .with("c", Value::Char(b'q'))
            .with("ok", true)
            .with("v", Value::Array(vec![0.5.into(), 1.5.into()]))
            .with(
                "p",
                Value::Record(RecordValue::new().with("px", 3.0f64).with("py", 4.0f64)),
            )
            .with("data", Value::Array(vec![7.0.into(), 8.0.into()]))
            .with("name", "x&y<z")
    }

    #[test]
    fn full_round_trip_across_architectures() {
        let schema = schema();
        let v = value();
        for sp in [
            &ArchProfile::SPARC_V8,
            &ArchProfile::X86,
            &ArchProfile::X86_64,
        ] {
            for dp in [
                &ArchProfile::SPARC_V8,
                &ArchProfile::X86_64,
                &ArchProfile::MIPS_N32,
            ] {
                let slay = Layout::of(&schema, sp).unwrap();
                let dlay = Layout::of(&schema, dp).unwrap();
                let native = encode_native(&v, &slay).unwrap();
                let xml = emit_record(&slay, &native).unwrap();
                let out = XmlDecoder::new(&dlay).decode(&xml).unwrap();
                let got = decode_native(&out, &dlay).unwrap();
                assert_eq!(got, v, "{} -> {}", sp.name, dp.name);
            }
        }
    }

    #[test]
    fn unknown_elements_are_skipped() {
        let dlay = Layout::of(&schema(), &ArchProfile::X86).unwrap();
        let xml = "<sample><mystery><deep>1</deep></mystery><n>1</n>\
                   <x>2.5</x><c>a</c><ok>false</ok><v><e>1</e><e>2</e></v>\
                   <p><px>0</px><py>0</py></p><data><e>9</e></data><name>k</name></sample>";
        let out = XmlDecoder::new(&dlay).decode(xml).unwrap();
        let got = decode_native(&out, &dlay).unwrap();
        assert_eq!(got.get("x"), Some(&Value::F64(2.5)));
        assert_eq!(got.get("n"), Some(&Value::I64(1)));
    }

    #[test]
    fn reordered_fields_land_correctly() {
        let dlay = Layout::of(&schema(), &ArchProfile::SPARC_V8).unwrap();
        let xml = "<anything><name>hi</name><x>6.5</x><ok>true</ok><c>z</c>\
                   <v><e>1</e><e>2</e></v><data><e>1.5</e></data>\
                   <p><py>2</py><px>1</px></p><n>1</n></anything>";
        let out = XmlDecoder::new(&dlay).decode(xml).unwrap();
        let got = decode_native(&out, &dlay).unwrap();
        assert_eq!(got.get("x"), Some(&Value::F64(6.5)));
        assert_eq!(got.get("name"), Some(&Value::Str("hi".into())));
        let p = got.get("p").unwrap().as_record().unwrap();
        assert_eq!(p.get("px"), Some(&Value::F64(1.0)));
        assert_eq!(p.get("py"), Some(&Value::F64(2.0)));
    }

    #[test]
    fn missing_fields_default_to_zero() {
        let dlay = Layout::of(&schema(), &ArchProfile::X86).unwrap();
        let xml = "<sample><x>1.5</x></sample>";
        let out = XmlDecoder::new(&dlay).decode(xml).unwrap();
        let got = decode_native(&out, &dlay).unwrap();
        assert_eq!(got.get("x"), Some(&Value::F64(1.5)));
        assert_eq!(got.get("n"), Some(&Value::I64(0)));
        assert_eq!(got.get("name"), Some(&Value::Str(String::new())));
        assert_eq!(got.get("data"), Some(&Value::Array(vec![])));
    }

    #[test]
    fn extra_array_members_are_tolerated() {
        let dlay = Layout::of(&schema(), &ArchProfile::X86).unwrap();
        let xml = "<sample><v><e>1</e><e>2</e><e>3</e><e>4</e></v></sample>";
        let out = XmlDecoder::new(&dlay).decode(xml).unwrap();
        let got = decode_native(&out, &dlay).unwrap();
        assert_eq!(
            got.get("v"),
            Some(&Value::Array(vec![Value::F64(1.0), Value::F64(2.0)]))
        );
    }

    #[test]
    fn bad_values_are_reported() {
        let dlay = Layout::of(&schema(), &ArchProfile::X86).unwrap();
        for bad in [
            "<s><n>abc</n></s>",
            "<s><n>99999999999999999999</n></s>",
            "<s><ok>maybe</ok></s>",
            "<s><c>ab</c></s>",
            "<s><c></c></s>",
            "<s><x>1.2.3</x></s>",
        ] {
            assert!(XmlDecoder::new(&dlay).decode(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn decode_into_reuses_buffer() {
        let dlay = Layout::of(&schema(), &ArchProfile::X86).unwrap();
        let slay = Layout::of(&schema(), &ArchProfile::SPARC_V8).unwrap();
        let native = encode_native(&value(), &slay).unwrap();
        let xml = emit_record(&slay, &native).unwrap();
        let dec = XmlDecoder::new(&dlay);
        let mut buf = Vec::with_capacity(4096);
        let p = buf.as_ptr();
        dec.decode_into(&xml, &mut buf).unwrap();
        assert_eq!(buf.as_ptr(), p);
        assert_eq!(decode_native(&buf, &dlay).unwrap(), value());
    }
}
