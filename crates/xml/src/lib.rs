//! # pbio-xml — an XML wire format with an Expat-like streaming parser
//!
//! The paper's maximum-flexibility baseline (§2): "Rather than transmitting
//! data in binary form, [XML's] wire format is ASCII text, with each record
//! represented in textual form with header and trailer information
//! identifying each field. This allows applications to communicate with no
//! a priori knowledge of each other. However, XML encoding and decoding
//! costs are substantially higher … due to the conversion of data from
//! binary to ASCII and vice-versa. In addition, XML has substantially higher
//! network transmission costs because the ASCII-encoded record is larger
//! … (an expansion factor of 6-8 is not unusual)."
//!
//! The crate reproduces the whole XML path from scratch:
//!
//! * [`emitter`] — binary record → XML text (per-element binary→ASCII
//!   conversion, the send-side cost of Figure 2),
//! * [`parser`] — an Expat-model streaming parser: "calls handler routines
//!   for every data element in the XML stream" (§4.3),
//! * [`decoder`] — the handler set that matches element names to receiver
//!   fields, converts text back to binary and stores it at the right native
//!   offset (the receive-side cost of Figure 3). Like the paper's XML,
//!   it is "extremely robust to changes in the incoming record": unknown
//!   elements are skipped, reordered fields land correctly, and its cost is
//!   unchanged by format mismatches (§4.4).

#![warn(missing_docs)]

pub mod decoder;
pub mod emitter;
pub mod parser;

pub use decoder::XmlDecoder;
pub use emitter::emit_record;
pub use parser::{Parser, XmlError, XmlHandler};
