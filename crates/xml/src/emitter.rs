//! Binary record → XML text.
//!
//! This is the sending side of the paper's XML baseline: "the processing
//! necessary to convert the data from binary to string form and to copy the
//! element begin/end blocks into the output string" (§4.2). Every scalar is
//! formatted to ASCII; the resulting document is typically 6-8× the binary
//! record size.

use pbio_types::arch::Endianness;
use pbio_types::error::TypeError;
use pbio_types::layout::{ConcreteType, Layout};
use pbio_types::prim;

use crate::parser::escape_into;

/// Element name used for anonymous array members.
pub const ELEM_TAG: &str = "e";

/// Encode a native record image into an XML document string.
pub fn emit_record(layout: &Layout, native: &[u8]) -> Result<String, TypeError> {
    let mut out = String::with_capacity(native.len() * 6);
    emit_into(layout, native, &mut out)?;
    Ok(out)
}

/// [`emit_record`] appending to a reusable string buffer.
pub fn emit_into(layout: &Layout, native: &[u8], out: &mut String) -> Result<(), TypeError> {
    let name = sanitize(layout.format_name());
    out.push('<');
    out.push_str(&name);
    out.push('>');
    emit_fields(layout, native, 0, out)?;
    out.push_str("</");
    out.push_str(&name);
    out.push('>');
    Ok(())
}

fn sanitize(name: &str) -> String {
    // Format names become element names; keep them XML-safe.
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().unwrap().is_ascii_digit() {
        s.insert(0, '_');
    }
    s
}

fn emit_fields(
    layout: &Layout,
    native: &[u8],
    base: usize,
    out: &mut String,
) -> Result<(), TypeError> {
    let endian = layout.endianness();
    for f in layout.fields() {
        let name = sanitize(&f.name);
        out.push('<');
        out.push_str(&name);
        out.push('>');
        emit_value(&f.ty, native, base + f.offset, endian, out)?;
        out.push_str("</");
        out.push_str(&name);
        out.push('>');
    }
    Ok(())
}

fn emit_value(
    ty: &ConcreteType,
    native: &[u8],
    at: usize,
    endian: Endianness,
    out: &mut String,
) -> Result<(), TypeError> {
    let need = match ty {
        ConcreteType::String | ConcreteType::VarArray { .. } => 8,
        other => other.fixed_size(),
    };
    if at + need > native.len() {
        return Err(TypeError::Truncated {
            context: format!("emitting XML at offset {at}"),
        });
    }
    match ty {
        ConcreteType::Int {
            bytes,
            signed: true,
        } => {
            let v = prim::read_int(native, at, *bytes, endian);
            push_i64(out, v);
        }
        ConcreteType::Int {
            bytes,
            signed: false,
        } => {
            let v = prim::read_uint(native, at, *bytes, endian);
            out.push_str(&v.to_string());
        }
        ConcreteType::Float { bytes } => {
            let v = prim::read_float(native, at, *bytes, endian);
            // `{}` is Rust's shortest round-trip formatting.
            out.push_str(&format!("{v}"));
        }
        ConcreteType::Char => {
            let c = native[at] as char;
            let mut buf = [0u8; 4];
            escape_into(c.encode_utf8(&mut buf), out);
        }
        ConcreteType::Bool => out.push_str(if native[at] != 0 { "true" } else { "false" }),
        ConcreteType::FixedArray {
            elem,
            count,
            stride,
        } => {
            for i in 0..*count {
                out.push('<');
                out.push_str(ELEM_TAG);
                out.push('>');
                emit_value(elem, native, at + i * stride, endian, out)?;
                out.push_str("</");
                out.push_str(ELEM_TAG);
                out.push('>');
            }
        }
        ConcreteType::Record(sub) => emit_fields(sub, native, at, out)?,
        ConcreteType::String => {
            let start = prim::read_uint(native, at, 4, endian) as usize;
            let count = prim::read_uint(native, at + 4, 4, endian) as usize;
            if start + count > native.len() {
                return Err(TypeError::Truncated {
                    context: "emitting string payload".into(),
                });
            }
            let s = std::str::from_utf8(&native[start..start + count])
                .map_err(|_| TypeError::BadMeta("string payload is not UTF-8".into()))?;
            escape_into(s, out);
        }
        ConcreteType::VarArray { elem, stride, .. } => {
            let start = prim::read_uint(native, at, 4, endian) as usize;
            let count = prim::read_uint(native, at + 4, 4, endian) as usize;
            if start + count * stride > native.len() {
                return Err(TypeError::Truncated {
                    context: "emitting var array payload".into(),
                });
            }
            for i in 0..count {
                out.push('<');
                out.push_str(ELEM_TAG);
                out.push('>');
                emit_value(elem, native, start + i * stride, endian, out)?;
                out.push_str("</");
                out.push_str(ELEM_TAG);
                out.push('>');
            }
        }
    }
    Ok(())
}

fn push_i64(out: &mut String, v: i64) {
    out.push_str(&v.to_string());
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::arch::ArchProfile;
    use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
    use pbio_types::value::{encode_native, RecordValue, Value};

    fn schema() -> Schema {
        Schema::new(
            "sample",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("c", AtomType::Char),
                FieldDecl::atom("ok", AtomType::Bool),
                FieldDecl::new("v", TypeDesc::array(AtomType::CFloat, 2)),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap()
    }

    #[test]
    fn emits_expected_document() {
        let layout = pbio_types::layout::Layout::of(&schema(), &ArchProfile::SPARC_V8).unwrap();
        let value = RecordValue::new()
            .with("n", -3i32)
            .with("x", 1.5f64)
            .with("c", Value::Char(b'<'))
            .with("ok", true)
            .with("v", Value::Array(vec![0.5.into(), 2.0.into()]))
            .with("name", "a&b");
        let native = encode_native(&value, &layout).unwrap();
        let xml = emit_record(&layout, &native).unwrap();
        assert_eq!(
            xml,
            "<sample><n>-3</n><x>1.5</x><c>&lt;</c><ok>true</ok>\
             <v><e>0.5</e><e>2</e></v><name>a&amp;b</name></sample>"
        );
    }

    #[test]
    fn expansion_factor_is_realistic() {
        // A numeric-heavy record should expand severalfold (paper: 6-8x).
        let s = Schema::new(
            "w",
            vec![FieldDecl::new("d", TypeDesc::array(AtomType::CDouble, 100))],
        )
        .unwrap();
        let layout = pbio_types::layout::Layout::of(&s, &ArchProfile::X86).unwrap();
        let value = RecordValue::new().with(
            "d",
            Value::Array(
                (0..100)
                    .map(|i| Value::F64(i as f64 * 0.123456789 + 1000.0))
                    .collect(),
            ),
        );
        let native = encode_native(&value, &layout).unwrap();
        let xml = emit_record(&layout, &native).unwrap();
        let factor = xml.len() as f64 / native.len() as f64;
        assert!(factor > 2.0, "factor {factor}");
    }

    #[test]
    fn identical_text_from_any_architecture() {
        // The document depends only on the values, not the sender's arch.
        let value = RecordValue::new()
            .with("n", 42i32)
            .with("x", -2.25f64)
            .with("c", Value::Char(b'z'))
            .with("ok", false)
            .with("v", Value::Array(vec![1.0.into(), 2.0.into()]))
            .with("name", "same");
        let mut docs = Vec::new();
        for p in ArchProfile::all() {
            let layout = pbio_types::layout::Layout::of(&schema(), p).unwrap();
            let native = encode_native(&value, &layout).unwrap();
            docs.push(emit_record(&layout, &native).unwrap());
        }
        assert!(docs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn truncated_native_errors() {
        let layout = pbio_types::layout::Layout::of(&schema(), &ArchProfile::X86).unwrap();
        assert!(emit_record(&layout, &[0u8; 4]).is_err());
    }

    #[test]
    fn sanitizes_awkward_format_names() {
        let s = Schema::new("2 bad name!", vec![FieldDecl::atom("a", AtomType::CInt)]).unwrap();
        let layout = pbio_types::layout::Layout::of(&s, &ArchProfile::X86).unwrap();
        let native = vec![0u8; layout.size()];
        let xml = emit_record(&layout, &native).unwrap();
        assert!(xml.starts_with("<_2_bad_name_>"));
    }
}
