//! On-disk segment encoding and scanning.
//!
//! A segment is a self-describing PBIO file: every format published into
//! it is preceded (once per segment) by a [`REC_META`] entry carrying the
//! format's serialized layout meta-information, so a reader needs no
//! out-of-band registry — the paper's self-describing stream property,
//! applied to disk. Layout:
//!
//! ```text
//! header := "PBIOSEG" version:u8  base_offset:u64be          (16 bytes)
//! entry  := kind:u8  len:u32be  crc:u32be  body[len]
//!   kind 1 (META):  format:u32be  serialized layout meta
//!   kind 2 (EVENT): offset:u64be  format:u32be  NDR payload
//! ```
//!
//! `crc` is the same CRC-32 the frame protocol uses, over `body` only.
//! The scanner treats *any* decode failure — short header, absurd
//! length, unknown kind, CRC mismatch, short body — as a torn tail at
//! that entry's boundary, never an abort: recovery truncates there and
//! the log keeps serving everything before it.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;

use pbio_net::frame::crc32;

/// Segment file magic; the trailing byte is the format version.
pub(crate) const MAGIC: &[u8; 8] = b"PBIOSEG\x01";
/// Fixed header: magic+version (8) + base offset (8).
pub(crate) const HEADER_LEN: u64 = 16;
/// Entry header: kind (1) + len (4) + crc (4).
pub(crate) const ENTRY_HEADER_LEN: usize = 9;
/// Entry kind: serialized layout meta for a format id, written once per
/// (segment, format) before that format's first event entry.
pub(crate) const REC_META: u8 = 1;
/// Entry kind: one event record.
pub(crate) const REC_EVENT: u8 = 2;
/// Sanity bound on a single entry body; anything larger is treated as a
/// torn tail rather than an allocation request.
pub(crate) const MAX_ENTRY_LEN: u32 = 64 << 20;

/// File name for the segment whose first event has offset `base`.
pub(crate) fn segment_file_name(base: u64) -> String {
    format!("seg-{base:020}.pbio")
}

/// Inverse of [`segment_file_name`]; `None` for foreign files.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".pbio")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Append the 16-byte segment header to `out`.
pub(crate) fn push_header(out: &mut Vec<u8>, base: u64) {
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&base.to_be_bytes());
}

/// Append one CRC-framed entry (body = concatenated `parts`) to `out`.
pub(crate) fn push_entry(out: &mut Vec<u8>, kind: u8, parts: &[&[u8]]) {
    let len: usize = parts.iter().map(|p| p.len()).sum();
    out.push(kind);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    let crc_pos = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let body_pos = out.len();
    for p in parts {
        out.extend_from_slice(p);
    }
    let crc = crc32(&out[body_pos..]);
    out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_be_bytes());
}

/// One decoded scan step. `Meta`/`Event` bodies live in the scanner's
/// buffer — fetch them via [`SegmentScanner::body`].
pub(crate) enum Scan {
    /// Clean end of file at an entry boundary.
    Eof,
    /// The bytes from [`SegmentScanner::entry_start`] on do not decode as
    /// a valid entry: torn tail (or corruption).
    Torn,
    /// A format-meta entry; meta bytes are `body()[4..]`.
    Meta { format: u32 },
    /// An event entry; payload bytes are `body()[12..]`.
    Event { offset: u64, format: u32 },
}

/// Sequential validating reader over one segment file.
pub(crate) struct SegmentScanner {
    r: BufReader<File>,
    buf: Vec<u8>,
    /// Byte offset where the most recently attempted entry starts.
    entry_start: u64,
    /// Byte offset just past the last *valid* entry.
    pos: u64,
}

enum Fill {
    Full,
    Partial,
    Eof,
}

fn read_fill(r: &mut impl Read, out: &mut [u8]) -> io::Result<Fill> {
    let mut got = 0;
    while got < out.len() {
        match r.read(&mut out[got..])? {
            0 if got == 0 => return Ok(Fill::Eof),
            0 => return Ok(Fill::Partial),
            n => got += n,
        }
    }
    Ok(Fill::Full)
}

impl SegmentScanner {
    /// Open `path` and validate the 16-byte header. `Ok(None)` means the
    /// header itself is torn or foreign — the whole file is unusable.
    pub(crate) fn open(path: &Path) -> io::Result<Option<(SegmentScanner, u64)>> {
        let mut r = BufReader::new(File::open(path)?);
        let mut hdr = [0u8; HEADER_LEN as usize];
        match read_fill(&mut r, &mut hdr)? {
            Fill::Full => {}
            Fill::Partial | Fill::Eof => return Ok(None),
        }
        if &hdr[..8] != MAGIC {
            return Ok(None);
        }
        let base = u64::from_be_bytes(hdr[8..16].try_into().unwrap());
        Ok(Some((
            SegmentScanner {
                r,
                buf: Vec::new(),
                entry_start: HEADER_LEN,
                pos: HEADER_LEN,
            },
            base,
        )))
    }

    /// Decode the next entry. Never fails on malformed bytes (that is
    /// [`Scan::Torn`]); `Err` is a real I/O error from the filesystem.
    pub(crate) fn next(&mut self) -> io::Result<Scan> {
        self.entry_start = self.pos;
        let mut hdr = [0u8; ENTRY_HEADER_LEN];
        match read_fill(&mut self.r, &mut hdr)? {
            Fill::Eof => return Ok(Scan::Eof),
            Fill::Partial => return Ok(Scan::Torn),
            Fill::Full => {}
        }
        let kind = hdr[0];
        let len = u32::from_be_bytes(hdr[1..5].try_into().unwrap());
        let crc = u32::from_be_bytes(hdr[5..9].try_into().unwrap());
        if (kind != REC_META && kind != REC_EVENT) || len > MAX_ENTRY_LEN {
            return Ok(Scan::Torn);
        }
        self.buf.resize(len as usize, 0);
        match read_fill(&mut self.r, &mut self.buf)? {
            Fill::Full => {}
            Fill::Partial | Fill::Eof => {
                // A zero-length body "fills" trivially; Eof only means
                // torn when bytes were actually required.
                if len > 0 {
                    return Ok(Scan::Torn);
                }
            }
        }
        if crc32(&self.buf) != crc {
            return Ok(Scan::Torn);
        }
        self.pos += (ENTRY_HEADER_LEN + len as usize) as u64;
        match kind {
            REC_META if self.buf.len() >= 4 => Ok(Scan::Meta {
                format: u32::from_be_bytes(self.buf[..4].try_into().unwrap()),
            }),
            REC_EVENT if self.buf.len() >= 12 => Ok(Scan::Event {
                offset: u64::from_be_bytes(self.buf[..8].try_into().unwrap()),
                format: u32::from_be_bytes(self.buf[8..12].try_into().unwrap()),
            }),
            _ => {
                // CRC passed but the body is shorter than its fixed
                // prefix — only writable by a buggy writer; treat as torn
                // so recovery still terminates.
                self.pos = self.entry_start;
                Ok(Scan::Torn)
            }
        }
    }

    /// Body bytes of the entry most recently returned by [`next`].
    ///
    /// [`next`]: SegmentScanner::next
    pub(crate) fn body(&self) -> &[u8] {
        &self.buf
    }

    /// Byte offset where the most recently attempted entry starts — the
    /// truncation point when that attempt returned [`Scan::Torn`].
    pub(crate) fn entry_start(&self) -> u64 {
        self.entry_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "pbio-seg-{tag}-{}-{}.pbio",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_segment_name(&segment_file_name(0)), Some(0));
        assert_eq!(
            parse_segment_name(&segment_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_segment_name("seg-123.pbio"), None);
        assert_eq!(parse_segment_name("other.txt"), None);
    }

    #[test]
    fn scan_round_trips_and_flags_torn_tail() {
        let path = temp_file("scan");
        let mut bytes = Vec::new();
        push_header(&mut bytes, 7);
        push_entry(&mut bytes, REC_META, &[&3u32.to_be_bytes(), b"layout"]);
        push_entry(
            &mut bytes,
            REC_EVENT,
            &[&7u64.to_be_bytes(), &3u32.to_be_bytes(), b"payload"],
        );
        let valid_len = bytes.len() as u64;
        // A torn half-entry after the valid prefix.
        bytes.push(REC_EVENT);
        bytes.extend_from_slice(&[0, 0, 0, 9]);
        File::create(&path).unwrap().write_all(&bytes).unwrap();

        let (mut sc, base) = SegmentScanner::open(&path).unwrap().unwrap();
        assert_eq!(base, 7);
        match sc.next().unwrap() {
            Scan::Meta { format } => {
                assert_eq!(format, 3);
                assert_eq!(&sc.body()[4..], b"layout");
            }
            _ => panic!("expected meta"),
        }
        match sc.next().unwrap() {
            Scan::Event { offset, format } => {
                assert_eq!((offset, format), (7, 3));
                assert_eq!(&sc.body()[12..], b"payload");
            }
            _ => panic!("expected event"),
        }
        match sc.next().unwrap() {
            Scan::Torn => assert_eq!(sc.entry_start(), valid_len),
            _ => panic!("expected torn tail"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_is_torn_not_panic() {
        let path = temp_file("crc");
        let mut bytes = Vec::new();
        push_header(&mut bytes, 0);
        push_entry(
            &mut bytes,
            REC_EVENT,
            &[&0u64.to_be_bytes(), &1u32.to_be_bytes(), b"x"],
        );
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // flip a payload bit; CRC no longer matches
        File::create(&path).unwrap().write_all(&bytes).unwrap();
        let (mut sc, _) = SegmentScanner::open(&path).unwrap().unwrap();
        assert!(matches!(sc.next().unwrap(), Scan::Torn));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_header_is_unusable_not_error() {
        let path = temp_file("hdr");
        File::create(&path).unwrap().write_all(b"PBIOS").unwrap();
        assert!(SegmentScanner::open(&path).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }
}
