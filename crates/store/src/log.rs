//! [`ChannelLog`]: one channel's append-only offset-addressed log.

use std::collections::HashSet;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::io::{self};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pbio_net::fault::{FaultLog, FaultPlan, MaybeFaulty};

use crate::segment::{
    parse_segment_name, push_entry, push_header, segment_file_name, Scan, SegmentScanner,
    HEADER_LEN, REC_EVENT, REC_META,
};
use crate::{FlushPolicy, StoreConfig, StoreError, StoreMetrics};

/// One record handed to [`ChannelLog::append_batch`].
#[derive(Debug, Clone, Copy)]
pub struct Append<'a> {
    /// The record's channel offset, from [`ChannelLog::reserve`].
    pub offset: u64,
    /// Registry format id of the payload.
    pub format: u32,
    /// The record's native (NDR) bytes, trailer-free.
    pub payload: &'a [u8],
}

/// One item streamed by [`ChannelLog::read_range`].
#[derive(Debug)]
pub enum ReplayItem<'a> {
    /// Serialized layout meta for `format`, seen before that format's
    /// first event in each segment. Idempotent: a range spanning several
    /// segments repeats it.
    Meta {
        /// Format id the meta bytes describe (as recorded at append time).
        format: u32,
        /// Serialized layout meta-information.
        meta: &'a [u8],
    },
    /// One event record.
    Event {
        /// Channel offset.
        offset: u64,
        /// Format id (as recorded at append time).
        format: u32,
        /// The publisher's NDR bytes.
        payload: &'a [u8],
    },
}

/// What crash recovery found (and repaired) when the log was opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Torn tails truncated (including header-torn files removed whole).
    pub torn_tails: u64,
    /// Bytes dropped by those truncations.
    pub truncated_bytes: u64,
    /// Next offset after recovery — every offset below this replays.
    pub head: u64,
}

struct Active {
    base: u64,
    path: PathBuf,
    /// Write handle, optionally fault-wrapped (tests/CI fault matrix).
    w: MaybeFaulty<File>,
    /// Plain clone of the same file for fsync, outside fault injection.
    raw: File,
    len: u64,
    events: u64,
    created: Instant,
    /// Formats whose meta this segment already carries.
    metas: HashSet<u32>,
}

struct Inner {
    active: Option<Active>,
    /// Sealed segment base offsets, ascending.
    sealed: Vec<u64>,
    /// One-shot fault plan: consumed by the next segment created, so a
    /// torn write is injected exactly once and recovery is bounded.
    fault: Option<FaultPlan>,
    bytes_since_sync: u64,
    scratch: Vec<u8>,
}

/// A per-channel append-only segment log.
///
/// Writers call [`reserve`](ChannelLog::reserve) to claim offsets (cheap,
/// lock-free) and [`append_batch`](ChannelLog::append_batch) to persist
/// them. Readers poll [`readable`](ChannelLog::readable) and stream
/// flushed records with [`read_range`](ChannelLog::read_range) from
/// independent file handles, concurrently with appends.
pub struct ChannelLog {
    dir: PathBuf,
    config: StoreConfig,
    metrics: Arc<StoreMetrics>,
    /// Next offset to hand out.
    head: AtomicU64,
    /// Offsets below this are on disk and flushed to the OS.
    readable: AtomicU64,
    /// Oldest offset still on disk (moves forward under retention).
    oldest: AtomicU64,
    recovery: RecoveryReport,
    inner: Mutex<Inner>,
}

impl ChannelLog {
    pub(crate) fn open(
        dir: PathBuf,
        config: StoreConfig,
        metrics: Arc<StoreMetrics>,
    ) -> io::Result<ChannelLog> {
        fs::create_dir_all(&dir)?;
        let mut bases: Vec<u64> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| parse_segment_name(&e.file_name().to_string_lossy()))
            .collect();
        bases.sort_unstable();

        let mut report = RecoveryReport::default();
        // Walk backwards past any header-torn files, then scan the last
        // intact segment, truncating its torn tail if it has one.
        // Earlier segments were sealed behind a flush and are trusted.
        while let Some(&base) = bases.last() {
            let path = dir.join(segment_file_name(base));
            // The header base must agree with the filename (the base is
            // not covered by an entry CRC; the redundancy is the check).
            match SegmentScanner::open(&path)?.filter(|&(_, b)| b == base) {
                None => {
                    let sz = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                    fs::remove_file(&path)?;
                    report.torn_tails += 1;
                    report.truncated_bytes += sz;
                    bases.pop();
                }
                Some((mut sc, _)) => {
                    report.head = report.head.max(base);
                    loop {
                        match sc.next()? {
                            Scan::Eof => break,
                            Scan::Torn => {
                                let at = sc.entry_start();
                                let total = fs::metadata(&path)?.len();
                                let f = OpenOptions::new().write(true).open(&path)?;
                                f.set_len(at)?;
                                f.sync_all().ok();
                                report.torn_tails += 1;
                                report.truncated_bytes += total - at;
                                break;
                            }
                            Scan::Event { offset, .. } => report.head = report.head.max(offset + 1),
                            Scan::Meta { .. } => {}
                        }
                    }
                    break;
                }
            }
        }
        metrics.torn_tails.add(report.torn_tails);
        metrics.truncated_bytes.add(report.truncated_bytes);

        let oldest = bases.first().copied().unwrap_or(report.head);
        let fault = config.fault.clone().filter(|p| !p.is_empty());
        Ok(ChannelLog {
            dir,
            config,
            metrics,
            head: AtomicU64::new(report.head),
            readable: AtomicU64::new(report.head),
            oldest: AtomicU64::new(oldest),
            recovery: report,
            inner: Mutex::new(Inner {
                active: None,
                sealed: bases,
                fault,
                bytes_since_sync: 0,
                scratch: Vec::new(),
            }),
        })
    }

    /// Claim `n` consecutive offsets; returns the first.
    pub fn reserve(&self, n: u64) -> u64 {
        self.head.fetch_add(n, Ordering::SeqCst)
    }

    /// Next offset that [`reserve`](ChannelLog::reserve) would hand out.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Offsets below this are appended and flushed — safe to read.
    pub fn readable(&self) -> u64 {
        self.readable.load(Ordering::Acquire)
    }

    /// Oldest offset still on disk (later ones may have been retired by
    /// retention; replay from below this silently starts here).
    pub fn oldest(&self) -> u64 {
        self.oldest.load(Ordering::Acquire)
    }

    /// What crash recovery repaired when this log was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Total bytes currently on disk for this channel.
    pub fn disk_bytes(&self) -> io::Result<u64> {
        let mut total = 0;
        for e in fs::read_dir(&self.dir)? {
            let e = e?;
            if parse_segment_name(&e.file_name().to_string_lossy()).is_some() {
                total += e.metadata()?.len();
            }
        }
        Ok(total)
    }

    /// Number of segment files (sealed + active).
    pub fn segment_count(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.sealed.len() + usize::from(inner.active.is_some())
    }

    /// Append a batch of records in offset order. `meta_for` resolves a
    /// format id to its serialized layout (written once per segment, so
    /// every segment is self-describing).
    ///
    /// A torn write (I/O error mid-batch) triggers *live* recovery: the
    /// damaged tail is truncated and counted, a fresh segment is opened,
    /// and the not-yet-durable suffix of the batch is re-appended. Only
    /// after the whole batch is on disk and flushed does
    /// [`readable`](ChannelLog::readable) advance — callers ack
    /// publishers on that boundary, which is what makes the ack a
    /// durability promise.
    pub fn append_batch(
        &self,
        recs: &[Append<'_>],
        meta_for: &mut dyn FnMut(u32) -> Option<Arc<[u8]>>,
    ) -> io::Result<()> {
        let Some(last) = recs.last() else {
            return Ok(());
        };
        let mut inner = self.inner.lock().unwrap();
        let mut start = 0;
        let mut attempts = 0;
        loop {
            match self.try_append(&mut inner, &recs[start..], meta_for) {
                Ok(()) => break,
                Err(e) => {
                    attempts += 1;
                    if attempts > 3 {
                        self.metrics.append_errors.inc();
                        return Err(e);
                    }
                    let next = self.recover_active(&mut inner)?;
                    start = recs
                        .iter()
                        .position(|r| r.offset >= next)
                        .unwrap_or(recs.len());
                }
            }
        }
        match self.config.flush {
            FlushPolicy::Never => {}
            FlushPolicy::EveryBatch => {
                if let Some(a) = &inner.active {
                    a.raw.sync_data()?;
                }
                inner.bytes_since_sync = 0;
            }
            FlushPolicy::Bytes(n) => {
                if inner.bytes_since_sync >= n {
                    if let Some(a) = &inner.active {
                        a.raw.sync_data()?;
                    }
                    inner.bytes_since_sync = 0;
                }
            }
        }
        self.readable.fetch_max(last.offset + 1, Ordering::Release);
        Ok(())
    }

    fn try_append(
        &self,
        inner: &mut Inner,
        recs: &[Append<'_>],
        meta_for: &mut dyn FnMut(u32) -> Option<Arc<[u8]>>,
    ) -> io::Result<()> {
        for rec in recs {
            let roll = match &inner.active {
                None => true,
                // Never roll a segment that holds no events yet: a fresh
                // segment accepts at least one record however large.
                Some(a) => {
                    a.events > 0
                        && (a.len >= self.config.segment_max_bytes
                            || self
                                .config
                                .segment_max_age
                                .is_some_and(|age| a.created.elapsed() >= age))
                }
            };
            if roll {
                self.roll(inner, rec.offset)?;
            }
            let Inner {
                active,
                scratch,
                bytes_since_sync,
                ..
            } = &mut *inner;
            let a = active.as_mut().unwrap();
            scratch.clear();
            if !a.metas.contains(&rec.format) {
                if let Some(meta) = meta_for(rec.format) {
                    push_entry(scratch, REC_META, &[&rec.format.to_be_bytes(), &meta]);
                }
                // Unresolvable metas are not retried per event; the
                // segment simply lacks that descriptor.
                a.metas.insert(rec.format);
            }
            push_entry(
                scratch,
                REC_EVENT,
                &[
                    &rec.offset.to_be_bytes(),
                    &rec.format.to_be_bytes(),
                    rec.payload,
                ],
            );
            a.w.write_all(scratch)?;
            a.len += scratch.len() as u64;
            a.events += 1;
            *bytes_since_sync += scratch.len() as u64;
            self.metrics.appended_records.inc();
            self.metrics.appended_bytes.add(scratch.len() as u64);
        }
        if let Some(a) = inner.active.as_mut() {
            a.w.flush()?;
        }
        Ok(())
    }

    /// Seal the active segment (if any), enforce retention, and open a
    /// fresh segment whose base is `base`.
    fn roll(&self, inner: &mut Inner, base: u64) -> io::Result<()> {
        if let Some(mut a) = inner.active.take() {
            a.w.flush()?;
            a.raw.sync_data().ok();
            inner.sealed.push(a.base);
        }
        if self.config.retain_segments > 0 {
            while inner.sealed.len() > self.config.retain_segments {
                let old = inner.sealed.remove(0);
                fs::remove_file(self.dir.join(segment_file_name(old))).ok();
                self.metrics.retired_segments.inc();
                let next_oldest = inner.sealed.first().copied().unwrap_or(base);
                self.oldest.store(next_oldest, Ordering::Release);
            }
        }
        let path = self.dir.join(segment_file_name(base));
        // A recovered segment that kept no events can share our base;
        // drop it so the name is free (its metas are rewritten anyway).
        if let Some(i) = inner.sealed.iter().position(|&b| b == base) {
            inner.sealed.remove(i);
            fs::remove_file(&path).ok();
        }
        let f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        let raw = f.try_clone()?;
        let mut w = MaybeFaulty::new(
            f,
            inner.fault.take().map(|p| p.write_half()),
            FaultLog::new(),
        );
        inner.scratch.clear();
        push_header(&mut inner.scratch, base);
        w.write_all(&inner.scratch)?;
        inner.active = Some(Active {
            base,
            path,
            w,
            raw,
            len: HEADER_LEN,
            events: 0,
            created: Instant::now(),
            metas: HashSet::new(),
        });
        self.metrics.segments.inc();
        Ok(())
    }

    /// Live torn-tail recovery: close the damaged active segment,
    /// truncate it at its last valid entry, and report the next offset
    /// that still needs appending. The truncated remainder is kept as a
    /// sealed segment when it still holds events.
    fn recover_active(&self, inner: &mut Inner) -> io::Result<u64> {
        let Some(a) = inner.active.take() else {
            // Failure before any segment existed (e.g. a torn header
            // write): nothing on disk to salvage for this batch.
            return Ok(self.readable());
        };
        let (base, path) = (a.base, a.path.clone());
        drop(a);
        let mut next = base;
        let mut events = 0u64;
        match SegmentScanner::open(&path)? {
            None => {
                let sz = fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                fs::remove_file(&path)?;
                self.metrics.torn_tails.inc();
                self.metrics.truncated_bytes.add(sz);
            }
            Some((mut sc, _)) => {
                loop {
                    match sc.next()? {
                        Scan::Eof => break,
                        Scan::Torn => {
                            let at = sc.entry_start();
                            let total = fs::metadata(&path)?.len();
                            let f = OpenOptions::new().write(true).open(&path)?;
                            f.set_len(at)?;
                            f.sync_all().ok();
                            self.metrics.torn_tails.inc();
                            self.metrics.truncated_bytes.add(total - at);
                            break;
                        }
                        Scan::Event { offset, .. } => {
                            next = next.max(offset + 1);
                            events += 1;
                        }
                        Scan::Meta { .. } => {}
                    }
                }
                if events > 0 {
                    inner.sealed.push(base);
                } else {
                    fs::remove_file(&path).ok();
                }
            }
        }
        Ok(next)
    }

    /// Stream records with offsets in `[from, to)` (clamped to what is
    /// still on disk) to `f`, interleaved with the [`ReplayItem::Meta`]
    /// entries that make them decodable. `to` must not exceed
    /// [`readable`](ChannelLog::readable). Returns the number of events
    /// delivered. A CRC failure below `readable` is real corruption and
    /// surfaces as [`StoreError::Corrupt`] — never a panic or a loop.
    pub fn read_range(
        &self,
        from: u64,
        to: u64,
        f: &mut dyn FnMut(ReplayItem<'_>),
    ) -> Result<u64, StoreError> {
        if to <= from {
            return Ok(0);
        }
        let segments: Vec<u64> = {
            let inner = self.inner.lock().unwrap();
            let mut v = inner.sealed.clone();
            if let Some(a) = &inner.active {
                v.push(a.base);
            }
            v.sort_unstable();
            v
        };
        let start = segments.partition_point(|&b| b <= from).saturating_sub(1);
        let mut delivered = 0u64;
        for &base in &segments[start..] {
            if base >= to {
                break;
            }
            let path = self.dir.join(segment_file_name(base));
            let Some((mut sc, _)) = SegmentScanner::open(&path)?.filter(|&(_, b)| b == base) else {
                return Err(StoreError::Corrupt {
                    segment: path,
                    at: 0,
                });
            };
            loop {
                match sc.next()? {
                    Scan::Eof => break,
                    Scan::Torn => {
                        return Err(StoreError::Corrupt {
                            segment: path,
                            at: sc.entry_start(),
                        })
                    }
                    Scan::Meta { format } => f(ReplayItem::Meta {
                        format,
                        meta: &sc.body()[4..],
                    }),
                    Scan::Event { offset, format } => {
                        if offset >= to {
                            return Ok(delivered);
                        }
                        if offset >= from {
                            f(ReplayItem::Event {
                                offset,
                                format,
                                payload: &sc.body()[12..],
                            });
                            delivered += 1;
                            self.metrics.replayed_records.inc();
                        }
                        if offset + 1 >= to {
                            return Ok(delivered);
                        }
                    }
                }
            }
        }
        Ok(delivered)
    }

    /// Flush and fsync everything; used by graceful shutdown.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(a) = inner.active.as_mut() {
            a.w.flush()?;
            a.raw.sync_data()?;
        }
        inner.bytes_since_sync = 0;
        Ok(())
    }
}
