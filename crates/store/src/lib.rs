//! # pbio-store — durable event channels as self-describing segment logs
//!
//! The paper's PBIO wire format is self-describing: a record stream
//! carries the serialized layout meta-information a reader needs, so no
//! out-of-band schema registry is required. That property makes the wire
//! format a natural *on-disk* log format too — this crate persists each
//! channel as an append-only sequence of segment files in which every
//! format's layout meta precedes its first record, so a segment can be
//! decoded years later by anything that speaks PBIO.
//!
//! ```text
//! <dir>/<channel>/seg-00000000000000000000.pbio
//!                 seg-00000000000000002481.pbio     (base = first offset)
//!                 seg-00000000000000005120.pbio     (active tail)
//! ```
//!
//! Records are *offset-addressed*: every event on a durable channel gets
//! a dense, monotonically increasing `u64` offset, which is the replay
//! cursor, the retention unit, and the exactly-once accounting token.
//!
//! Durability is crash-tolerant, not crash-proof: appends are batched,
//! flushed to the OS per batch (that advances
//! [`ChannelLog::readable`]), and fsynced per [`FlushPolicy`]. A torn
//! tail — from a crash mid-append or an injected
//! [`pbio_net::fault::FaultPlan`] short write — is detected by CRC on
//! open *and* live, truncated at the last valid entry boundary, counted,
//! and the log keeps going. Recovery never refuses to start.

#![warn(missing_docs)]

mod log;
mod segment;

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pbio_net::fault::FaultPlan;
use pbio_obs::{Counter, Registry};

pub use crate::log::{Append, ChannelLog, RecoveryReport, ReplayItem};

/// Reserved format id for *raw* (non-PBIO) record payloads.
///
/// Most channels store self-describing PBIO records, with each format's
/// serialized layout written once per segment. Some logs — the wire
/// tap's frame captures, notably — store payloads whose structure is
/// defined by the payload bytes themselves (a captured frame carries
/// its own header and CRC). Appending under `FORMAT_RAW` with a
/// `meta_for` that returns `None` marks the records as opaque: segments
/// stay CRC-checked and crash-recoverable like any other, but no layout
/// meta precedes them and [`ReplayItem::Meta`] is never emitted for
/// this id. Daemon-global PBIO format ids count up from zero and never
/// reach this value.
pub const FORMAT_RAW: u32 = u32::MAX;

/// How often appended bytes are fsynced to stable storage.
///
/// Independently of this knob, every batch is flushed to the OS before
/// [`ChannelLog::readable`] advances — so acked records survive a
/// *process* crash under every policy; the policy only decides what
/// survives a power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushPolicy {
    /// Never fsync mid-stream (segments still sync when sealed). The
    /// fastest option and the default.
    Never,
    /// fsync after every append batch — power-failure durable acks.
    EveryBatch,
    /// fsync once at least this many bytes have accumulated.
    Bytes(u64),
}

/// Configuration for a [`Store`] (and, via `pbio-serv`, for
/// `ServConfig::durability`).
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory; one subdirectory per durable channel.
    pub dir: PathBuf,
    /// Seal the active segment once it reaches this many bytes.
    pub segment_max_bytes: u64,
    /// Also seal once the active segment is this old.
    pub segment_max_age: Option<Duration>,
    /// Keep at most this many *sealed* segments per channel, deleting
    /// the oldest (compaction-by-retirement). `0` = keep everything.
    pub retain_segments: usize,
    /// fsync cadence.
    pub flush: FlushPolicy,
    /// Deterministic write-fault injection for the first segment each
    /// channel creates — how CI reaches the torn-tail recovery path.
    pub fault: Option<FaultPlan>,
}

impl StoreConfig {
    /// Defaults: 8 MiB segments, no age limit, unlimited retention,
    /// [`FlushPolicy::Never`], no faults.
    pub fn new(dir: impl Into<PathBuf>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            segment_max_bytes: 8 << 20,
            segment_max_age: None,
            retain_segments: 0,
            flush: FlushPolicy::Never,
            fault: None,
        }
    }
}

/// Durability counters, shared by every [`ChannelLog`] of a [`Store`].
///
/// All fields are plain [`pbio_obs::Counter`]s so a daemon can adopt
/// them into its metric [`Registry`] with
/// [`StoreMetrics::register`] — after which they flow through the
/// `$stats` channel like every other metric, and `pbio-stats` displays
/// them with no tool changes.
#[derive(Debug)]
pub struct StoreMetrics {
    /// Segment files created.
    pub segments: Arc<Counter>,
    /// Event records appended.
    pub appended_records: Arc<Counter>,
    /// Bytes appended (entries, including per-segment format metas).
    pub appended_bytes: Arc<Counter>,
    /// Replay streams started (`subscribe_from` and resume-from-offset).
    pub replays: Arc<Counter>,
    /// Event records delivered from disk by replays.
    pub replayed_records: Arc<Counter>,
    /// Torn tails truncated (at open or live after a failed append).
    pub torn_tails: Arc<Counter>,
    /// Bytes dropped by those truncations.
    pub truncated_bytes: Arc<Counter>,
    /// Sealed segments deleted by retention.
    pub retired_segments: Arc<Counter>,
    /// Append batches abandoned after repeated failures.
    pub append_errors: Arc<Counter>,
}

impl Default for StoreMetrics {
    fn default() -> StoreMetrics {
        StoreMetrics {
            segments: Arc::new(Counter::new()),
            appended_records: Arc::new(Counter::new()),
            appended_bytes: Arc::new(Counter::new()),
            replays: Arc::new(Counter::new()),
            replayed_records: Arc::new(Counter::new()),
            torn_tails: Arc::new(Counter::new()),
            truncated_bytes: Arc::new(Counter::new()),
            retired_segments: Arc::new(Counter::new()),
            append_errors: Arc::new(Counter::new()),
        }
    }
}

impl StoreMetrics {
    /// Adopt every counter into `registry` under `store_*` names.
    pub fn register(&self, registry: &Registry) {
        registry.register_counter("store_segments", self.segments.clone());
        registry.register_counter("store_appended_records", self.appended_records.clone());
        registry.register_counter("store_appended_bytes", self.appended_bytes.clone());
        registry.register_counter("store_replays", self.replays.clone());
        registry.register_counter("store_replayed_records", self.replayed_records.clone());
        registry.register_counter("store_torn_tails", self.torn_tails.clone());
        registry.register_counter("store_truncated_bytes", self.truncated_bytes.clone());
        registry.register_counter("store_retired_segments", self.retired_segments.clone());
        registry.register_counter("store_append_errors", self.append_errors.clone());
    }
}

/// Store-level failure.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A flushed entry failed its CRC — on-disk corruption (distinct
    /// from a torn tail, which recovery repairs silently).
    Corrupt {
        /// The damaged segment file.
        segment: PathBuf,
        /// Byte offset of the first undecodable entry.
        at: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { segment, at } => {
                write!(f, "corrupt segment {} at byte {at}", segment.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// A collection of per-channel [`ChannelLog`]s under one root directory.
pub struct Store {
    config: StoreConfig,
    channels: Mutex<HashMap<String, Arc<ChannelLog>>>,
    metrics: Arc<StoreMetrics>,
}

impl Store {
    /// Open (creating the root directory if needed). Channel logs open
    /// lazily — and run crash recovery — on first
    /// [`channel`](Store::channel) call.
    pub fn open(config: StoreConfig) -> io::Result<Store> {
        fs::create_dir_all(&config.dir)?;
        Ok(Store {
            config,
            channels: Mutex::new(HashMap::new()),
            metrics: Arc::new(StoreMetrics::default()),
        })
    }

    /// Open or create the log for `name`, recovering any torn tail.
    pub fn channel(&self, name: &str) -> io::Result<Arc<ChannelLog>> {
        let mut channels = self.channels.lock().unwrap();
        if let Some(log) = channels.get(name) {
            return Ok(log.clone());
        }
        let dir = self.config.dir.join(channel_dir_name(name));
        let log = Arc::new(ChannelLog::open(
            dir,
            self.config.clone(),
            self.metrics.clone(),
        )?);
        channels.insert(name.to_string(), log.clone());
        Ok(log)
    }

    /// The shared durability counters.
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// fsync every open channel log; used by graceful shutdown.
    pub fn sync_all(&self) -> io::Result<()> {
        let channels = self.channels.lock().unwrap();
        for log in channels.values() {
            log.sync()?;
        }
        Ok(())
    }
}

/// Directory name for a channel: a sanitized prefix for humans plus an
/// FNV-1a hash for uniqueness (channel names are arbitrary UTF-8, e.g.
/// `$stats`).
fn channel_dir_name(name: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '_'
            }
        })
        .take(48)
        .collect();
    format!("{safe}-{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_root(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "pbio-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn append_n(log: &ChannelLog, n: u64, payload_len: usize) {
        let payload = vec![0xAB; payload_len];
        for _ in 0..n {
            let off = log.reserve(1);
            let rec = Append {
                offset: off,
                format: 1,
                payload: &payload,
            };
            log.append_batch(&[rec], &mut |_| Some(Arc::from(&b"meta-bytes"[..])))
                .unwrap();
        }
    }

    fn collect_events(log: &ChannelLog, from: u64, to: u64) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::new();
        log.read_range(from, to, &mut |item| {
            if let ReplayItem::Event {
                offset, payload, ..
            } = item
            {
                out.push((offset, payload.to_vec()));
            }
        })
        .unwrap();
        out
    }

    #[test]
    fn append_read_round_trip_with_metas() {
        let root = temp_root("roundtrip");
        let store = Store::open(StoreConfig::new(&root)).unwrap();
        let log = store.channel("ticks").unwrap();
        let base = log.reserve(3);
        assert_eq!(base, 0);
        let recs: Vec<Append<'_>> = (0..3)
            .map(|i| Append {
                offset: i,
                format: 42,
                payload: b"hello",
            })
            .collect();
        log.append_batch(&recs, &mut |id| {
            assert_eq!(id, 42);
            Some(Arc::from(&b"layout!"[..]))
        })
        .unwrap();
        assert_eq!(log.readable(), 3);

        let mut metas = 0;
        let mut events = Vec::new();
        log.read_range(0, 3, &mut |item| match item {
            ReplayItem::Meta { format, meta } => {
                assert_eq!((format, meta), (42, &b"layout!"[..]));
                metas += 1;
            }
            ReplayItem::Event {
                offset,
                format,
                payload,
            } => {
                assert_eq!((format, payload), (42, &b"hello"[..]));
                events.push(offset);
            }
        })
        .unwrap();
        assert_eq!(metas, 1, "meta written once per segment");
        assert_eq!(events, vec![0, 1, 2]);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn rotation_and_retention_retire_old_segments() {
        let root = temp_root("rotate");
        let mut cfg = StoreConfig::new(&root);
        cfg.segment_max_bytes = 256;
        cfg.retain_segments = 2;
        let store = Store::open(cfg).unwrap();
        let log = store.channel("c").unwrap();
        append_n(&log, 40, 64);
        assert!(log.segment_count() <= 3, "retention caps sealed segments");
        assert!(log.oldest() > 0, "old offsets retired");
        assert!(store.metrics().retired_segments.get() > 0);
        // Replay from 0 silently starts at the oldest surviving offset.
        let got = collect_events(&log, 0, log.readable());
        assert_eq!(got.first().unwrap().0, log.oldest());
        assert_eq!(got.last().unwrap().0, 39);
        let offs: Vec<u64> = got.iter().map(|(o, _)| *o).collect();
        let want: Vec<u64> = (log.oldest()..40).collect();
        assert_eq!(offs, want, "contiguous after the retention horizon");
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn reopen_recovers_torn_tail_and_replays_prefix() {
        let root = temp_root("torn");
        {
            let store = Store::open(StoreConfig::new(&root)).unwrap();
            let log = store.channel("c").unwrap();
            append_n(&log, 10, 32);
        }
        // Tear the tail: append garbage to the one segment file.
        let seg = find_segments(&root)[0].clone();
        let pre_len = fs::metadata(&seg).unwrap().len();
        {
            use std::io::Write;
            let mut f = fs::OpenOptions::new().append(true).open(&seg).unwrap();
            f.write_all(&[0x02, 0xFF, 0xFF]).unwrap(); // half an entry header
        }
        let store = Store::open(StoreConfig::new(&root)).unwrap();
        let log = store.channel("c").unwrap();
        assert_eq!(log.recovery().torn_tails, 1);
        assert_eq!(log.recovery().truncated_bytes, 3);
        assert_eq!(log.head(), 10, "valid prefix fully recovered");
        assert_eq!(fs::metadata(&seg).unwrap().len(), pre_len);
        let got = collect_events(&log, 0, 10);
        assert_eq!(got.len(), 10);
        // And the log accepts new appends after the repair.
        append_n(&log, 5, 32);
        assert_eq!(collect_events(&log, 0, 15).len(), 15);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn live_short_write_recovers_without_losing_acked_records() {
        let root = temp_root("live-fault");
        let mut cfg = StoreConfig::new(&root);
        // Tear the stream 200 bytes in: a short write then a dead file
        // handle, like a disk yanked mid-append.
        cfg.fault = Some(FaultPlan::new().short_write_on_flush(200, 7));
        let store = Store::open(cfg).unwrap();
        let log = store.channel("c").unwrap();
        append_n(&log, 50, 64);
        assert_eq!(log.readable(), 50, "every append eventually durable");
        assert!(
            store.metrics().torn_tails.get() >= 1,
            "the injected tear was hit and recovered"
        );
        let got = collect_events(&log, 0, 50);
        let offs: Vec<u64> = got.iter().map(|(o, _)| *o).collect();
        assert_eq!(offs, (0..50).collect::<Vec<u64>>(), "no loss, no dupes");
        // Reopen: everything still replays.
        drop(log);
        drop(store);
        let store = Store::open(StoreConfig::new(&root)).unwrap();
        let log = store.channel("c").unwrap();
        assert_eq!(log.head(), 50);
        assert_eq!(collect_events(&log, 0, 50).len(), 50);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn batched_append_is_one_flush_boundary() {
        let root = temp_root("batch");
        let store = Store::open(StoreConfig::new(&root)).unwrap();
        let log = store.channel("c").unwrap();
        let payload = vec![1u8; 16];
        let base = log.reserve(100);
        let recs: Vec<Append<'_>> = (0..100)
            .map(|i| Append {
                offset: base + i,
                format: 9,
                payload: &payload,
            })
            .collect();
        log.append_batch(&recs, &mut |_| Some(Arc::from(&b"m"[..])))
            .unwrap();
        assert_eq!(log.readable(), 100);
        assert_eq!(store.metrics().appended_records.get(), 100);
        fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn read_range_clamps_and_windows() {
        let root = temp_root("window");
        let store = Store::open(StoreConfig::new(&root)).unwrap();
        let log = store.channel("c").unwrap();
        append_n(&log, 20, 8);
        let got = collect_events(&log, 5, 9);
        assert_eq!(
            got.iter().map(|(o, _)| *o).collect::<Vec<_>>(),
            vec![5, 6, 7, 8]
        );
        assert!(collect_events(&log, 20, 20).is_empty());
        fs::remove_dir_all(&root).ok();
    }

    fn find_segments(root: &Path) -> Vec<PathBuf> {
        let mut out = Vec::new();
        for e in fs::read_dir(root).unwrap() {
            let dir = e.unwrap().path();
            if dir.is_dir() {
                for f in fs::read_dir(&dir).unwrap() {
                    let p = f.unwrap().path();
                    if p.extension().is_some_and(|x| x == "pbio") {
                        out.push(p);
                    }
                }
            }
        }
        out.sort();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Any single flipped byte (or truncation point) in a segment
        /// file must leave recovery terminating with a typed result:
        /// reopen never panics, never loops, and every event it *does*
        /// expose replays with intact CRC-verified bytes.
        #[test]
        fn recovery_survives_arbitrary_single_byte_damage(
            records in 1u64..30,
            damage_kind in 0u8..2,
            pos_frac in 0.0f64..1.0,
            xor in 1u8..=255,
        ) {
            let root = temp_root("prop");
            {
                let store = Store::open(StoreConfig::new(&root)).unwrap();
                let log = store.channel("c").unwrap();
                append_n(&log, records, 24);
            }
            let seg = find_segments(&root)[0].clone();
            let bytes = fs::read(&seg).unwrap();
            let pos = ((bytes.len() as f64 - 1.0) * pos_frac) as usize;
            if damage_kind == 0 {
                // Truncate at an arbitrary byte.
                let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
                f.set_len(pos as u64).unwrap();
            } else {
                // Flip bits in one byte.
                let mut b = bytes.clone();
                b[pos] ^= xor;
                fs::write(&seg, &b).unwrap();
            }
            let store = Store::open(StoreConfig::new(&root)).unwrap();
            let log = store.channel("c").unwrap();
            let head = log.head();
            prop_assert!(head <= records);
            // Whatever survived replays cleanly, in offset order.
            let mut seen = Vec::new();
            let res = log.read_range(0, head, &mut |item| {
                if let ReplayItem::Event { offset, payload, .. } = item {
                    seen.push((offset, payload.len()));
                }
            });
            prop_assert!(res.is_ok(), "recovered prefix must be readable: {res:?}");
            for (i, (off, len)) in seen.iter().enumerate() {
                prop_assert_eq!(*off, i as u64);
                prop_assert_eq!(*len, 24);
            }
            fs::remove_dir_all(&root).ok();
        }
    }
}
