//! The pack/unpack engine: a table-driven interpreter over datatypes.
//!
//! This is deliberately the architecture the paper attributes to MPICH:
//! "most MPI implementations marshal user-defined datatypes via mechanisms
//! that amount to interpreted versions of field-by-field packing" (§2). Per
//! *element*, the engine re-dispatches on the datatype tree — that per-record
//! interpretive control cost, plus the mandatory copy at both ends forced by
//! the packed wire format, is exactly what Figures 1–5 measure against PBIO.
//!
//! Wire format: canonical big-endian, fully packed (no alignment gaps),
//! architecture-independent widths (see [`crate::datatype::wire_width`]).

use pbio_types::arch::{ArchProfile, Endianness};
use pbio_types::layout::{resolve_atom, ConcreteType};
use pbio_types::prim;
use pbio_types::schema::AtomType;

use crate::datatype::{native_width, wire_width, Datatype, MpiError};

/// Size in bytes of one instance of `dt` on the canonical wire.
pub fn packed_size(dt: &Datatype) -> usize {
    match dt {
        Datatype::Basic(atom) => wire_width(*atom),
        Datatype::Contiguous { count, inner } => count * packed_size(inner),
        Datatype::Vector {
            count,
            blocklen,
            inner,
            ..
        }
        | Datatype::HVector {
            count,
            blocklen,
            inner,
            ..
        } => count * blocklen * packed_size(inner),
        Datatype::HIndexed { blocks, inner } => {
            blocks.iter().map(|(_, n)| n).sum::<usize>() * packed_size(inner)
        }
        Datatype::Struct { fields, .. } => fields.iter().map(|(_, n, t)| n * packed_size(t)).sum(),
    }
}

/// `MPI_Pack`: marshal one instance of `dt` from `src` (native bytes on
/// `profile`, starting at offset 0) onto the canonical wire, appending to
/// `out`.
pub fn mpi_pack(dt: &Datatype, profile: &ArchProfile, src: &[u8]) -> Result<Vec<u8>, MpiError> {
    let mut out = Vec::with_capacity(packed_size(dt));
    mpi_pack_into(dt, profile, src, &mut out)?;
    Ok(out)
}

/// [`mpi_pack`] into a caller-provided buffer (appended; not cleared).
pub fn mpi_pack_into(
    dt: &Datatype,
    profile: &ArchProfile,
    src: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), MpiError> {
    pack_walk(dt, profile, src, 0, out)
}

fn pack_walk(
    dt: &Datatype,
    profile: &ArchProfile,
    src: &[u8],
    base: usize,
    out: &mut Vec<u8>,
) -> Result<(), MpiError> {
    match dt {
        Datatype::Basic(atom) => pack_basic(*atom, profile, src, base, out),
        Datatype::Contiguous { count, inner } => {
            let e = inner.extent(profile);
            for i in 0..*count {
                pack_walk(inner, profile, src, base + i * e, out)?;
            }
            Ok(())
        }
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner,
        } => {
            let e = inner.extent(profile) as isize;
            for b in 0..*count as isize {
                for i in 0..*blocklen as isize {
                    let off = base as isize + (b * stride + i) * e;
                    pack_walk(inner, profile, src, off as usize, out)?;
                }
            }
            Ok(())
        }
        Datatype::HVector {
            count,
            blocklen,
            byte_stride,
            inner,
        } => {
            let e = inner.extent(profile) as isize;
            for b in 0..*count as isize {
                for i in 0..*blocklen as isize {
                    let off = base as isize + b * byte_stride + i * e;
                    pack_walk(inner, profile, src, off as usize, out)?;
                }
            }
            Ok(())
        }
        Datatype::HIndexed { blocks, inner } => {
            let e = inner.extent(profile);
            for (disp, n) in blocks {
                for i in 0..*n {
                    pack_walk(inner, profile, src, base + disp + i * e, out)?;
                }
            }
            Ok(())
        }
        Datatype::Struct { fields, .. } => {
            for (off, n, inner) in fields {
                let e = inner.extent(profile);
                for i in 0..*n {
                    pack_walk(inner, profile, src, base + off + i * e, out)?;
                }
            }
            Ok(())
        }
    }
}

fn pack_basic(
    atom: AtomType,
    profile: &ArchProfile,
    src: &[u8],
    at: usize,
    out: &mut Vec<u8>,
) -> Result<(), MpiError> {
    let nw = native_width(atom, profile);
    if at + nw > src.len() {
        return Err(MpiError::Truncated {
            context: format!("packing {atom:?}"),
            need: at + nw,
            have: src.len(),
        });
    }
    let ww = wire_width(atom);
    let start = out.len();
    out.resize(start + ww, 0);
    match resolve_atom(atom, profile).expect("basic atom") {
        ConcreteType::Int {
            bytes,
            signed: true,
        } => {
            let v = prim::read_int(src, at, bytes, profile.endianness);
            prim::write_uint(out, start, ww as u8, Endianness::Big, v as u64);
        }
        ConcreteType::Int {
            bytes,
            signed: false,
        } => {
            let v = prim::read_uint(src, at, bytes, profile.endianness);
            prim::write_uint(out, start, ww as u8, Endianness::Big, v);
        }
        ConcreteType::Float { bytes } => {
            let v = prim::read_float(src, at, bytes, profile.endianness);
            prim::write_float(out, start, ww as u8, Endianness::Big, v);
        }
        ConcreteType::Char | ConcreteType::Bool => out[start] = src[at],
        _ => unreachable!(),
    }
    Ok(())
}

/// `MPI_Unpack`: unmarshal one instance of `dt` from wire bytes into a fresh
/// native buffer for `profile` (MPICH's separate-unpack-buffer behaviour,
/// §4.3). Returns the native record image.
pub fn mpi_unpack(dt: &Datatype, profile: &ArchProfile, wire: &[u8]) -> Result<Vec<u8>, MpiError> {
    let mut dst = vec![0u8; dt.extent(profile)];
    let mut cursor = 0usize;
    unpack_walk(dt, profile, wire, &mut cursor, &mut dst, 0)?;
    Ok(dst)
}

fn unpack_walk(
    dt: &Datatype,
    profile: &ArchProfile,
    wire: &[u8],
    cursor: &mut usize,
    dst: &mut [u8],
    base: usize,
) -> Result<(), MpiError> {
    match dt {
        Datatype::Basic(atom) => unpack_basic(*atom, profile, wire, cursor, dst, base),
        Datatype::Contiguous { count, inner } => {
            let e = inner.extent(profile);
            for i in 0..*count {
                unpack_walk(inner, profile, wire, cursor, dst, base + i * e)?;
            }
            Ok(())
        }
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner,
        } => {
            let e = inner.extent(profile) as isize;
            for b in 0..*count as isize {
                for i in 0..*blocklen as isize {
                    let off = base as isize + (b * stride + i) * e;
                    unpack_walk(inner, profile, wire, cursor, dst, off as usize)?;
                }
            }
            Ok(())
        }
        Datatype::HVector {
            count,
            blocklen,
            byte_stride,
            inner,
        } => {
            let e = inner.extent(profile) as isize;
            for b in 0..*count as isize {
                for i in 0..*blocklen as isize {
                    let off = base as isize + b * byte_stride + i * e;
                    unpack_walk(inner, profile, wire, cursor, dst, off as usize)?;
                }
            }
            Ok(())
        }
        Datatype::HIndexed { blocks, inner } => {
            let e = inner.extent(profile);
            for (disp, n) in blocks {
                for i in 0..*n {
                    unpack_walk(inner, profile, wire, cursor, dst, base + disp + i * e)?;
                }
            }
            Ok(())
        }
        Datatype::Struct { fields, .. } => {
            for (off, n, inner) in fields {
                let e = inner.extent(profile);
                for i in 0..*n {
                    unpack_walk(inner, profile, wire, cursor, dst, base + off + i * e)?;
                }
            }
            Ok(())
        }
    }
}

fn unpack_basic(
    atom: AtomType,
    profile: &ArchProfile,
    wire: &[u8],
    cursor: &mut usize,
    dst: &mut [u8],
    at: usize,
) -> Result<(), MpiError> {
    let ww = wire_width(atom);
    if *cursor + ww > wire.len() {
        return Err(MpiError::Truncated {
            context: format!("unpacking {atom:?}"),
            need: *cursor + ww,
            have: wire.len(),
        });
    }
    let nw = native_width(atom, profile);
    if at + nw > dst.len() {
        return Err(MpiError::Truncated {
            context: format!("storing {atom:?}"),
            need: at + nw,
            have: dst.len(),
        });
    }
    match resolve_atom(atom, profile).expect("basic atom") {
        ConcreteType::Int {
            bytes,
            signed: true,
        } => {
            let v = prim::read_int(wire, *cursor, ww as u8, Endianness::Big);
            prim::write_uint(dst, at, bytes, profile.endianness, v as u64);
        }
        ConcreteType::Int {
            bytes,
            signed: false,
        } => {
            let v = prim::read_uint(wire, *cursor, ww as u8, Endianness::Big);
            prim::write_uint(dst, at, bytes, profile.endianness, v);
        }
        ConcreteType::Float { bytes } => {
            let v = prim::read_float(wire, *cursor, ww as u8, Endianness::Big);
            prim::write_float(dst, at, bytes, profile.endianness, v);
        }
        ConcreteType::Char | ConcreteType::Bool => dst[at] = wire[*cursor],
        _ => unreachable!(),
    }
    *cursor += ww;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::layout::Layout;
    use pbio_types::schema::{FieldDecl, Schema, TypeDesc};
    use pbio_types::value::{decode_native, encode_native, RecordValue, Value};
    use std::sync::Arc;

    fn mixed() -> Schema {
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("flag", AtomType::Bool),
                FieldDecl::atom("id", AtomType::CLong),
                FieldDecl::new("v", TypeDesc::array(AtomType::CFloat, 4)),
            ],
        )
        .unwrap()
    }

    fn mixed_value() -> RecordValue {
        RecordValue::new()
            .with("tag", Value::Char(b'M'))
            .with("x", 2.75f64)
            .with("count", -9i32)
            .with("flag", true)
            .with("id", 100_000i64)
            .with(
                "v",
                Value::Array(vec![0.5.into(), 1.5.into(), 2.5.into(), 3.5.into()]),
            )
    }

    #[test]
    fn pack_unpack_round_trips_across_all_profile_pairs() {
        let schema = mixed();
        let value = mixed_value();
        for sp in ArchProfile::all() {
            for dp in ArchProfile::all() {
                let sdt = Datatype::from_schema(&schema, sp).unwrap();
                let ddt = Datatype::from_schema(&schema, dp).unwrap();
                let slay = Layout::of(&schema, sp).unwrap();
                let dlay = Layout::of(&schema, dp).unwrap();
                let native = encode_native(&value, &slay).unwrap();
                let wire = mpi_pack(&sdt, sp, &native).unwrap();
                // Canonical wire size is identical regardless of sender arch.
                assert_eq!(wire.len(), packed_size(&sdt));
                assert_eq!(packed_size(&sdt), packed_size(&ddt));
                let out = mpi_unpack(&ddt, dp, &wire).unwrap();
                let got = decode_native(&out, &dlay).unwrap();
                assert_eq!(got, value, "{} -> {}", sp.name, dp.name);
            }
        }
    }

    #[test]
    fn wire_is_packed_with_no_gaps() {
        // Native sparc layout of `mixed` has 13+ bytes of padding; the wire
        // must be exactly the sum of element wire widths.
        let schema = mixed();
        let dt = Datatype::from_schema(&schema, &ArchProfile::SPARC_V8).unwrap();
        let lay = Layout::of(&schema, &ArchProfile::SPARC_V8).unwrap();
        let native = encode_native(&mixed_value(), &lay).unwrap();
        let wire = mpi_pack(&dt, &ArchProfile::SPARC_V8, &native).unwrap();
        // char(1)+f64(8)+int(4)+bool(1)+long(8 canonical)+4*f32(16) = 38.
        assert_eq!(wire.len(), 38);
        assert!(wire.len() < lay.size() + 8, "no padding on the wire");
    }

    #[test]
    fn wire_is_big_endian() {
        let schema = Schema::new("i", vec![FieldDecl::atom("v", AtomType::CInt)]).unwrap();
        let value = RecordValue::new().with("v", 0x0A0B0C0Di32);
        for p in [&ArchProfile::SPARC_V8, &ArchProfile::X86] {
            let dt = Datatype::from_schema(&schema, p).unwrap();
            let lay = Layout::of(&schema, p).unwrap();
            let native = encode_native(&value, &lay).unwrap();
            let wire = mpi_pack(&dt, p, &native).unwrap();
            assert_eq!(wire, vec![0x0A, 0x0B, 0x0C, 0x0D], "{}", p.name);
        }
    }

    #[test]
    fn negative_long_survives_width_change() {
        let schema = Schema::new("l", vec![FieldDecl::atom("id", AtomType::CLong)]).unwrap();
        let value = RecordValue::new().with("id", -123_456i64);
        let sp = &ArchProfile::SPARC_V8; // long = 4
        let dp = &ArchProfile::ALPHA; // long = 8
        let sdt = Datatype::from_schema(&schema, sp).unwrap();
        let ddt = Datatype::from_schema(&schema, dp).unwrap();
        let native = encode_native(&value, &Layout::of(&schema, sp).unwrap()).unwrap();
        let wire = mpi_pack(&sdt, sp, &native).unwrap();
        let out = mpi_unpack(&ddt, dp, &wire).unwrap();
        let got = decode_native(&out, &Layout::of(&schema, dp).unwrap()).unwrap();
        assert_eq!(got.get("id"), Some(&Value::I64(-123_456)));
    }

    #[test]
    fn vector_packs_strided_columns() {
        // A 3x4 row-major i32 matrix; pack column 0 via a vector type.
        let col = Datatype::Vector {
            count: 3,
            blocklen: 1,
            stride: 4,
            inner: Arc::new(Datatype::Basic(AtomType::I32)),
        };
        let p = &ArchProfile::X86;
        let mut native = vec![0u8; 48];
        for i in 0..12u32 {
            prim::write_uint(&mut native, (i * 4) as usize, 4, p.endianness, i as u64);
        }
        let wire = mpi_pack(&col, p, &native).unwrap();
        assert_eq!(wire.len(), 12);
        let vals: Vec<u64> = (0..3)
            .map(|i| prim::read_uint(&wire, i * 4, 4, Endianness::Big))
            .collect();
        assert_eq!(vals, vec![0, 4, 8]);
    }

    #[test]
    fn hindexed_gathers_scattered_blocks() {
        let hi = Datatype::HIndexed {
            blocks: vec![(8, 2), (0, 1)],
            inner: Arc::new(Datatype::Basic(AtomType::I32)),
        };
        let p = &ArchProfile::X86;
        let mut native = vec![0u8; 16];
        for i in 0..4u32 {
            prim::write_uint(
                &mut native,
                (i * 4) as usize,
                4,
                p.endianness,
                (i + 1) as u64,
            );
        }
        let wire = mpi_pack(&hi, p, &native).unwrap();
        let vals: Vec<u64> = (0..3)
            .map(|i| prim::read_uint(&wire, i * 4, 4, Endianness::Big))
            .collect();
        assert_eq!(vals, vec![3, 4, 1]);
    }

    #[test]
    fn truncated_buffers_error() {
        let schema = mixed();
        let p = &ArchProfile::X86;
        let dt = Datatype::from_schema(&schema, p).unwrap();
        let lay = Layout::of(&schema, p).unwrap();
        let native = encode_native(&mixed_value(), &lay).unwrap();
        assert!(matches!(
            mpi_pack(&dt, p, &native[..8]),
            Err(MpiError::Truncated { .. })
        ));
        let wire = mpi_pack(&dt, p, &native).unwrap();
        assert!(matches!(
            mpi_unpack(&dt, p, &wire[..5]),
            Err(MpiError::Truncated { .. })
        ));
    }

    #[test]
    fn a_priori_disagreement_silently_corrupts() {
        // The brittleness the paper contrasts with PBIO: if sender and
        // receiver datatypes disagree (sender added a leading field), MPI has
        // no metadata to detect it — data lands in the wrong fields.
        let sender_schema = mixed()
            .with_field_prepended(FieldDecl::atom("extra", AtomType::CInt))
            .unwrap();
        let p = &ArchProfile::X86;
        let sdt = Datatype::from_schema(&sender_schema, p).unwrap();
        let rdt = Datatype::from_schema(&mixed(), p).unwrap();
        let slay = Layout::of(&sender_schema, p).unwrap();
        let mut value = mixed_value();
        value.set("extra", 7i32);
        let native = encode_native(&value, &slay).unwrap();
        let wire = mpi_pack(&sdt, p, &native).unwrap();
        // Receiver unpacks with its own (shorter) type: no error, wrong data.
        let out = mpi_unpack(&rdt, p, &wire).unwrap();
        let got = decode_native(&out, &Layout::of(&mixed(), p).unwrap()).unwrap();
        assert_ne!(got, mixed_value(), "silent corruption, not detection");
    }
}
