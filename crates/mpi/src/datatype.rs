//! MPI-style datatype constructors.
//!
//! Mirrors the MPI type algebra: basic types (bound to C types whose size
//! depends on the architecture), `MPI_Type_contiguous`, `MPI_Type_vector`,
//! `MPI_Type_hvector`, `MPI_Type_hindexed` and `MPI_Type_struct`. A
//! [`Datatype`] describes where elements live in *native* memory; the
//! [`crate::engine`] walks it to pack/unpack.

use std::fmt;
use std::sync::Arc;

use pbio_types::arch::ArchProfile;
use pbio_types::layout::{resolve_atom, ConcreteType, Layout};
#[cfg(test)]
use pbio_types::schema::TypeDesc;
use pbio_types::schema::{AtomType, Schema};

/// Errors from datatype construction and the pack/unpack engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Variable-length fields cannot be described by MPI datatypes.
    VariableLength(String),
    /// Source or destination buffer too small.
    Truncated {
        /// What the engine was doing.
        context: String,
        /// Bytes needed.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// A schema/layout error while deriving a datatype.
    BadSchema(String),
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::VariableLength(field) => {
                write!(
                    f,
                    "field {field:?} is variable-length; MPI datatypes require a priori sizes"
                )
            }
            MpiError::Truncated {
                context,
                need,
                have,
            } => {
                write!(
                    f,
                    "buffer truncated while {context}: need {need}, have {have}"
                )
            }
            MpiError::BadSchema(msg) => write!(f, "cannot derive datatype: {msg}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// An MPI datatype: a description of typed elements at native offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum Datatype {
    /// A basic type (`MPI_INT`, `MPI_DOUBLE`, ...), bound to a C type.
    Basic(AtomType),
    /// `count` consecutive elements (`MPI_Type_contiguous`).
    Contiguous {
        /// Number of elements.
        count: usize,
        /// Element type.
        inner: Arc<Datatype>,
    },
    /// `count` blocks of `blocklen` elements, block starts `stride` elements
    /// apart (`MPI_Type_vector`).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Distance between block starts, in elements.
        stride: isize,
        /// Element type.
        inner: Arc<Datatype>,
    },
    /// Like `Vector` but the stride is in bytes (`MPI_Type_hvector`).
    HVector {
        /// Number of blocks.
        count: usize,
        /// Elements per block.
        blocklen: usize,
        /// Distance between block starts, in bytes.
        byte_stride: isize,
        /// Element type.
        inner: Arc<Datatype>,
    },
    /// Blocks at explicit byte displacements (`MPI_Type_hindexed`).
    HIndexed {
        /// (byte displacement, element count) per block.
        blocks: Vec<(usize, usize)>,
        /// Element type.
        inner: Arc<Datatype>,
    },
    /// Heterogeneous fields at byte offsets (`MPI_Type_struct`). `extent` is
    /// the native size of one struct, including trailing padding.
    Struct {
        /// (byte offset, element count, element type) per field.
        fields: Vec<(usize, usize, Arc<Datatype>)>,
        /// Native extent in bytes.
        extent: usize,
    },
}

impl Datatype {
    /// Native extent in bytes on `profile` — the span one element occupies
    /// in memory (`MPI_Type_extent`).
    pub fn extent(&self, profile: &ArchProfile) -> usize {
        match self {
            Datatype::Basic(atom) => native_width(*atom, profile),
            Datatype::Contiguous { count, inner } => count * inner.extent(profile),
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let e = inner.extent(profile) as isize;
                if *count == 0 {
                    return 0;
                }
                (((*count as isize - 1) * stride + *blocklen as isize) * e).max(0) as usize
            }
            Datatype::HVector {
                count,
                blocklen,
                byte_stride,
                inner,
            } => {
                let e = inner.extent(profile) as isize;
                if *count == 0 {
                    return 0;
                }
                ((*count as isize - 1) * byte_stride + *blocklen as isize * e).max(0) as usize
            }
            Datatype::HIndexed { blocks, inner } => {
                let e = inner.extent(profile);
                blocks.iter().map(|(d, n)| d + n * e).max().unwrap_or(0)
            }
            Datatype::Struct { extent, .. } => *extent,
        }
    }

    /// Number of basic elements in one instance (`MPI_Type_size` divided by
    /// element widths; used for cost accounting).
    pub fn element_count(&self) -> usize {
        match self {
            Datatype::Basic(_) => 1,
            Datatype::Contiguous { count, inner } => count * inner.element_count(),
            Datatype::Vector {
                count,
                blocklen,
                inner,
                ..
            }
            | Datatype::HVector {
                count,
                blocklen,
                inner,
                ..
            } => count * blocklen * inner.element_count(),
            Datatype::HIndexed { blocks, inner } => {
                blocks.iter().map(|(_, n)| n).sum::<usize>() * inner.element_count()
            }
            Datatype::Struct { fields, .. } => {
                fields.iter().map(|(_, n, t)| n * t.element_count()).sum()
            }
        }
    }

    /// Derive the `MPI_Type_struct` describing `schema` as laid out on
    /// `profile` — what an MPI application would hand-build (and keep in
    /// sync by hand) for its records.
    ///
    /// Basic types keep their *logical* identity (`CLong` stays `CLong`, not
    /// "whatever width this machine happens to use"), so two machines
    /// deriving datatypes from the same schema agree on the canonical wire
    /// widths — the a-priori agreement MPI requires.
    pub fn from_schema(schema: &Schema, profile: &ArchProfile) -> Result<Datatype, MpiError> {
        let layout = Layout::of(schema, profile).map_err(|e| MpiError::BadSchema(e.to_string()))?;
        let mut fields = Vec::with_capacity(layout.fields().len());
        for (decl, f) in schema.fields().iter().zip(layout.fields()) {
            let (count, inner) = Self::from_pair(&f.name, &decl.ty, &f.ty, profile)?;
            fields.push((f.offset, count, Arc::new(inner)));
        }
        Ok(Datatype::Struct {
            fields,
            extent: layout.size(),
        })
    }

    fn from_pair(
        name: &str,
        lty: &pbio_types::schema::TypeDesc,
        cty: &ConcreteType,
        profile: &ArchProfile,
    ) -> Result<(usize, Datatype), MpiError> {
        use pbio_types::schema::TypeDesc as T;
        Ok(match (lty, cty) {
            (T::Atom(atom), _) => (1, Datatype::Basic(*atom)),
            (
                T::Fixed(linner, _),
                ConcreteType::FixedArray {
                    elem,
                    count,
                    stride,
                },
            ) => {
                let (n, inner) = Self::from_pair(name, linner, elem, profile)?;
                let inner_extent = inner.extent(profile) * n;
                if *stride == inner_extent && n == 1 {
                    (*count, inner)
                } else if *stride == inner_extent {
                    (
                        1,
                        Datatype::Contiguous {
                            count: count * n,
                            inner: Arc::new(inner),
                        },
                    )
                } else {
                    // Padded elements: an hvector with the padded byte stride.
                    (
                        1,
                        Datatype::HVector {
                            count: *count,
                            blocklen: n,
                            byte_stride: *stride as isize,
                            inner: Arc::new(inner),
                        },
                    )
                }
            }
            (T::Record(sub_schema), ConcreteType::Record(sub_layout)) => {
                let mut fields = Vec::with_capacity(sub_layout.fields().len());
                for (decl, f) in sub_schema.fields().iter().zip(sub_layout.fields()) {
                    let (count, inner) = Self::from_pair(&f.name, &decl.ty, &f.ty, profile)?;
                    fields.push((f.offset, count, Arc::new(inner)));
                }
                (
                    1,
                    Datatype::Struct {
                        fields,
                        extent: sub_layout.size(),
                    },
                )
            }
            (T::String, _) | (T::Var(..), _) => {
                return Err(MpiError::VariableLength(name.to_owned()))
            }
            (l, c) => {
                return Err(MpiError::BadSchema(format!(
                    "schema/layout mismatch for {name:?}: {l:?} vs {c:?}"
                )))
            }
        })
    }
}

/// Width of a basic type in native memory on `profile`.
pub fn native_width(atom: AtomType, profile: &ArchProfile) -> usize {
    match resolve_atom(atom, profile).expect("basic atoms always resolve") {
        ConcreteType::Int { bytes, .. } | ConcreteType::Float { bytes } => bytes as usize,
        ConcreteType::Char | ConcreteType::Bool => 1,
        _ => unreachable!(),
    }
}

/// Width of a basic type on the canonical wire (architecture-independent,
/// XDR-style: fixed regardless of the native `long` size).
pub fn wire_width(atom: AtomType) -> usize {
    match atom {
        AtomType::I8 | AtomType::U8 | AtomType::Char | AtomType::Bool => 1,
        AtomType::I16 | AtomType::U16 | AtomType::CShort | AtomType::CUShort => 2,
        AtomType::I32
        | AtomType::U32
        | AtomType::CInt
        | AtomType::CUInt
        | AtomType::F32
        | AtomType::CFloat => 4,
        AtomType::I64
        | AtomType::U64
        | AtomType::CLong
        | AtomType::CULong
        | AtomType::F64
        | AtomType::CDouble => 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::schema::FieldDecl;

    fn mixed() -> Schema {
        Schema::new(
            "mixed",
            vec![
                FieldDecl::atom("tag", AtomType::Char),
                FieldDecl::atom("x", AtomType::CDouble),
                FieldDecl::atom("count", AtomType::CInt),
                FieldDecl::atom("id", AtomType::CLong),
                FieldDecl::new("v", TypeDesc::array(AtomType::CFloat, 4)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn struct_from_schema_matches_layout() {
        for p in ArchProfile::all() {
            let dt = Datatype::from_schema(&mixed(), p).unwrap();
            let layout = Layout::of(&mixed(), p).unwrap();
            assert_eq!(dt.extent(p), layout.size(), "{}", p.name);
            match &dt {
                Datatype::Struct { fields, .. } => assert_eq!(fields.len(), 5),
                other => panic!("expected struct, got {other:?}"),
            }
            assert_eq!(dt.element_count(), 8); // 4 scalars + 4 array elems
        }
    }

    #[test]
    fn var_fields_rejected() {
        let s = Schema::new(
            "v",
            vec![
                FieldDecl::atom("n", AtomType::CInt),
                FieldDecl::new("name", TypeDesc::String),
            ],
        )
        .unwrap();
        assert!(matches!(
            Datatype::from_schema(&s, &ArchProfile::X86),
            Err(MpiError::VariableLength(_))
        ));
    }

    #[test]
    fn vector_extent_math() {
        let inner = Arc::new(Datatype::Basic(AtomType::CDouble));
        let v = Datatype::Vector {
            count: 3,
            blocklen: 2,
            stride: 4,
            inner,
        };
        // Elements of 8 bytes: last block starts at 2*4*8=64, spans 2*8=16.
        assert_eq!(v.extent(&ArchProfile::X86_64), 80);
        assert_eq!(v.element_count(), 6);
    }

    #[test]
    fn hvector_and_hindexed_extent() {
        let inner = Arc::new(Datatype::Basic(AtomType::CInt));
        let hv = Datatype::HVector {
            count: 2,
            blocklen: 3,
            byte_stride: 32,
            inner: inner.clone(),
        };
        assert_eq!(hv.extent(&ArchProfile::X86), 32 + 12);
        let hi = Datatype::HIndexed {
            blocks: vec![(0, 2), (40, 1)],
            inner,
        };
        assert_eq!(hi.extent(&ArchProfile::X86), 44);
        assert_eq!(hi.element_count(), 3);
    }

    #[test]
    fn long_width_is_architecture_dependent() {
        assert_eq!(native_width(AtomType::CLong, &ArchProfile::SPARC_V8), 4);
        assert_eq!(native_width(AtomType::CLong, &ArchProfile::X86_64), 8);
        // ...but the wire width is fixed.
        assert_eq!(wire_width(AtomType::CLong), 8);
    }

    #[test]
    fn contiguous_flattening() {
        // A dense array of chars should become one contiguous of N chars.
        let s = Schema::new(
            "c",
            vec![FieldDecl::new("name", TypeDesc::array(AtomType::Char, 20))],
        )
        .unwrap();
        let dt = Datatype::from_schema(&s, &ArchProfile::X86).unwrap();
        match dt {
            Datatype::Struct { ref fields, .. } => match &*fields[0].2 {
                Datatype::Basic(AtomType::Char) => assert_eq!(fields[0].1, 20),
                Datatype::Contiguous { count, .. } => assert_eq!(*count, 20),
                other => panic!("unexpected {other:?}"),
            },
            ref other => panic!("unexpected {other:?}"),
        }
    }
}
