//! # pbio-mpi — an MPICH-model datatype engine and packed wire format
//!
//! The paper's primary performance baseline is MPICH's MPI implementation
//! (§4.1): user-defined datatypes marshalled by "mechanisms that amount to
//! interpreted versions of field-by-field packing" (§2), into a fully packed
//! wire format with no gaps — which "forces a data copy operation" at both
//! ends (§4.3) — and unpacked "via a separate buffer for the unpacked
//! message rather than reusing the receive buffer" (§4.3).
//!
//! This crate reproduces that baseline from scratch:
//!
//! * [`datatype::Datatype`] — MPI-style type constructors (basic types,
//!   `contiguous`, `vector`, `hvector`, `hindexed`, `struct`), including
//!   construction from a [`pbio_types::Schema`] so benchmarks drive MPI and
//!   PBIO with identical records.
//! * [`engine`] — `pack`/`unpack`: a table-driven (tree-walking) interpreter
//!   that converts between a machine's native representation (per
//!   [`pbio_types::ArchProfile`]) and a canonical big-endian packed wire
//!   format with architecture-independent widths (XDR-style).
//!
//! Faithful cost structure, per the paper:
//! * sender: per-element interpreted walk + copy into a contiguous buffer,
//! * receiver: per-element interpreted walk + copy into a **separate**
//!   destination buffer,
//! * no format metadata on the wire — sender and receiver must agree a
//!   priori; any disagreement silently corrupts data (tested!), which is
//!   exactly the brittleness PBIO's meta-information removes.

#![warn(missing_docs)]

pub mod datatype;
pub mod engine;

pub use datatype::{Datatype, MpiError};
pub use engine::{mpi_pack, mpi_pack_into, mpi_unpack, packed_size};
