//! Subscriber fan-out, factored out of [`crate::channel::Channel`] so the
//! in-process channel and the networked daemon (`pbio-serv`) share one
//! dispatch engine.
//!
//! The engine owns the per-event loop — skip inactive subscribers, ask each
//! one's filter, count filtered/delivered/dropped — while the two halves of
//! subscriber behavior stay pluggable through the [`Subscriber`] trait:
//!
//! * the local channel's subscriber converts the record for its
//!   architecture and invokes a callback;
//! * the daemon's subscriber compiles the filter per incoming wire format
//!   and enqueues the untouched wire bytes on a bounded outbound queue
//!   (which may drop, hence [`DeliveryOutcome::Dropped`]).
//!
//! Delivery hands each subscriber a shared [`WireBuf`], so fanning one
//! event out to N subscribers costs at most one allocation total (and
//! none at all when every filter rejects it, or when the publisher
//! already holds shared bytes — [`Fanout::publish_shared`]).

use std::sync::Arc;

use pbio_net::buf::WireBuf;
use pbio_obs::{epoch_ns, Counter, Histogram, Span, TraceCtx, TraceHop, TraceSink, HOP_FILTER};

/// Identifies one subscription on a fan-out (and, re-exported, on a
/// [`crate::channel::Channel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(pub(crate) usize);

/// What a subscriber did with an event it accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The event reached the subscriber (invoked, or enqueued for it).
    Delivered,
    /// The subscriber's queue was full and policy discarded an event.
    Dropped,
}

/// One subscriber endpoint: a filter decision plus a delivery action.
pub trait Subscriber {
    /// Error type surfaced through [`Fanout::publish`].
    type Error;

    /// Should this event (format id + wire-format bytes) be delivered?
    /// Runs *before* any conversion or copying — the "filter at the
    /// source" the paper's §5 envisions.
    fn accepts(&mut self, format: u32, wire: &[u8]) -> Result<bool, Self::Error>;

    /// Deliver the accepted event. The body is shared: subscribers that
    /// need to keep it (e.g. queue it for a connection's reactor flush)
    /// clone the [`WireBuf`] — a refcount bump, not a copy.
    ///
    /// `trace` is the event's sampled trace context, when it carries
    /// one: delivery sites that constitute a hop (the daemon's enqueue
    /// onto a subscriber's outbound queue) re-stamp it into their own
    /// hop records. Untraced events — the overwhelming majority under
    /// head-based sampling — pass `None` and pay nothing for it.
    fn deliver(
        &mut self,
        format: u32,
        wire: &WireBuf,
        trace: Option<&TraceCtx>,
    ) -> Result<DeliveryOutcome, Self::Error>;
}

/// Event-loop counters, shared by every fan-out user.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Events published into the fan-out.
    pub published: u64,
    /// (subscriber, event) deliveries performed.
    pub delivered: u64,
    /// (subscriber, event) pairs suppressed by filters before any work.
    pub filtered_out: u64,
    /// Events discarded by subscriber backpressure policy.
    pub dropped: u64,
}

struct Entry<S> {
    id: SubscriptionId,
    sub: S,
    active: bool,
}

/// Optional registry-backed observation hooks for a fan-out. Installed by
/// owners that keep a metric registry (the daemon); when absent the publish
/// loop stays exactly as cheap as before.
pub struct FanoutObs {
    /// Time spent in the whole per-event fan-out loop.
    pub fanout_ns: Arc<Histogram>,
    /// Time spent evaluating subscriber filters (per subscriber ask).
    pub filter_ns: Arc<Histogram>,
    /// Events discarded by subscriber backpressure (mirrors
    /// [`DispatchStats::dropped`] into a registry).
    pub dropped: Arc<Counter>,
    /// Distributed-tracing hooks, installed per channel by owners that
    /// export hop records. `None` keeps the loop byte-identical to the
    /// untraced one.
    pub trace: Option<FanoutTraceObs>,
}

/// Where a fan-out's `filter` hop records go: the owning channel's id, a
/// per-channel labeled histogram, and the shared hop sink.
pub struct FanoutTraceObs {
    /// Hop-record sink shared with the other stages (ingress, flush…).
    pub sink: Arc<TraceSink>,
    /// Channel id stamped into this fan-out's hop records.
    pub channel: u32,
    /// Per-channel filter-stage latency (labeled, e.g.
    /// `hop_filter_ns{chan="ticks"}`).
    pub hop_filter_ns: Arc<Histogram>,
}

/// The shared fan-out engine: an ordered set of subscribers and the
/// publish loop over them.
pub struct Fanout<S> {
    subs: Vec<Entry<S>>,
    next: usize,
    stats: DispatchStats,
    obs: Option<FanoutObs>,
}

impl<S> Default for Fanout<S> {
    fn default() -> Fanout<S> {
        Fanout::new()
    }
}

impl<S> Fanout<S> {
    /// An empty fan-out.
    pub fn new() -> Fanout<S> {
        Fanout {
            subs: Vec::new(),
            next: 0,
            stats: DispatchStats::default(),
            obs: None,
        }
    }

    /// Install observation hooks (see [`FanoutObs`]).
    pub fn set_obs(&mut self, obs: FanoutObs) {
        self.obs = Some(obs);
    }

    /// Add a subscriber; ids are never reused.
    pub fn subscribe(&mut self, sub: S) -> SubscriptionId {
        let id = SubscriptionId(self.next);
        self.next += 1;
        self.subs.push(Entry {
            id,
            sub,
            active: true,
        });
        id
    }

    /// Deactivate a subscription. Returns `false` if the id is unknown.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        match self.subs.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.active = false;
                true
            }
            None => false,
        }
    }

    /// Number of active subscriptions.
    pub fn active_count(&self) -> usize {
        self.subs.iter().filter(|e| e.active).count()
    }

    /// Mutable access to one subscriber (daemon bookkeeping).
    pub fn get_mut(&mut self, id: SubscriptionId) -> Option<&mut S> {
        self.subs
            .iter_mut()
            .find(|e| e.id == id)
            .map(|e| &mut e.sub)
    }

    /// Iterate over `(id, subscriber)` for the active subscriptions.
    pub fn iter_active_mut(&mut self) -> impl Iterator<Item = (SubscriptionId, &mut S)> {
        self.subs
            .iter_mut()
            .filter(|e| e.active)
            .map(|e| (e.id, &mut e.sub))
    }

    /// Drop subscriptions (active or not) failing the predicate — used by
    /// the daemon to reap subscribers whose connection went away.
    pub fn retain(&mut self, mut keep: impl FnMut(SubscriptionId, &mut S) -> bool) {
        self.subs.retain_mut(|e| keep(e.id, &mut e.sub));
    }

    /// Counters so far.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }
}

impl<S: Subscriber> Fanout<S> {
    /// Publish one event to every active subscriber whose filter accepts
    /// it. Returns the number of deliveries.
    ///
    /// The shared delivery buffer is materialized lazily, on the first
    /// acceptance: an event every filter rejects allocates nothing, and
    /// one any number of subscribers accept allocates exactly once.
    pub fn publish(&mut self, format: u32, wire: &[u8]) -> Result<usize, S::Error> {
        self.publish_impl(format, wire, None, None)
    }

    /// [`Fanout::publish`] for a publisher that already holds the event
    /// in shared storage (the daemon's ingest path): delivery is pure
    /// refcount bumps, zero allocations.
    pub fn publish_shared(&mut self, format: u32, wire: &WireBuf) -> Result<usize, S::Error> {
        self.publish_impl(format, wire, Some(wire.clone()), None)
    }

    /// [`Fanout::publish_shared`] with the event's trace context, when
    /// it carries one. A sampled context switches the loop into two
    /// passes — every filter first, then every delivery — so the
    /// `filter` hop is stamped strictly before any `enqueue` hop and
    /// the reconstructed timeline stays causal.
    pub fn publish_traced(
        &mut self,
        format: u32,
        wire: &WireBuf,
        trace: Option<&TraceCtx>,
    ) -> Result<usize, S::Error> {
        self.publish_impl(format, wire, Some(wire.clone()), trace)
    }

    fn publish_impl(
        &mut self,
        format: u32,
        wire: &[u8],
        shared: Option<WireBuf>,
        trace: Option<&TraceCtx>,
    ) -> Result<usize, S::Error> {
        self.stats.published += 1;
        let fanout_hist = self.obs.as_ref().map(|o| o.fanout_ns.clone());
        let _fanout_span = fanout_hist.as_ref().map(|h| Span::enter(h));
        match trace.filter(|c| c.sampled()) {
            Some(ctx) => self.publish_two_pass(format, wire, shared, ctx),
            None => self.publish_one_pass(format, wire, shared),
        }
    }

    /// The hot path: filter and deliver each subscriber in one sweep.
    fn publish_one_pass(
        &mut self,
        format: u32,
        wire: &[u8],
        mut shared: Option<WireBuf>,
    ) -> Result<usize, S::Error> {
        let mut delivered = 0usize;
        for entry in &mut self.subs {
            if !entry.active {
                continue;
            }
            let accepted = {
                let _filter_span = self.obs.as_ref().map(|o| Span::enter(&o.filter_ns));
                entry.sub.accepts(format, wire)?
            };
            if !accepted {
                self.stats.filtered_out += 1;
                continue;
            }
            let buf = shared.get_or_insert_with(|| WireBuf::copy_from(wire));
            match entry.sub.deliver(format, buf, None)? {
                DeliveryOutcome::Delivered => {
                    delivered += 1;
                    self.stats.delivered += 1;
                }
                DeliveryOutcome::Dropped => {
                    self.stats.dropped += 1;
                    if let Some(o) = &self.obs {
                        o.dropped.inc();
                    }
                }
            }
        }
        Ok(delivered)
    }

    /// The sampled path: all filters, the `filter` hop stamp, then all
    /// deliveries. The verdict vector allocates — only 1-in-N sampled
    /// events ever reach here.
    fn publish_two_pass(
        &mut self,
        format: u32,
        wire: &[u8],
        mut shared: Option<WireBuf>,
        ctx: &TraceCtx,
    ) -> Result<usize, S::Error> {
        let t0 = epoch_ns();
        let mut verdicts = Vec::with_capacity(self.subs.len());
        for entry in &mut self.subs {
            let accepted = entry.active && {
                let _filter_span = self.obs.as_ref().map(|o| Span::enter(&o.filter_ns));
                entry.sub.accepts(format, wire)?
            };
            if entry.active && !accepted {
                self.stats.filtered_out += 1;
            }
            verdicts.push(accepted);
        }
        let t1 = epoch_ns();
        if let Some(tr) = self.obs.as_ref().and_then(|o| o.trace.as_ref()) {
            let dur = t1.saturating_sub(t0);
            tr.hop_filter_ns.record(dur);
            tr.sink.push(TraceHop {
                trace_id: ctx.trace_id,
                span_id: HOP_FILTER,
                hop: HOP_FILTER,
                conn: 0,
                channel: tr.channel,
                t_ns: t1,
                dur_ns: dur,
            });
        }
        let mut delivered = 0usize;
        for (entry, accepted) in self.subs.iter_mut().zip(verdicts) {
            if !accepted {
                continue;
            }
            let buf = shared.get_or_insert_with(|| WireBuf::copy_from(wire));
            match entry.sub.deliver(format, buf, Some(ctx))? {
                DeliveryOutcome::Delivered => {
                    delivered += 1;
                    self.stats.delivered += 1;
                }
                DeliveryOutcome::Dropped => {
                    self.stats.dropped += 1;
                    if let Some(o) = &self.obs {
                        o.dropped.inc();
                    }
                }
            }
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestSub {
        threshold: u8,
        seen: Vec<u8>,
        bufs: Vec<WireBuf>,
        capacity: usize,
        traced: usize,
    }

    fn sub(threshold: u8, capacity: usize) -> TestSub {
        TestSub {
            threshold,
            seen: Vec::new(),
            bufs: Vec::new(),
            capacity,
            traced: 0,
        }
    }

    impl Subscriber for TestSub {
        type Error = ();

        fn accepts(&mut self, _format: u32, wire: &[u8]) -> Result<bool, ()> {
            Ok(wire[0] >= self.threshold)
        }

        fn deliver(
            &mut self,
            _format: u32,
            wire: &WireBuf,
            trace: Option<&TraceCtx>,
        ) -> Result<DeliveryOutcome, ()> {
            if self.seen.len() >= self.capacity {
                return Ok(DeliveryOutcome::Dropped);
            }
            self.seen.push(wire[0]);
            self.bufs.push(wire.clone());
            self.traced += usize::from(trace.is_some());
            Ok(DeliveryOutcome::Delivered)
        }
    }

    #[test]
    fn filters_deliveries_and_drops_are_counted() {
        let mut fanout = Fanout::new();
        let all = fanout.subscribe(sub(0, 2));
        let high = fanout.subscribe(sub(10, 99));
        for v in [1u8, 5, 20, 30] {
            fanout.publish(0, &[v]).unwrap();
        }
        assert_eq!(fanout.stats().published, 4);
        // `all` accepts everything but its capacity drops the last two.
        assert_eq!(fanout.get_mut(all).unwrap().seen, vec![1, 5]);
        assert_eq!(fanout.get_mut(high).unwrap().seen, vec![20, 30]);
        assert_eq!(fanout.stats().filtered_out, 2);
        assert_eq!(fanout.stats().dropped, 2);
        assert_eq!(fanout.stats().delivered, 4);
    }

    #[test]
    fn deliveries_share_one_buffer_per_event() {
        let mut fanout = Fanout::new();
        let ids: Vec<_> = (0..4).map(|_| fanout.subscribe(sub(0, 9))).collect();
        fanout.publish(0, &[42]).unwrap();
        let first = fanout.get_mut(ids[0]).unwrap().bufs[0].clone();
        for &id in &ids {
            let b = &fanout.get_mut(id).unwrap().bufs[0];
            assert!(
                WireBuf::ptr_eq(b, &first),
                "every subscriber sees the same shared storage"
            );
        }
        // publish_shared hands the caller's buffer through untouched.
        let shared = WireBuf::copy_from(&[43]);
        fanout.publish_shared(0, &shared).unwrap();
        let b = &fanout.get_mut(ids[1]).unwrap().bufs[1];
        assert!(WireBuf::ptr_eq(b, &shared));
    }

    #[test]
    fn traced_publish_stamps_filter_before_delivery() {
        use pbio_obs::{Registry, FLAG_SAMPLED};

        let reg = Registry::new();
        let sink = Arc::new(TraceSink::new(16));
        let mut fanout = Fanout::new();
        fanout.set_obs(FanoutObs {
            fanout_ns: reg.histogram("fanout_ns"),
            filter_ns: reg.histogram("filter_ns"),
            dropped: reg.counter("dropped"),
            trace: Some(FanoutTraceObs {
                sink: sink.clone(),
                channel: 9,
                hop_filter_ns: reg.histogram_labeled("hop_filter_ns", "chan", "nine"),
            }),
        });
        let lo = fanout.subscribe(sub(0, 99));
        let hi = fanout.subscribe(sub(50, 99));

        let ctx = TraceCtx {
            trace_id: 77,
            span_id: 0,
            origin_ns: 1,
            flags: FLAG_SAMPLED,
        };
        let wire = WireBuf::copy_from(&[10]);
        let n = fanout.publish_traced(3, &wire, Some(&ctx)).unwrap();
        assert_eq!(n, 1, "only the low-threshold subscriber accepts");
        assert_eq!(fanout.get_mut(lo).unwrap().traced, 1, "ctx forwarded");
        assert_eq!(fanout.get_mut(hi).unwrap().traced, 0);
        assert_eq!(fanout.stats().filtered_out, 1);

        let hops = sink.drain();
        assert_eq!(hops.len(), 1);
        assert_eq!(hops[0].hop, HOP_FILTER);
        assert_eq!(hops[0].trace_id, 77);
        assert_eq!(hops[0].channel, 9);
        assert_eq!(
            reg.snapshot()
                .histogram("hop_filter_ns{chan=\"nine\"}")
                .unwrap()
                .count,
            1
        );

        // An unsampled (or absent) context takes the one-pass loop and
        // records nothing.
        fanout.publish_traced(3, &wire, None).unwrap();
        let unsampled = TraceCtx { flags: 0, ..ctx };
        fanout.publish_traced(3, &wire, Some(&unsampled)).unwrap();
        assert!(sink.is_empty());
        assert_eq!(fanout.get_mut(lo).unwrap().traced, 1);
    }

    #[test]
    fn unsubscribe_and_retain() {
        let mut fanout = Fanout::new();
        let a = fanout.subscribe(sub(0, 9));
        let b = fanout.subscribe(sub(0, 9));
        assert_eq!(fanout.active_count(), 2);
        assert!(fanout.unsubscribe(a));
        assert!(!fanout.unsubscribe(SubscriptionId(99)));
        assert_eq!(fanout.active_count(), 1);
        fanout.publish(0, &[3]).unwrap();
        assert_eq!(fanout.get_mut(b).unwrap().seen, vec![3]);
        fanout.retain(|id, _| id != b);
        assert_eq!(fanout.active_count(), 0);
    }
}
