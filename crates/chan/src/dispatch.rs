//! Subscriber fan-out, factored out of [`crate::channel::Channel`] so the
//! in-process channel and the networked daemon (`pbio-serv`) share one
//! dispatch engine.
//!
//! The engine owns the per-event loop — skip inactive subscribers, ask each
//! one's filter, count filtered/delivered/dropped — while the two halves of
//! subscriber behavior stay pluggable through the [`Subscriber`] trait:
//!
//! * the local channel's subscriber converts the record for its
//!   architecture and invokes a callback;
//! * the daemon's subscriber compiles the filter per incoming wire format
//!   and enqueues the untouched wire bytes on a bounded outbound queue
//!   (which may drop, hence [`DeliveryOutcome::Dropped`]).
//!
//! Delivery hands each subscriber a shared [`WireBuf`], so fanning one
//! event out to N subscribers costs at most one allocation total (and
//! none at all when every filter rejects it, or when the publisher
//! already holds shared bytes — [`Fanout::publish_shared`]).

use std::sync::Arc;

use pbio_net::buf::WireBuf;
use pbio_obs::{Counter, Histogram, Span};

/// Identifies one subscription on a fan-out (and, re-exported, on a
/// [`crate::channel::Channel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(pub(crate) usize);

/// What a subscriber did with an event it accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The event reached the subscriber (invoked, or enqueued for it).
    Delivered,
    /// The subscriber's queue was full and policy discarded an event.
    Dropped,
}

/// One subscriber endpoint: a filter decision plus a delivery action.
pub trait Subscriber {
    /// Error type surfaced through [`Fanout::publish`].
    type Error;

    /// Should this event (format id + wire-format bytes) be delivered?
    /// Runs *before* any conversion or copying — the "filter at the
    /// source" the paper's §5 envisions.
    fn accepts(&mut self, format: u32, wire: &[u8]) -> Result<bool, Self::Error>;

    /// Deliver the accepted event. The body is shared: subscribers that
    /// need to keep it (e.g. queue it for a connection's writer thread)
    /// clone the [`WireBuf`] — a refcount bump, not a copy.
    fn deliver(&mut self, format: u32, wire: &WireBuf) -> Result<DeliveryOutcome, Self::Error>;
}

/// Event-loop counters, shared by every fan-out user.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Events published into the fan-out.
    pub published: u64,
    /// (subscriber, event) deliveries performed.
    pub delivered: u64,
    /// (subscriber, event) pairs suppressed by filters before any work.
    pub filtered_out: u64,
    /// Events discarded by subscriber backpressure policy.
    pub dropped: u64,
}

struct Entry<S> {
    id: SubscriptionId,
    sub: S,
    active: bool,
}

/// Optional registry-backed observation hooks for a fan-out. Installed by
/// owners that keep a metric registry (the daemon); when absent the publish
/// loop stays exactly as cheap as before.
pub struct FanoutObs {
    /// Time spent in the whole per-event fan-out loop.
    pub fanout_ns: Arc<Histogram>,
    /// Time spent evaluating subscriber filters (per subscriber ask).
    pub filter_ns: Arc<Histogram>,
    /// Events discarded by subscriber backpressure (mirrors
    /// [`DispatchStats::dropped`] into a registry).
    pub dropped: Arc<Counter>,
}

/// The shared fan-out engine: an ordered set of subscribers and the
/// publish loop over them.
pub struct Fanout<S> {
    subs: Vec<Entry<S>>,
    next: usize,
    stats: DispatchStats,
    obs: Option<FanoutObs>,
}

impl<S> Default for Fanout<S> {
    fn default() -> Fanout<S> {
        Fanout::new()
    }
}

impl<S> Fanout<S> {
    /// An empty fan-out.
    pub fn new() -> Fanout<S> {
        Fanout {
            subs: Vec::new(),
            next: 0,
            stats: DispatchStats::default(),
            obs: None,
        }
    }

    /// Install observation hooks (see [`FanoutObs`]).
    pub fn set_obs(&mut self, obs: FanoutObs) {
        self.obs = Some(obs);
    }

    /// Add a subscriber; ids are never reused.
    pub fn subscribe(&mut self, sub: S) -> SubscriptionId {
        let id = SubscriptionId(self.next);
        self.next += 1;
        self.subs.push(Entry {
            id,
            sub,
            active: true,
        });
        id
    }

    /// Deactivate a subscription. Returns `false` if the id is unknown.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        match self.subs.iter_mut().find(|e| e.id == id) {
            Some(e) => {
                e.active = false;
                true
            }
            None => false,
        }
    }

    /// Number of active subscriptions.
    pub fn active_count(&self) -> usize {
        self.subs.iter().filter(|e| e.active).count()
    }

    /// Mutable access to one subscriber (daemon bookkeeping).
    pub fn get_mut(&mut self, id: SubscriptionId) -> Option<&mut S> {
        self.subs
            .iter_mut()
            .find(|e| e.id == id)
            .map(|e| &mut e.sub)
    }

    /// Iterate over `(id, subscriber)` for the active subscriptions.
    pub fn iter_active_mut(&mut self) -> impl Iterator<Item = (SubscriptionId, &mut S)> {
        self.subs
            .iter_mut()
            .filter(|e| e.active)
            .map(|e| (e.id, &mut e.sub))
    }

    /// Drop subscriptions (active or not) failing the predicate — used by
    /// the daemon to reap subscribers whose connection went away.
    pub fn retain(&mut self, mut keep: impl FnMut(SubscriptionId, &mut S) -> bool) {
        self.subs.retain_mut(|e| keep(e.id, &mut e.sub));
    }

    /// Counters so far.
    pub fn stats(&self) -> DispatchStats {
        self.stats
    }
}

impl<S: Subscriber> Fanout<S> {
    /// Publish one event to every active subscriber whose filter accepts
    /// it. Returns the number of deliveries.
    ///
    /// The shared delivery buffer is materialized lazily, on the first
    /// acceptance: an event every filter rejects allocates nothing, and
    /// one any number of subscribers accept allocates exactly once.
    pub fn publish(&mut self, format: u32, wire: &[u8]) -> Result<usize, S::Error> {
        self.publish_impl(format, wire, None)
    }

    /// [`Fanout::publish`] for a publisher that already holds the event
    /// in shared storage (the daemon's ingest path): delivery is pure
    /// refcount bumps, zero allocations.
    pub fn publish_shared(&mut self, format: u32, wire: &WireBuf) -> Result<usize, S::Error> {
        self.publish_impl(format, wire, Some(wire.clone()))
    }

    fn publish_impl(
        &mut self,
        format: u32,
        wire: &[u8],
        mut shared: Option<WireBuf>,
    ) -> Result<usize, S::Error> {
        self.stats.published += 1;
        let _fanout_span = self.obs.as_ref().map(|o| Span::enter(&o.fanout_ns));
        let mut delivered = 0usize;
        for entry in &mut self.subs {
            if !entry.active {
                continue;
            }
            let accepted = {
                let _filter_span = self.obs.as_ref().map(|o| Span::enter(&o.filter_ns));
                entry.sub.accepts(format, wire)?
            };
            if !accepted {
                self.stats.filtered_out += 1;
                continue;
            }
            let buf = shared.get_or_insert_with(|| WireBuf::copy_from(wire));
            match entry.sub.deliver(format, buf)? {
                DeliveryOutcome::Delivered => {
                    delivered += 1;
                    self.stats.delivered += 1;
                }
                DeliveryOutcome::Dropped => {
                    self.stats.dropped += 1;
                    if let Some(o) = &self.obs {
                        o.dropped.inc();
                    }
                }
            }
        }
        Ok(delivered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestSub {
        threshold: u8,
        seen: Vec<u8>,
        bufs: Vec<WireBuf>,
        capacity: usize,
    }

    fn sub(threshold: u8, capacity: usize) -> TestSub {
        TestSub {
            threshold,
            seen: Vec::new(),
            bufs: Vec::new(),
            capacity,
        }
    }

    impl Subscriber for TestSub {
        type Error = ();

        fn accepts(&mut self, _format: u32, wire: &[u8]) -> Result<bool, ()> {
            Ok(wire[0] >= self.threshold)
        }

        fn deliver(&mut self, _format: u32, wire: &WireBuf) -> Result<DeliveryOutcome, ()> {
            if self.seen.len() >= self.capacity {
                return Ok(DeliveryOutcome::Dropped);
            }
            self.seen.push(wire[0]);
            self.bufs.push(wire.clone());
            Ok(DeliveryOutcome::Delivered)
        }
    }

    #[test]
    fn filters_deliveries_and_drops_are_counted() {
        let mut fanout = Fanout::new();
        let all = fanout.subscribe(sub(0, 2));
        let high = fanout.subscribe(sub(10, 99));
        for v in [1u8, 5, 20, 30] {
            fanout.publish(0, &[v]).unwrap();
        }
        assert_eq!(fanout.stats().published, 4);
        // `all` accepts everything but its capacity drops the last two.
        assert_eq!(fanout.get_mut(all).unwrap().seen, vec![1, 5]);
        assert_eq!(fanout.get_mut(high).unwrap().seen, vec![20, 30]);
        assert_eq!(fanout.stats().filtered_out, 2);
        assert_eq!(fanout.stats().dropped, 2);
        assert_eq!(fanout.stats().delivered, 4);
    }

    #[test]
    fn deliveries_share_one_buffer_per_event() {
        let mut fanout = Fanout::new();
        let ids: Vec<_> = (0..4).map(|_| fanout.subscribe(sub(0, 9))).collect();
        fanout.publish(0, &[42]).unwrap();
        let first = fanout.get_mut(ids[0]).unwrap().bufs[0].clone();
        for &id in &ids {
            let b = &fanout.get_mut(id).unwrap().bufs[0];
            assert!(
                WireBuf::ptr_eq(b, &first),
                "every subscriber sees the same shared storage"
            );
        }
        // publish_shared hands the caller's buffer through untouched.
        let shared = WireBuf::copy_from(&[43]);
        fanout.publish_shared(0, &shared).unwrap();
        let b = &fanout.get_mut(ids[1]).unwrap().bufs[1];
        assert!(WireBuf::ptr_eq(b, &shared));
    }

    #[test]
    fn unsubscribe_and_retain() {
        let mut fanout = Fanout::new();
        let a = fanout.subscribe(sub(0, 9));
        let b = fanout.subscribe(sub(0, 9));
        assert_eq!(fanout.active_count(), 2);
        assert!(fanout.unsubscribe(a));
        assert!(!fanout.unsubscribe(SubscriptionId(99)));
        assert_eq!(fanout.active_count(), 1);
        fanout.publish(0, &[3]).unwrap();
        assert_eq!(fanout.get_mut(b).unwrap().seen, vec![3]);
        fanout.retain(|id, _| id != b);
        assert_eq!(fanout.active_count(), 0);
    }
}
