//! Single-process event channels: one source format, many heterogeneous
//! subscribers, per-subscriber filters evaluated at the source.
//!
//! This models the deployment the paper motivates (§1): a simulation
//! publishing records that monitoring/visualization components consume, each
//! possibly compiled on a different architecture, each declaring only the
//! fields it cares about, and each optionally attaching a predicate so
//! uninteresting events are dropped *before* any conversion or delivery
//! work is spent on them — the "derived event channel" idea, with the
//! filter compiled by the same DCG machinery as the conversions.
//!
//! The per-event loop (filter gate, counters, delivery) lives in
//! [`crate::dispatch`], shared with the networked daemon in `pbio-serv`;
//! this module supplies the *local* subscriber: convert for the
//! subscriber's architecture and invoke its callback.

use std::sync::Arc;

use pbio::{CodegenMode, DcgConverter, PbioError, Plan, RecordView};
use pbio_types::arch::ArchProfile;
use pbio_types::layout::Layout;
use pbio_types::schema::Schema;
use pbio_types::value::{encode_native, RecordValue};

use crate::dispatch::{DeliveryOutcome, Fanout, Subscriber};
use crate::filter::{FilterError, FilterProgram, Predicate};

pub use crate::dispatch::SubscriptionId;

/// Per-channel delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Events published.
    pub published: u64,
    /// (subscriber, event) deliveries performed.
    pub delivered: u64,
    /// (subscriber, event) pairs suppressed by filters before conversion.
    pub filtered_out: u64,
}

/// Channel errors.
#[derive(Debug)]
pub enum ChannelError {
    /// Error from the PBIO layer.
    Pbio(PbioError),
    /// Error from a filter.
    Filter(FilterError),
    /// Unknown subscription id.
    UnknownSubscription(SubscriptionId),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Pbio(e) => write!(f, "pbio error: {e}"),
            ChannelError::Filter(e) => write!(f, "filter error: {e}"),
            ChannelError::UnknownSubscription(id) => write!(f, "unknown subscription {id:?}"),
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<PbioError> for ChannelError {
    fn from(e: PbioError) -> ChannelError {
        ChannelError::Pbio(e)
    }
}

impl From<FilterError> for ChannelError {
    fn from(e: FilterError) -> ChannelError {
        ChannelError::Filter(e)
    }
}

enum Delivery {
    /// Wire and native layouts are zero-copy compatible.
    ZeroCopy { native: Arc<Layout> },
    /// Generated conversion per delivered event.
    Convert {
        conv: Box<DcgConverter>,
        native: Arc<Layout>,
        buf: Vec<u8>,
    },
}

/// The local (in-process) subscriber: filter gate plus convert-and-invoke.
struct LocalSubscriber {
    filter: Option<FilterProgram>,
    delivery: Delivery,
    sink: Box<dyn FnMut(RecordView<'_>) + Send>,
}

impl Subscriber for LocalSubscriber {
    type Error = ChannelError;

    fn accepts(&mut self, _format: u32, wire: &[u8]) -> Result<bool, ChannelError> {
        match &self.filter {
            Some(filter) => Ok(filter.matches(wire)?),
            None => Ok(true),
        }
    }

    fn deliver(
        &mut self,
        _format: u32,
        wire: &pbio_net::buf::WireBuf,
        _trace: Option<&pbio_obs::TraceCtx>,
    ) -> Result<DeliveryOutcome, ChannelError> {
        match &mut self.delivery {
            Delivery::ZeroCopy { native } => {
                (self.sink)(RecordView::borrowed(wire, native.clone()));
            }
            Delivery::Convert { conv, native, buf } => {
                conv.convert_into(wire, buf)?;
                (self.sink)(RecordView::converted(buf, native.clone()));
            }
        }
        Ok(DeliveryOutcome::Delivered)
    }
}

/// An event channel: publish records in the source's native representation;
/// each subscriber receives them filtered and converted for its own
/// architecture and declared schema.
pub struct Channel {
    source: Arc<Layout>,
    fanout: Fanout<LocalSubscriber>,
}

impl Channel {
    /// Create a channel whose source publishes `schema` records from a
    /// machine with `profile`.
    pub fn new(schema: &Schema, profile: &ArchProfile) -> Result<Channel, ChannelError> {
        let source = Arc::new(Layout::of(schema, profile).map_err(PbioError::from)?);
        Ok(Channel {
            source,
            fanout: Fanout::new(),
        })
    }

    /// The source's wire layout (what subscribers' filters run against).
    pub fn source_layout(&self) -> &Arc<Layout> {
        &self.source
    }

    /// Attach a subscriber: its own architecture, its own expected schema
    /// (fields matched by name, PBIO type-extension rules apply) and an
    /// optional predicate compiled against the source format.
    pub fn subscribe<F>(
        &mut self,
        schema: &Schema,
        profile: &ArchProfile,
        filter: Option<Predicate>,
        sink: F,
    ) -> Result<SubscriptionId, ChannelError>
    where
        F: FnMut(RecordView<'_>) + Send + 'static,
    {
        let native = Arc::new(Layout::of(schema, profile).map_err(PbioError::from)?);
        let plan = Arc::new(Plan::build(self.source.clone(), native.clone()));
        let delivery = if plan.zero_copy {
            Delivery::ZeroCopy { native }
        } else {
            Delivery::Convert {
                conv: Box::new(DcgConverter::compile(plan, CodegenMode::Optimized)?),
                native,
                buf: Vec::new(),
            }
        };
        let filter = match filter {
            None => None,
            Some(p) => Some(FilterProgram::compile(p, self.source.clone())?),
        };
        Ok(self.fanout.subscribe(LocalSubscriber {
            filter,
            delivery,
            sink: Box::new(sink),
        }))
    }

    /// Cancel a subscription.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> Result<(), ChannelError> {
        if self.fanout.unsubscribe(id) {
            Ok(())
        } else {
            Err(ChannelError::UnknownSubscription(id))
        }
    }

    /// Number of active subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.fanout.active_count()
    }

    /// Publish one event given as the source's native bytes. Returns the
    /// number of subscribers it was delivered to.
    pub fn publish(&mut self, native: &[u8]) -> Result<usize, ChannelError> {
        self.fanout.publish(0, native)
    }

    /// Publish a dynamic value (encoded through the source layout first —
    /// convenience for tests and tools; real sources publish native bytes).
    pub fn publish_value(&mut self, value: &RecordValue) -> Result<usize, ChannelError> {
        let native = encode_native(value, &self.source).map_err(PbioError::from)?;
        self.publish(&native)
    }

    /// Delivery counters.
    pub fn stats(&self) -> ChannelStats {
        let s = self.fanout.stats();
        ChannelStats {
            published: s.published,
            delivered: s.delivered,
            filtered_out: s.filtered_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::schema::{AtomType, FieldDecl};
    use pbio_types::value::Value;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    fn schema() -> Schema {
        Schema::new(
            "reading",
            vec![
                FieldDecl::atom("seq", AtomType::CInt),
                FieldDecl::atom("temp", AtomType::CDouble),
                FieldDecl::atom("alarm", AtomType::Bool),
            ],
        )
        .unwrap()
    }

    fn reading(seq: i32, temp: f64, alarm: bool) -> RecordValue {
        RecordValue::new()
            .with("seq", seq)
            .with("temp", temp)
            .with("alarm", alarm)
    }

    #[test]
    fn fan_out_to_heterogeneous_subscribers() {
        let mut chan = Channel::new(&schema(), &ArchProfile::SPARC_V8).unwrap();
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (a2, b2) = (a.clone(), b.clone());
        chan.subscribe(&schema(), &ArchProfile::SPARC_V8, None, move |view| {
            assert!(view.is_zero_copy(), "homogeneous subscriber is zero-copy");
            a2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        chan.subscribe(&schema(), &ArchProfile::X86_64, None, move |view| {
            assert!(!view.is_zero_copy());
            assert!(view.get("temp").is_some());
            b2.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();

        for i in 0..5 {
            let n = chan
                .publish_value(&reading(i, 20.0 + i as f64, false))
                .unwrap();
            assert_eq!(n, 2);
        }
        assert_eq!(a.load(Ordering::Relaxed), 5);
        assert_eq!(b.load(Ordering::Relaxed), 5);
        assert_eq!(chan.stats().published, 5);
        assert_eq!(chan.stats().delivered, 10);
    }

    #[test]
    fn filters_suppress_before_conversion() {
        let mut chan = Channel::new(&schema(), &ArchProfile::SPARC_V8).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        chan.subscribe(
            &schema(),
            &ArchProfile::X86,
            Some(Predicate::gt("temp", 30.0).or(Predicate::eq("alarm", true))),
            move |view| {
                seen2.lock().unwrap().push(view.get("seq").unwrap());
            },
        )
        .unwrap();

        chan.publish_value(&reading(1, 25.0, false)).unwrap(); // filtered
        chan.publish_value(&reading(2, 35.0, false)).unwrap(); // temp
        chan.publish_value(&reading(3, 10.0, true)).unwrap(); // alarm
        chan.publish_value(&reading(4, 29.9, false)).unwrap(); // filtered

        let seen = seen.lock().unwrap();
        assert_eq!(*seen, vec![Value::I64(2), Value::I64(3)]);
        assert_eq!(chan.stats().filtered_out, 2);
        assert_eq!(chan.stats().delivered, 2);
    }

    #[test]
    fn subscriber_with_subset_schema() {
        // Subscriber only wants `seq` — type extension in the small.
        let subset = Schema::new("reading", vec![FieldDecl::atom("seq", AtomType::CInt)]).unwrap();
        let mut chan = Channel::new(&schema(), &ArchProfile::X86).unwrap();
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = got.clone();
        chan.subscribe(&subset, &ArchProfile::SPARC_V9_64, None, move |view| {
            assert!(view.get("temp").is_none());
            got2.lock().unwrap().push(view.get("seq").unwrap());
        })
        .unwrap();
        chan.publish_value(&reading(7, 1.0, false)).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![Value::I64(7)]);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mut chan = Channel::new(&schema(), &ArchProfile::X86).unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = count.clone();
        let id = chan
            .subscribe(&schema(), &ArchProfile::X86, None, move |_| {
                c2.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        chan.publish_value(&reading(1, 0.0, false)).unwrap();
        chan.unsubscribe(id).unwrap();
        chan.publish_value(&reading(2, 0.0, false)).unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
        assert_eq!(chan.subscriber_count(), 0);
        assert!(matches!(
            chan.unsubscribe(SubscriptionId(99)),
            Err(ChannelError::UnknownSubscription(_))
        ));
    }

    #[test]
    fn bad_filter_rejected_at_subscribe_time() {
        let mut chan = Channel::new(&schema(), &ArchProfile::X86).unwrap();
        let err = chan
            .subscribe(
                &schema(),
                &ArchProfile::X86,
                Some(Predicate::lt("nope", 1)),
                |_| {},
            )
            .unwrap_err();
        assert!(matches!(
            err,
            ChannelError::Filter(FilterError::UnknownField(_))
        ));
    }
}
