//! Predicates over record fields, compiled to vrisc at run time.
//!
//! A [`Predicate`] references fields of the *incoming wire format* by name;
//! [`FilterProgram::compile`] resolves them against the wire [`Layout`] and
//! generates straight-line comparison code (no per-event interpretation) —
//! the same trick PBIO plays for conversions, applied to event filtering.
//!
//! Comparison semantics (shared by the compiled and interpreted
//! evaluators, and differential-tested):
//!
//! * integer fields compare as their declared signedness;
//! * float fields compare as IEEE `f64` (`<` is false on NaN); equality is
//!   `!(a<b) && !(b<a)`, i.e. numeric equality except that two NaNs compare
//!   equal — a documented artifact of building `==` from `<` in generated
//!   code;
//! * an integer literal against a float field is promoted to `f64`; a float
//!   literal against an integer field promotes the *field* to `f64`;
//! * `char` fields compare as their byte value; `bool` fields accept only
//!   boolean literals and only `eq`/`ne`.

use std::fmt;
use std::sync::Arc;

use pbio_types::arch::Endianness;
use pbio_types::layout::{ConcreteType, Layout};
use pbio_types::prim;
use pbio_vrisc::inst::{abi, Reg, Space};
use pbio_vrisc::opt::optimize;
use pbio_vrisc::{run, Assembler, ExecError, Program};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// A literal to compare a field against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
}

impl From<i64> for Literal {
    fn from(v: i64) -> Literal {
        Literal::Int(v)
    }
}
impl From<i32> for Literal {
    fn from(v: i32) -> Literal {
        Literal::Int(v as i64)
    }
}
impl From<f64> for Literal {
    fn from(v: f64) -> Literal {
        Literal::Float(v)
    }
}
impl From<bool> for Literal {
    fn from(v: bool) -> Literal {
        Literal::Bool(v)
    }
}

/// A boolean expression over scalar record fields.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true (subscribe to everything).
    True,
    /// `field op literal`.
    Cmp {
        /// Field name in the incoming format.
        field: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand side.
        value: Literal,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `field op value` constructor.
    pub fn cmp(field: impl Into<String>, op: CmpOp, value: impl Into<Literal>) -> Predicate {
        Predicate::Cmp {
            field: field.into(),
            op,
            value: value.into(),
        }
    }

    /// `field < value`.
    pub fn lt(field: impl Into<String>, value: impl Into<Literal>) -> Predicate {
        Predicate::cmp(field, CmpOp::Lt, value)
    }
    /// `field <= value`.
    pub fn le(field: impl Into<String>, value: impl Into<Literal>) -> Predicate {
        Predicate::cmp(field, CmpOp::Le, value)
    }
    /// `field > value`.
    pub fn gt(field: impl Into<String>, value: impl Into<Literal>) -> Predicate {
        Predicate::cmp(field, CmpOp::Gt, value)
    }
    /// `field >= value`.
    pub fn ge(field: impl Into<String>, value: impl Into<Literal>) -> Predicate {
        Predicate::cmp(field, CmpOp::Ge, value)
    }
    /// `field == value`.
    pub fn eq(field: impl Into<String>, value: impl Into<Literal>) -> Predicate {
        Predicate::cmp(field, CmpOp::Eq, value)
    }
    /// `field != value`.
    pub fn ne(field: impl Into<String>, value: impl Into<Literal>) -> Predicate {
        Predicate::cmp(field, CmpOp::Ne, value)
    }

    /// `self && other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }
    /// `self || other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
    /// `!self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }
}

/// Errors from filter compilation or evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterError {
    /// The predicate references a field the incoming format lacks.
    UnknownField(String),
    /// The referenced field is not a scalar.
    NotScalar(String),
    /// Literal type is incompatible with the field type.
    TypeMismatch {
        /// Field name.
        field: String,
        /// Explanation.
        reason: String,
    },
    /// Predicate nesting exceeds the register budget.
    TooDeep(usize),
    /// The generated program faulted (truncated record).
    Exec(ExecError),
    /// Malformed serialized predicate (see [`crate::wire`]).
    Wire(String),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::UnknownField(n) => write!(f, "filter references unknown field {n:?}"),
            FilterError::NotScalar(n) => write!(f, "filter field {n:?} is not a scalar"),
            FilterError::TypeMismatch { field, reason } => {
                write!(f, "filter field {field:?}: {reason}")
            }
            FilterError::TooDeep(d) => write!(f, "predicate nesting {d} exceeds register budget"),
            FilterError::Exec(e) => write!(f, "filter execution fault: {e}"),
            FilterError::Wire(msg) => write!(f, "malformed serialized predicate: {msg}"),
        }
    }
}

impl std::error::Error for FilterError {}

impl From<ExecError> for FilterError {
    fn from(e: ExecError) -> FilterError {
        FilterError::Exec(e)
    }
}

/// Maximum predicate nesting depth (bounded by the register file).
pub const MAX_FILTER_DEPTH: usize = 10;

const VAL_BASE: u8 = 8; // result registers, indexed by depth
const FIELD_REG: Reg = Reg(20);
const LIT_REG: Reg = Reg(21);
const TMP_REG: Reg = Reg(22);

/// A predicate compiled against one wire format.
#[derive(Debug, Clone)]
pub struct FilterProgram {
    layout: Arc<Layout>,
    predicate: Predicate,
    program: Program,
}

impl FilterProgram {
    /// Compile `predicate` against the incoming wire layout.
    pub fn compile(
        predicate: Predicate,
        layout: Arc<Layout>,
    ) -> Result<FilterProgram, FilterError> {
        let mut asm = Assembler::new();
        let mut gen = FilterGen {
            asm: &mut asm,
            layout: &layout,
        };
        gen.emit(&predicate, 0)?;
        // Result of the whole predicate is in VAL_BASE; store to Dst[0].
        asm.st(1, abi::DST, 0, Reg(VAL_BASE));
        let program = asm
            .finish()
            .expect("filter codegen produces valid programs");
        let program = optimize(&program);
        Ok(FilterProgram {
            layout,
            predicate,
            program,
        })
    }

    /// Evaluate against one wire record using the generated code.
    pub fn matches(&self, record: &[u8]) -> Result<bool, FilterError> {
        let mut out = [0u8; 1];
        run(&self.program, record, &mut out, &[])?;
        Ok(out[0] != 0)
    }

    /// Evaluate with the interpreted reference semantics (for testing and
    /// as the no-DCG fallback).
    pub fn matches_interpreted(&self, record: &[u8]) -> Result<bool, FilterError> {
        eval_interpreted(&self.predicate, &self.layout, record)
    }

    /// The generated program (inspectable).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The source predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.predicate
    }
}

struct FilterGen<'a> {
    asm: &'a mut Assembler,
    layout: &'a Layout,
}

#[derive(Clone, Copy)]
enum FieldClass {
    Signed(u8),
    Unsigned(u8),
    Float(u8),
    Bool,
}

fn classify(layout: &Layout, name: &str) -> Result<(usize, FieldClass), FilterError> {
    let field = layout
        .field(name)
        .ok_or_else(|| FilterError::UnknownField(name.to_owned()))?;
    let class = match &field.ty {
        ConcreteType::Int {
            bytes,
            signed: true,
        } => FieldClass::Signed(*bytes),
        ConcreteType::Int {
            bytes,
            signed: false,
        } => FieldClass::Unsigned(*bytes),
        ConcreteType::Float { bytes } => FieldClass::Float(*bytes),
        ConcreteType::Char => FieldClass::Unsigned(1),
        ConcreteType::Bool => FieldClass::Bool,
        _ => return Err(FilterError::NotScalar(name.to_owned())),
    };
    Ok((field.offset, class))
}

impl FilterGen<'_> {
    fn emit(&mut self, p: &Predicate, depth: usize) -> Result<(), FilterError> {
        if depth >= MAX_FILTER_DEPTH {
            return Err(FilterError::TooDeep(depth));
        }
        let res = Reg(VAL_BASE + depth as u8);
        match p {
            Predicate::True => self.asm.mov_imm(res, 1),
            Predicate::Cmp { field, op, value } => self.emit_cmp(field, *op, *value, res)?,
            Predicate::And(a, b) => {
                self.emit(a, depth)?;
                self.emit(b, depth + 1)?;
                let rb = Reg(VAL_BASE + depth as u8 + 1);
                self.asm.and(res, res, rb);
            }
            Predicate::Or(a, b) => {
                self.emit(a, depth)?;
                self.emit(b, depth + 1)?;
                let rb = Reg(VAL_BASE + depth as u8 + 1);
                self.asm.or(res, res, rb);
            }
            Predicate::Not(a) => {
                self.emit(a, depth)?;
                self.asm.set_eqz(res, res);
            }
        }
        Ok(())
    }

    fn emit_cmp(
        &mut self,
        field: &str,
        op: CmpOp,
        value: Literal,
        res: Reg,
    ) -> Result<(), FilterError> {
        let (offset, class) = classify(self.layout, field)?;
        let big = self.layout.endianness() == Endianness::Big;

        // Decide the comparison domain.
        enum Domain {
            SignedInt(i64),
            UnsignedInt(u64),
            Float(f64),
        }
        let domain = match (class, value) {
            (FieldClass::Bool, Literal::Bool(b)) => {
                if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                    return Err(FilterError::TypeMismatch {
                        field: field.to_owned(),
                        reason: "booleans support only eq/ne".into(),
                    });
                }
                Domain::UnsignedInt(b as u64)
            }
            (FieldClass::Bool, _) | (_, Literal::Bool(_)) => {
                return Err(FilterError::TypeMismatch {
                    field: field.to_owned(),
                    reason: "boolean literal requires a boolean field (and vice versa)".into(),
                })
            }
            (FieldClass::Float(_), Literal::Int(i)) => Domain::Float(i as f64),
            (FieldClass::Float(_), Literal::Float(x)) => Domain::Float(x),
            (FieldClass::Signed(_), Literal::Float(x))
            | (FieldClass::Unsigned(_), Literal::Float(x)) => Domain::Float(x),
            (FieldClass::Signed(_), Literal::Int(i)) => Domain::SignedInt(i),
            (FieldClass::Unsigned(_), Literal::Int(i)) => {
                if i < 0 {
                    // Unsigned field can never be < 0; fold to constants at
                    // compile time for simplicity: field >= 0 always.
                    let constant = match op {
                        CmpOp::Lt | CmpOp::Le | CmpOp::Eq => 0u64,
                        CmpOp::Gt | CmpOp::Ge | CmpOp::Ne => 1u64,
                    };
                    self.asm.mov_imm(res, constant);
                    return Ok(());
                }
                Domain::UnsignedInt(i as u64)
            }
        };

        // Load the field into FIELD_REG in comparison-domain form.
        let (w, signed, float) = match class {
            FieldClass::Signed(w) => (w, true, false),
            FieldClass::Unsigned(w) => (w, false, false),
            FieldClass::Float(w) => (w, false, true),
            FieldClass::Bool => (1, false, false),
        };
        self.asm
            .ld(w, FIELD_REG, Space::Src, abi::SRC, offset as i32);
        if big && w > 1 {
            self.asm.bswap(w, FIELD_REG);
        }
        if signed && w < 8 {
            self.asm.sext(w, FIELD_REG);
        }
        if float && w == 4 {
            self.asm.cvt_f32_f64(FIELD_REG);
        }
        if matches!(domain, Domain::Float(_)) && !float {
            // Integer field vs float literal: promote the field.
            self.asm.cvt_i64_f64(FIELD_REG);
        }

        match domain {
            Domain::SignedInt(lit) => {
                self.asm.mov_imm(LIT_REG, lit as u64);
                self.int_cmp(op, res, true);
            }
            Domain::UnsignedInt(lit) => {
                self.asm.mov_imm(LIT_REG, lit);
                self.int_cmp(op, res, false);
            }
            Domain::Float(lit) => {
                self.asm.mov_imm(LIT_REG, lit.to_bits());
                self.float_cmp(op, res);
            }
        }
        Ok(())
    }

    fn int_cmp(&mut self, op: CmpOp, res: Reg, signed: bool) {
        let slt = |asm: &mut Assembler, r, a, b| {
            if signed {
                asm.slt(r, a, b)
            } else {
                asm.sltu(r, a, b)
            }
        };
        match op {
            CmpOp::Lt => slt(self.asm, res, FIELD_REG, LIT_REG),
            CmpOp::Gt => slt(self.asm, res, LIT_REG, FIELD_REG),
            CmpOp::Ge => {
                slt(self.asm, res, FIELD_REG, LIT_REG);
                self.asm.set_eqz(res, res);
            }
            CmpOp::Le => {
                slt(self.asm, res, LIT_REG, FIELD_REG);
                self.asm.set_eqz(res, res);
            }
            CmpOp::Eq => {
                self.asm.sub(res, FIELD_REG, LIT_REG);
                self.asm.set_eqz(res, res);
            }
            CmpOp::Ne => {
                self.asm.sub(res, FIELD_REG, LIT_REG);
                self.asm.set_eqz(res, res);
                self.asm.set_eqz(res, res);
            }
        }
    }

    fn float_cmp(&mut self, op: CmpOp, res: Reg) {
        match op {
            CmpOp::Lt => self.asm.flt_f64(res, FIELD_REG, LIT_REG),
            CmpOp::Gt => self.asm.flt_f64(res, LIT_REG, FIELD_REG),
            CmpOp::Ge => {
                self.asm.flt_f64(res, FIELD_REG, LIT_REG);
                self.asm.set_eqz(res, res);
            }
            CmpOp::Le => {
                self.asm.flt_f64(res, LIT_REG, FIELD_REG);
                self.asm.set_eqz(res, res);
            }
            CmpOp::Eq => {
                // !(a<b) && !(b<a)
                self.asm.flt_f64(res, FIELD_REG, LIT_REG);
                self.asm.set_eqz(res, res);
                self.asm.flt_f64(TMP_REG, LIT_REG, FIELD_REG);
                self.asm.set_eqz(TMP_REG, TMP_REG);
                self.asm.and(res, res, TMP_REG);
            }
            CmpOp::Ne => {
                self.asm.flt_f64(res, FIELD_REG, LIT_REG);
                self.asm.flt_f64(TMP_REG, LIT_REG, FIELD_REG);
                self.asm.or(res, res, TMP_REG);
            }
        }
    }
}

/// Interpreted reference evaluation with identical semantics.
pub fn eval_interpreted(
    p: &Predicate,
    layout: &Layout,
    record: &[u8],
) -> Result<bool, FilterError> {
    Ok(match p {
        Predicate::True => true,
        Predicate::And(a, b) => {
            eval_interpreted(a, layout, record)? & eval_interpreted(b, layout, record)?
        }
        Predicate::Or(a, b) => {
            eval_interpreted(a, layout, record)? | eval_interpreted(b, layout, record)?
        }
        Predicate::Not(a) => !eval_interpreted(a, layout, record)?,
        Predicate::Cmp { field, op, value } => {
            let (offset, class) = classify(layout, field)?;
            let endian = layout.endianness();
            let need = match class {
                FieldClass::Signed(w) | FieldClass::Unsigned(w) | FieldClass::Float(w) => {
                    w as usize
                }
                FieldClass::Bool => 1,
            };
            if offset + need > record.len() {
                return Err(FilterError::Exec(ExecError::OutOfBounds {
                    pc: 0,
                    addr: offset as u64,
                    len: need as u64,
                    space: Space::Src,
                    space_len: record.len(),
                }));
            }
            match (class, *value) {
                (FieldClass::Bool, Literal::Bool(b)) => {
                    let v = record[offset] != 0;
                    match op {
                        CmpOp::Eq => v == b,
                        CmpOp::Ne => v != b,
                        _ => {
                            return Err(FilterError::TypeMismatch {
                                field: field.clone(),
                                reason: "booleans support only eq/ne".into(),
                            })
                        }
                    }
                }
                (FieldClass::Bool, _) | (_, Literal::Bool(_)) => {
                    return Err(FilterError::TypeMismatch {
                        field: field.clone(),
                        reason: "boolean literal requires a boolean field (and vice versa)".into(),
                    })
                }
                (FieldClass::Float(w), lit) => {
                    let a = prim::read_float(record, offset, w, endian);
                    let b = match lit {
                        Literal::Int(i) => i as f64,
                        Literal::Float(x) => x,
                        Literal::Bool(_) => unreachable!(),
                    };
                    float_cmp_semantics(op, a, b)
                }
                (FieldClass::Signed(w), Literal::Float(x)) => {
                    let a = prim::read_int(record, offset, w, endian) as f64;
                    float_cmp_semantics(op, a, x)
                }
                (FieldClass::Unsigned(w), Literal::Float(x)) => {
                    // Matches CvtI64F64 in generated code: via i64.
                    let a = (prim::read_uint(record, offset, w, endian) as i64) as f64;
                    float_cmp_semantics(op, a, x)
                }
                (FieldClass::Signed(w), Literal::Int(i)) => {
                    let a = prim::read_int(record, offset, w, endian);
                    int_cmp_semantics(op, a, i)
                }
                (FieldClass::Unsigned(w), Literal::Int(i)) => {
                    let a = prim::read_uint(record, offset, w, endian);
                    if i < 0 {
                        matches!(op, CmpOp::Gt | CmpOp::Ge | CmpOp::Ne)
                    } else {
                        uint_cmp_semantics(op, a, i as u64)
                    }
                }
            }
        }
    })
}

fn int_cmp_semantics(op: &CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

fn uint_cmp_semantics(op: &CmpOp, a: u64, b: u64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

/// Equality built from `<`, as the generated code does: two NaNs compare
/// equal, NaN vs number compares unequal.
// The negated comparisons are the point: `!(b < a)` is NOT `a <= b` when
// NaN is involved, and these semantics must match `FltF64` + `SetEqZ`.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn float_cmp_semantics(op: &CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => !(b < a),
        CmpOp::Gt => b < a,
        CmpOp::Ge => !(a < b),
        CmpOp::Eq => !(a < b) && !(b < a),
        CmpOp::Ne => (a < b) || (b < a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pbio_types::arch::ArchProfile;
    use pbio_types::schema::{AtomType, FieldDecl, Schema};
    use pbio_types::value::{encode_native, RecordValue, Value};

    fn schema() -> Schema {
        Schema::new(
            "event",
            vec![
                FieldDecl::atom("seq", AtomType::CInt),
                FieldDecl::atom("level", AtomType::CUInt),
                FieldDecl::atom("temp", AtomType::CDouble),
                FieldDecl::atom("ratio", AtomType::CFloat),
                FieldDecl::atom("alarm", AtomType::Bool),
                FieldDecl::atom("tag", AtomType::Char),
            ],
        )
        .unwrap()
    }

    fn record(seq: i32, level: u32, temp: f64, alarm: bool) -> RecordValue {
        RecordValue::new()
            .with("seq", seq)
            .with("level", level)
            .with("temp", temp)
            .with("ratio", 0.5f64)
            .with("alarm", alarm)
            .with("tag", Value::Char(b'x'))
    }

    fn check(pred: &Predicate, rv: &RecordValue, expect: bool) {
        for p in [&ArchProfile::SPARC_V8, &ArchProfile::X86_64] {
            let layout = Arc::new(Layout::of(&schema(), p).unwrap());
            let bytes = encode_native(rv, &layout).unwrap();
            let prog = FilterProgram::compile(pred.clone(), layout).unwrap();
            assert_eq!(
                prog.matches(&bytes).unwrap(),
                expect,
                "{pred:?} on {}",
                p.name
            );
            assert_eq!(
                prog.matches_interpreted(&bytes).unwrap(),
                expect,
                "interp {pred:?} on {}",
                p.name
            );
        }
    }

    #[test]
    fn integer_comparisons() {
        let rv = record(5, 2, 20.0, false);
        check(&Predicate::lt("seq", 6), &rv, true);
        check(&Predicate::lt("seq", 5), &rv, false);
        check(&Predicate::le("seq", 5), &rv, true);
        check(&Predicate::gt("seq", 4), &rv, true);
        check(&Predicate::ge("seq", 6), &rv, false);
        check(&Predicate::eq("seq", 5), &rv, true);
        check(&Predicate::ne("seq", 5), &rv, false);
    }

    #[test]
    fn negative_signed_values() {
        let rv = record(-3, 2, 20.0, false);
        check(&Predicate::lt("seq", 0), &rv, true);
        check(&Predicate::gt("seq", -10), &rv, true);
        check(&Predicate::eq("seq", -3), &rv, true);
        check(&Predicate::ge("seq", -3), &rv, true);
    }

    #[test]
    fn unsigned_vs_negative_literal_folds() {
        let rv = record(0, 7, 0.0, false);
        check(&Predicate::lt("level", -1), &rv, false);
        check(&Predicate::gt("level", -1), &rv, true);
        check(&Predicate::ne("level", -1), &rv, true);
        check(&Predicate::eq("level", -1), &rv, false);
    }

    #[test]
    fn float_comparisons_and_promotion() {
        let rv = record(1, 1, 36.75, false);
        check(&Predicate::gt("temp", 36.5), &rv, true);
        check(&Predicate::lt("temp", 36.5), &rv, false);
        check(&Predicate::eq("temp", 36.75), &rv, true);
        // Int literal promoted to float.
        check(&Predicate::ge("temp", 36), &rv, true);
        // Float literal against int field promotes the field.
        check(&Predicate::gt("seq", 0.5), &rv, true);
        check(&Predicate::lt("seq", 0.5), &rv, false);
        // f32 field widened.
        check(&Predicate::eq("ratio", 0.5), &rv, true);
    }

    #[test]
    fn bool_and_char_fields() {
        let rv = record(1, 1, 0.0, true);
        check(&Predicate::eq("alarm", true), &rv, true);
        check(&Predicate::ne("alarm", true), &rv, false);
        check(&Predicate::eq("tag", b'x' as i64), &rv, true);
        check(&Predicate::lt("tag", b'y' as i64), &rv, true);
    }

    #[test]
    fn boolean_combinators() {
        let rv = record(5, 2, 40.0, true);
        let hot = Predicate::gt("temp", 38.0);
        let alarmed = Predicate::eq("alarm", true);
        check(&hot.clone().and(alarmed.clone()), &rv, true);
        check(&hot.clone().and(Predicate::eq("seq", 9)), &rv, false);
        check(&Predicate::eq("seq", 9).or(alarmed), &rv, true);
        check(&hot.clone().not(), &rv, false);
        check(&Predicate::True, &rv, true);
        // Nested combination.
        let complex = Predicate::gt("temp", 100.0)
            .or(Predicate::ge("level", 2).and(Predicate::ne("seq", 0)))
            .not();
        check(&complex, &rv, false);
    }

    #[test]
    fn type_errors_reported() {
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::X86).unwrap());
        assert!(matches!(
            FilterProgram::compile(Predicate::lt("nope", 1), layout.clone()),
            Err(FilterError::UnknownField(_))
        ));
        assert!(matches!(
            FilterProgram::compile(Predicate::lt("alarm", 1), layout.clone()),
            Err(FilterError::TypeMismatch { .. })
        ));
        assert!(matches!(
            FilterProgram::compile(Predicate::eq("seq", true), layout.clone()),
            Err(FilterError::TypeMismatch { .. })
        ));
        assert!(matches!(
            FilterProgram::compile(Predicate::gt("alarm", true), layout),
            Err(FilterError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn too_deep_predicates_rejected() {
        // Depth grows along the *right* spine (left-leaning chains reuse the
        // same result register, like left-to-right expression evaluation).
        let mut p = Predicate::True;
        for _ in 0..MAX_FILTER_DEPTH + 1 {
            p = Predicate::True.and(p);
        }
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::X86).unwrap());
        assert!(matches!(
            FilterProgram::compile(p, layout),
            Err(FilterError::TooDeep(_))
        ));

        // ...whereas an equally long left-leaning chain compiles fine.
        let mut p = Predicate::True;
        for _ in 0..MAX_FILTER_DEPTH + 5 {
            p = p.and(Predicate::True);
        }
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::X86).unwrap());
        assert!(FilterProgram::compile(p, layout).is_ok());
    }

    #[test]
    fn truncated_record_errors() {
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::X86).unwrap());
        let prog = FilterProgram::compile(Predicate::gt("temp", 1.0), layout).unwrap();
        assert!(matches!(prog.matches(&[0u8; 2]), Err(FilterError::Exec(_))));
        assert!(matches!(
            prog.matches_interpreted(&[0u8; 2]),
            Err(FilterError::Exec(_))
        ));
    }

    #[test]
    fn compiled_program_is_small() {
        let layout = Arc::new(Layout::of(&schema(), &ArchProfile::SPARC_V8).unwrap());
        let pred = Predicate::gt("temp", 38.0).and(Predicate::eq("alarm", true));
        let prog = FilterProgram::compile(pred, layout).unwrap();
        assert!(prog.program().len() < 20, "{}", prog.program());
    }
}
