//! Wire encoding for [`Predicate`]s, so a subscriber can ship its filter
//! to a remote event-channel daemon (`pbio-serv`), which compiles it
//! against each publisher's wire format and evaluates it at the source.
//!
//! The encoding is a compact big-endian preorder walk:
//!
//! ```text
//! pred    := 0x00                          -- True
//!          | 0x01 op:u8 lit nlen:u16be name[nlen]
//!          | 0x02 pred pred                -- And
//!          | 0x03 pred pred                -- Or
//!          | 0x04 pred                     -- Not
//! lit     := 0x00 i64be | 0x01 f64bits:u64be | 0x02 bool:u8
//! ```
//!
//! Deserialization is defensive — it parses attacker-visible bytes on the
//! daemon — with strict bounds checks and a nesting-depth limit.

use crate::filter::{CmpOp, FilterError, Literal, Predicate};

/// Maximum nesting depth accepted by [`deserialize_predicate`].
pub const MAX_PREDICATE_DEPTH: usize = 64;

const TAG_TRUE: u8 = 0x00;
const TAG_CMP: u8 = 0x01;
const TAG_AND: u8 = 0x02;
const TAG_OR: u8 = 0x03;
const TAG_NOT: u8 = 0x04;

const LIT_INT: u8 = 0x00;
const LIT_FLOAT: u8 = 0x01;
const LIT_BOOL: u8 = 0x02;

fn op_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Lt => 0,
        CmpOp::Le => 1,
        CmpOp::Gt => 2,
        CmpOp::Ge => 3,
        CmpOp::Eq => 4,
        CmpOp::Ne => 5,
    }
}

fn op_from(code: u8) -> Option<CmpOp> {
    Some(match code {
        0 => CmpOp::Lt,
        1 => CmpOp::Le,
        2 => CmpOp::Gt,
        3 => CmpOp::Ge,
        4 => CmpOp::Eq,
        5 => CmpOp::Ne,
        _ => return None,
    })
}

/// Serialize a predicate to its wire form.
pub fn serialize_predicate(pred: &Predicate) -> Vec<u8> {
    let mut out = Vec::new();
    emit(pred, &mut out);
    out
}

fn emit(pred: &Predicate, out: &mut Vec<u8>) {
    match pred {
        Predicate::True => out.push(TAG_TRUE),
        Predicate::Cmp { field, op, value } => {
            out.push(TAG_CMP);
            out.push(op_code(*op));
            match value {
                Literal::Int(v) => {
                    out.push(LIT_INT);
                    out.extend_from_slice(&v.to_be_bytes());
                }
                Literal::Float(v) => {
                    out.push(LIT_FLOAT);
                    out.extend_from_slice(&v.to_bits().to_be_bytes());
                }
                Literal::Bool(v) => {
                    out.push(LIT_BOOL);
                    out.push(*v as u8);
                }
            }
            debug_assert!(field.len() <= u16::MAX as usize);
            out.extend_from_slice(&(field.len() as u16).to_be_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        Predicate::And(a, b) => {
            out.push(TAG_AND);
            emit(a, out);
            emit(b, out);
        }
        Predicate::Or(a, b) => {
            out.push(TAG_OR);
            emit(a, out);
            emit(b, out);
        }
        Predicate::Not(a) => {
            out.push(TAG_NOT);
            emit(a, out);
        }
    }
}

/// Deserialize a predicate from its wire form. The whole input must be
/// consumed — trailing bytes are an error.
pub fn deserialize_predicate(bytes: &[u8]) -> Result<Predicate, FilterError> {
    let mut pos = 0usize;
    let pred = parse(bytes, &mut pos, 0)?;
    if pos != bytes.len() {
        return Err(FilterError::Wire(format!(
            "{} trailing bytes after predicate",
            bytes.len() - pos
        )));
    }
    Ok(pred)
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], FilterError> {
    let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
    match end {
        Some(end) => {
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        }
        None => Err(FilterError::Wire("truncated predicate".into())),
    }
}

fn parse(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Predicate, FilterError> {
    if depth > MAX_PREDICATE_DEPTH {
        return Err(FilterError::Wire(format!(
            "predicate nesting exceeds {MAX_PREDICATE_DEPTH}"
        )));
    }
    let tag = take(bytes, pos, 1)?[0];
    match tag {
        TAG_TRUE => Ok(Predicate::True),
        TAG_CMP => {
            let op = op_from(take(bytes, pos, 1)?[0])
                .ok_or_else(|| FilterError::Wire("unknown comparison operator".into()))?;
            let value = match take(bytes, pos, 1)?[0] {
                LIT_INT => {
                    let raw: [u8; 8] = take(bytes, pos, 8)?.try_into().unwrap();
                    Literal::Int(i64::from_be_bytes(raw))
                }
                LIT_FLOAT => {
                    let raw: [u8; 8] = take(bytes, pos, 8)?.try_into().unwrap();
                    Literal::Float(f64::from_bits(u64::from_be_bytes(raw)))
                }
                LIT_BOOL => Literal::Bool(take(bytes, pos, 1)?[0] != 0),
                other => {
                    return Err(FilterError::Wire(format!(
                        "unknown literal tag {other:#04x}"
                    )))
                }
            };
            let nlen = {
                let raw: [u8; 2] = take(bytes, pos, 2)?.try_into().unwrap();
                u16::from_be_bytes(raw) as usize
            };
            let field = std::str::from_utf8(take(bytes, pos, nlen)?)
                .map_err(|_| FilterError::Wire("field name is not UTF-8".into()))?
                .to_owned();
            Ok(Predicate::Cmp { field, op, value })
        }
        TAG_AND => Ok(Predicate::And(
            Box::new(parse(bytes, pos, depth + 1)?),
            Box::new(parse(bytes, pos, depth + 1)?),
        )),
        TAG_OR => Ok(Predicate::Or(
            Box::new(parse(bytes, pos, depth + 1)?),
            Box::new(parse(bytes, pos, depth + 1)?),
        )),
        TAG_NOT => Ok(Predicate::Not(Box::new(parse(bytes, pos, depth + 1)?))),
        other => Err(FilterError::Wire(format!(
            "unknown predicate tag {other:#04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let preds = [
            Predicate::True,
            Predicate::gt("temp", 25.5),
            Predicate::eq("alarm", true),
            Predicate::le("seq", 3i64)
                .and(Predicate::ne("level", 0i64))
                .or(Predicate::lt("ratio", -1.25).not()),
        ];
        for p in &preds {
            let bytes = serialize_predicate(p);
            assert_eq!(&deserialize_predicate(&bytes).unwrap(), p, "{p:?}");
        }
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        let good = serialize_predicate(&Predicate::gt("temperature", 1.0));
        for cut in 0..good.len() {
            assert!(deserialize_predicate(&good[..cut]).is_err(), "cut at {cut}");
        }
        for first in [0x05u8, 0x7F, 0xFF] {
            assert!(deserialize_predicate(&[first]).is_err());
        }
        // Trailing bytes rejected.
        let mut extra = good.clone();
        extra.push(0);
        assert!(deserialize_predicate(&extra).is_err());
    }

    #[test]
    fn depth_bomb_is_rejected() {
        let mut bytes = vec![0x04u8; MAX_PREDICATE_DEPTH + 10];
        bytes.push(0x00);
        assert!(matches!(
            deserialize_predicate(&bytes),
            Err(FilterError::Wire(_))
        ));
    }
}
