//! # pbio-chan — event channels with dynamically-compiled filters
//!
//! The paper closes (§5) with the systems its approach enables: "loosely
//! coupled or 'plug-and-play' codes … composed into efficient, distributed
//! applications", and ongoing work to place "selected message operations
//! 'into' the communication co-processors". The authors' follow-on systems
//! (DataExchange, ECho) built exactly this: publish/subscribe **event
//! channels** over PBIO, where each subscriber may attach a *derived
//! channel* — a predicate over record fields, **compiled at run time with
//! the same DCG machinery as the conversions**, and evaluated at the source
//! against the sender's native bytes so that unwanted events are never
//! transmitted or converted.
//!
//! This crate implements that layer on top of `pbio`:
//!
//! * [`filter::Predicate`] — a small boolean expression language over
//!   scalar record fields (`lt`/`le`/`gt`/`ge`/`eq`/`ne`, `and`/`or`/`not`),
//! * [`filter::FilterProgram`] — the predicate compiled to a `pbio-vrisc`
//!   program that reads fields straight out of the *wire-format* record
//!   (byte order and widths handled by the generated code), plus an
//!   interpreted reference evaluator used for differential testing,
//! * [`channel::Channel`] — a single-process event channel: one source
//!   format, many subscribers, each with its own architecture, its own
//!   expected schema (PBIO type extension applies) and an optional filter,
//! * [`dispatch::Fanout`] — the per-event loop (filter gate, counters,
//!   delivery outcomes) shared between [`channel::Channel`] and the
//!   networked daemon in `pbio-serv`,
//! * [`wire`] — a compact serialization for predicates, so a remote
//!   subscriber can ship its filter to the daemon for evaluation at the
//!   source.

#![warn(missing_docs)]

pub mod channel;
pub mod dispatch;
pub mod filter;
pub mod wire;

pub use channel::{Channel, ChannelStats, SubscriptionId};
pub use dispatch::{DeliveryOutcome, DispatchStats, Fanout, FanoutObs, FanoutTraceObs, Subscriber};
pub use filter::{CmpOp, FilterError, FilterProgram, Literal, Predicate};
pub use wire::{deserialize_predicate, serialize_predicate};
