//! Thread → CPU pinning for reactor shards — raw `sched_setaffinity(2)`,
//! no libc.
//!
//! A sharded event loop gets most of its cache locality for free: every
//! connection's decode buffer, outbound queue, and frame scratch live on
//! exactly one reactor thread. Pinning each reactor to its own CPU
//! finishes the job — the thread stops migrating, so those structures
//! stop bouncing between L2s. This module is the mechanism; policy
//! (which shard goes where, and whether to pin at all) belongs to the
//! daemon's config.
//!
//! Like [`crate::poll`], the Linux path issues the syscall directly so
//! the crate stays dependency-free, and every other platform gets an
//! honest "unsupported" error the caller can treat as "run unpinned".

use std::io;

/// Pin the *calling* thread to `cpu` (a zero-based logical CPU index).
///
/// Returns `Ok(())` when the kernel accepted the mask. Errors are
/// non-fatal by design: an out-of-range CPU, a restrictive cgroup
/// cpuset, or a non-Linux host all surface as `Err`, and the right
/// caller response is to keep running unpinned (and report `-1` in
/// topology snapshots).
pub fn pin_current_thread(cpu: usize) -> io::Result<()> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        sys::setaffinity(cpu)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = cpu;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "thread pinning is only implemented on Linux",
        ))
    }
}

// ---------------------------------------------------------------------------
// Linux sched_setaffinity(2) backend — raw syscalls, no libc.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::io;

    #[cfg(target_arch = "x86_64")]
    const SYS_SCHED_SETAFFINITY: isize = 203;
    #[cfg(target_arch = "aarch64")]
    const SYS_SCHED_SETAFFINITY: isize = 122;

    /// Bits in the affinity mask we pass (1024 CPUs, glibc's default
    /// `cpu_set_t` width — comfortably above any host this runs on).
    const MASK_BITS: usize = 1024;
    const MASK_WORDS: usize = MASK_BITS / 64;

    pub fn setaffinity(cpu: usize) -> io::Result<()> {
        if cpu >= MASK_BITS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "CPU index exceeds the affinity mask width",
            ));
        }
        let mut mask = [0u64; MASK_WORDS];
        mask[cpu / 64] = 1u64 << (cpu % 64);
        // pid 0 = the calling thread.
        let ret = sys_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr());
        if ret < 0 {
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(())
    }

    #[cfg(target_arch = "x86_64")]
    fn sys_setaffinity(pid: usize, len: usize, mask: *const u64) -> isize {
        let ret: isize;
        // SAFETY: sched_setaffinity only *reads* `len` bytes of the mask
        // (a live stack array); no memory is written by the kernel.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
                in("rdi") pid,
                in("rsi") len,
                in("rdx") mask,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn sys_setaffinity(pid: usize, len: usize, mask: *const u64) -> isize {
        let ret: isize;
        // SAFETY: as above; aarch64 passes the syscall number in x8.
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_SCHED_SETAFFINITY,
                inlateout("x0") pid => ret,
                in("x1") len,
                in("x2") mask,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn pinning_to_cpu_zero_succeeds() {
        // CPU 0 always exists; the call must take effect without error.
        pin_current_thread(0).expect("pin to CPU 0");
    }

    #[test]
    fn pinning_to_an_absurd_cpu_fails_cleanly() {
        assert!(pin_current_thread(1 << 20).is_err());
    }
}
