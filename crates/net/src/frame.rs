//! Session-frame codec for networked PBIO services.
//!
//! `pbio-serv` (and anything else that runs PBIO over a socket) speaks a
//! stream of fixed-header frames, one level *below* the PBIO record stream:
//! PBIO's own format/data messages ride inside frame bodies, while the
//! frame header carries session-protocol concerns (frame kind plus two
//! 32-bit arguments whose meaning the kind defines — channel ids, format
//! ids, status codes).
//!
//! ```text
//! frame := kind:u8  a:u32be  b:u32be  len:u32be  crc:u32be  body[len]
//! ```
//!
//! `crc` is a CRC-32 (IEEE) over the 13 header bytes that precede it plus
//! the body. The stream has no other redundancy, so without it a single
//! flipped bit in flight silently delivers a *wrong record* — the checksum
//! turns every corruption into a typed, counted [`FrameError::Corrupt`]
//! instead. It detects all single-byte errors and all burst errors up to
//! 32 bits, which covers the failure modes a TCP-borne stream (bad NIC,
//! proxy truncation, in-memory scribbles) realistically produces.
//!
//! Frame bodies are [`WireBuf`]s — shared immutable buffers — so a frame
//! queued to many connections is one allocation plus refcount bumps.
//! Writes are vectored: the header lives on the stack and goes out in the
//! same `writev` as the (borrowed) body, and [`write_frames`] coalesces a
//! batch of queued frames into ~one syscall.
//!
//! The codec is transport-agnostic over `std::io` streams and is
//! timeout-aware: with a read timeout armed on the underlying socket,
//! [`read_frame`] returns [`FrameError::Timeout`] *only* when it fires
//! before the first byte of a frame. Once a header byte has arrived the
//! codec keeps reading until the frame completes — senders write frames
//! atomically, so a partially received frame means bytes in flight, not an
//! idle peer — which keeps the stream from desynchronizing on a timeout.

use std::fmt;
use std::io::{self, IoSlice, Read, Write};

use crate::buf::WireBuf;
use crate::metrics::net_metrics;

/// Size of the fixed frame header (kind + a + b + len + crc).
pub const FRAME_HEADER_SIZE: usize = 17;

/// Bytes of the header covered by the checksum (everything before it).
const CRC_PREFIX: usize = 13;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven.

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Feed `bytes` into a running CRC-32 state (start from
/// [`CRC_INIT`], finish with [`crc32_finish`]).
#[inline]
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// Initial CRC-32 state.
pub const CRC_INIT: u32 = 0xFFFF_FFFF;

/// Finalize a CRC-32 state into the checksum value.
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    !state
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_finish(crc32_update(CRC_INIT, bytes))
}

/// Upper bound on a frame body; larger lengths are rejected as corrupt
/// (protects the reader from allocating on a garbage length field).
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// Most frames [`write_frames`] coalesces into one vectored write. Two
/// iovecs per frame (header + body) keeps the batch within a typical
/// `IOV_MAX` by a wide margin while still amortizing the syscall.
pub const MAX_WRITE_BATCH: usize = 16;

/// One session frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind; meanings are assigned by the protocol layer above.
    pub kind: u8,
    /// First kind-defined argument.
    pub a: u32,
    /// Second kind-defined argument.
    pub b: u32,
    /// Frame body — shared, so queueing one frame to many peers is
    /// refcount bumps, not copies.
    pub body: WireBuf,
}

impl Frame {
    /// A frame with an empty body.
    pub fn control(kind: u8, a: u32, b: u32) -> Frame {
        Frame {
            kind,
            a,
            b,
            body: WireBuf::empty(),
        }
    }

    /// A frame with a body.
    pub fn with_body(kind: u8, a: u32, b: u32, body: impl Into<WireBuf>) -> Frame {
        Frame {
            kind,
            a,
            b,
            body: body.into(),
        }
    }
}

/// The fixed-size part of a frame, decoded. [`read_frame_header`] +
/// [`read_frame_body`] let callers place the body in storage of their
/// choosing (a pooled scratch buffer, a reused receive buffer) instead of
/// a fresh allocation per frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Frame kind.
    pub kind: u8,
    /// First kind-defined argument.
    pub a: u32,
    /// Second kind-defined argument.
    pub b: u32,
    /// Body length in bytes (already validated against [`MAX_FRAME_BODY`]).
    pub len: usize,
    /// Checksum announced by the sender (CRC-32 over the 13 preceding
    /// header bytes plus the body); verified when the body is read.
    pub crc: u32,
}

/// Errors surfaced by the frame codec.
#[derive(Debug)]
pub enum FrameError {
    /// The socket's read timeout fired while waiting for a frame to begin.
    Timeout,
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
    /// The header announced a body longer than [`MAX_FRAME_BODY`].
    TooLarge(usize),
    /// The frame's checksum did not match its header + body bytes: the
    /// stream was corrupted in flight (or desynchronized). The frame must
    /// not be interpreted.
    Corrupt {
        /// Checksum the sender announced.
        expected: u32,
        /// Checksum of the bytes actually received.
        actual: u32,
    },
    /// Connection truncated mid-frame, or any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Timeout => write!(f, "timed out waiting for a frame"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME_BODY} byte limit"
                )
            }
            FrameError::Corrupt { expected, actual } => {
                write!(
                    f,
                    "frame checksum mismatch (announced {expected:#010x}, computed {actual:#010x})"
                )
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::Timeout,
            _ => FrameError::Io(e),
        }
    }
}

/// True for the error kinds a read timeout produces (platform-dependent).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fill `buf` completely, retrying through timeouts and interrupts.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Encode a frame header (checksum included) into a stack buffer.
fn encode_header_raw(kind: u8, a: u32, b: u32, body: &[u8]) -> [u8; FRAME_HEADER_SIZE] {
    let mut h = [0u8; FRAME_HEADER_SIZE];
    h[0] = kind;
    h[1..5].copy_from_slice(&a.to_be_bytes());
    h[5..9].copy_from_slice(&b.to_be_bytes());
    h[9..13].copy_from_slice(&(body.len() as u32).to_be_bytes());
    let crc = crc32_finish(crc32_update(crc32_update(CRC_INIT, &h[..CRC_PREFIX]), body));
    h[13..17].copy_from_slice(&crc.to_be_bytes());
    h
}

/// Encode `frame`'s header into a stack buffer.
fn encode_header(frame: &Frame) -> [u8; FRAME_HEADER_SIZE] {
    encode_header_raw(frame.kind, frame.a, frame.b, &frame.body)
}

/// Drive `write_vectored` until every buffer is fully written (the stable
/// subset of `Write::write_all_vectored`). Degrades gracefully on writers
/// whose `write_vectored` only takes the first buffer per call.
fn write_all_vectored(w: &mut impl Write, mut bufs: &mut [IoSlice<'_>]) -> io::Result<()> {
    // Trim leading empty slices so the remaining-length check is exact.
    IoSlice::advance_slices(&mut bufs, 0);
    while !bufs.is_empty() {
        match w.write_vectored(bufs) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame batch",
                ))
            }
            Ok(n) => IoSlice::advance_slices(&mut bufs, n),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Serialize `frame` to `w`: one vectored write of a stack header plus the
/// borrowed body — no per-frame allocation, and still atomic at frame
/// granularity when each frame is written under the same lock.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    write_frame_raw(w, frame.kind, frame.a, frame.b, &frame.body)
}

/// [`write_frame`] without a `Frame`: send-side hot paths (a client
/// publishing its own native bytes) borrow the body straight from the
/// caller, so a send allocates nothing at all.
pub fn write_frame_raw(
    w: &mut impl Write,
    kind: u8,
    a: u32,
    b: u32,
    body: &[u8],
) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_BODY);
    let h = encode_header_raw(kind, a, b, body);
    let mut slices = [IoSlice::new(&h), IoSlice::new(body)];
    write_all_vectored(w, &mut slices)?;
    let m = net_metrics();
    m.writes.inc();
    m.frames_out.inc();
    m.bytes_out.add((FRAME_HEADER_SIZE + body.len()) as u64);
    Ok(())
}

/// Write a batch of frames, coalescing up to [`MAX_WRITE_BATCH`] frames
/// (headers on the stack, bodies borrowed) into each vectored write — a
/// hot connection pays ~one syscall per batch instead of per frame.
/// Returns the total number of bytes written.
pub fn write_frames(w: &mut impl Write, frames: &[Frame]) -> io::Result<usize> {
    let m = net_metrics();
    let mut total = 0;
    for chunk in frames.chunks(MAX_WRITE_BATCH) {
        let mut headers = [[0u8; FRAME_HEADER_SIZE]; MAX_WRITE_BATCH];
        for (h, frame) in headers.iter_mut().zip(chunk) {
            debug_assert!(frame.body.len() <= MAX_FRAME_BODY);
            *h = encode_header(frame);
        }
        let mut slices = [IoSlice::new(&[]); 2 * MAX_WRITE_BATCH];
        let mut n = 0;
        let mut chunk_bytes = 0;
        for (h, frame) in headers.iter().zip(chunk) {
            slices[n] = IoSlice::new(h);
            n += 1;
            if !frame.body.is_empty() {
                slices[n] = IoSlice::new(&frame.body);
                n += 1;
            }
            chunk_bytes += FRAME_HEADER_SIZE + frame.body.len();
        }
        write_all_vectored(w, &mut slices[..n])?;
        total += chunk_bytes;
        m.writes.inc();
        m.write_batch.record(chunk.len() as u64);
        m.frames_out.add(chunk.len() as u64);
        m.bytes_out.add(chunk_bytes as u64);
    }
    Ok(total)
}

/// Read and decode one frame header from `r`.
///
/// With a read timeout armed on `r`, returns [`FrameError::Timeout`] if it
/// fires before a frame begins, and [`FrameError::Closed`] on EOF at a
/// frame boundary. Once the first byte has arrived the frame is read to
/// completion, so a mid-header EOF is an [`FrameError::Io`] error.
pub fn read_frame_header(r: &mut impl Read) -> Result<FrameHeader, FrameError> {
    // First byte separately: a timeout or EOF *here* is an idle peer or a
    // clean close, not a protocol error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(FrameError::Timeout),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; FRAME_HEADER_SIZE - 1];
    read_full(r, &mut rest)?;
    let a = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let b = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
    let len = u32::from_be_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
    let crc = u32::from_be_bytes([rest[12], rest[13], rest[14], rest[15]]);
    if len > MAX_FRAME_BODY {
        return Err(FrameError::TooLarge(len));
    }
    let m = net_metrics();
    m.frames_in.inc();
    m.bytes_in.add(FRAME_HEADER_SIZE as u64);
    Ok(FrameHeader {
        kind: first[0],
        a,
        b,
        len,
        crc,
    })
}

/// Running CRC of a decoded header's checksummed prefix (the 13 bytes
/// before the `crc` field), reconstructed from its fields.
fn header_prefix_crc(header: &FrameHeader) -> u32 {
    let mut h = [0u8; CRC_PREFIX];
    h[0] = header.kind;
    h[1..5].copy_from_slice(&header.a.to_be_bytes());
    h[5..9].copy_from_slice(&header.b.to_be_bytes());
    h[9..13].copy_from_slice(&(header.len as u32).to_be_bytes());
    crc32_update(CRC_INIT, &h)
}

/// Read and throw away the `len`-byte body that follows a
/// [`read_frame_header`] — the recovery path for a frame the session
/// refuses to buffer (e.g. one whose announced length exceeds the
/// receiver's budget): the stream stays in sync without the receiver
/// ever allocating proportionally to the hostile length field.
///
/// Timeouts are retried only while the drain makes progress. A long run
/// of zero-progress timeouts means the announced bytes are not coming —
/// a desynced stream (the length field itself was damaged) or a stalled
/// hostile peer — and the drain gives up with [`FrameError::Timeout`] so
/// the caller can tear the connection down instead of blocking forever.
pub fn discard_frame_body(r: &mut impl Read, len: usize) -> Result<(), FrameError> {
    const STALL_LIMIT: u32 = 20;
    let mut chunk = [0u8; 4096];
    let mut remaining = len;
    let mut stalled = 0u32;
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        match r.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => {
                remaining -= n;
                stalled = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                stalled += 1;
                if stalled >= STALL_LIMIT {
                    return Err(FrameError::Timeout);
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    net_metrics().bytes_in.add(len as u64);
    Ok(())
}

/// Read the body announced by `header` (from [`read_frame_header`]) into
/// `buf` (cleared, then filled to exactly `header.len`; its capacity is
/// reused), then verify the frame's checksum.
///
/// The length is re-validated against [`MAX_FRAME_BODY`] here, *before*
/// any allocation, so the bound holds even for callers that construct a
/// [`FrameHeader`] themselves rather than going through
/// [`read_frame_header`] — a hostile 4-byte length field can never drive
/// a proportional allocation.
///
/// The body is read through `Read::take` + `read_to_end` into the cleared
/// vector, so reused capacity is *not* redundantly zero-filled before being
/// overwritten — on the steady-state receive path that removed a memset of
/// every frame body. Timeouts and interrupts mid-body are retried just as
/// [`read_full`] would: partial data read before the error stays appended
/// and the `take` limit accounts for it.
pub fn read_frame_body(
    r: &mut impl Read,
    header: &FrameHeader,
    buf: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let len = header.len;
    if len > MAX_FRAME_BODY {
        return Err(FrameError::TooLarge(len));
    }
    buf.clear();
    if len > 0 {
        // +1 so the final length-check read in `read_to_end` lands in spare
        // capacity instead of triggering an amortized (doubling) grow when
        // the capacity is exactly `len`.
        buf.reserve(len + 1);
        let mut take = Read::take(r, len as u64);
        loop {
            match take.read_to_end(buf) {
                Ok(_) if buf.len() >= len => break,
                Ok(_) => {
                    // `read_to_end` returned before the limit: inner EOF.
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    )));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
    let m = net_metrics();
    m.bytes_in.add(len as u64);
    let actual = crc32_finish(crc32_update(header_prefix_crc(header), buf));
    if actual != header.crc {
        m.frames_corrupt.inc();
        return Err(FrameError::Corrupt {
            expected: header.crc,
            actual,
        });
    }
    Ok(())
}

/// Read one frame, placing its body in `buf` — the steady-state receive
/// path: callers that cycle `buf` through a pool (or just keep it) decode
/// an unbounded frame stream with no per-frame allocation.
pub fn read_frame_into(r: &mut impl Read, buf: &mut Vec<u8>) -> Result<FrameHeader, FrameError> {
    let header = read_frame_header(r)?;
    read_frame_body(r, &header, buf)?;
    Ok(header)
}

/// Read one frame from `r` into an owned [`Frame`] (allocates a fresh
/// shared body per call; hot receive loops use [`read_frame_into`]).
///
/// Timeout semantics are those of [`read_frame_header`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let header = read_frame_header(r)?;
    let mut body = Vec::new();
    read_frame_body(r, &header, &mut body)?;
    Ok(Frame {
        kind: header.kind,
        a: header.a,
        b: header.b,
        body: WireBuf::from(body),
    })
}

// ---------------------------------------------------------------------------
// Nonblocking-path codec: incremental decode + resumable batched writes.

/// Read-side scratch size for [`FrameDecoder::fill`] — one `read(2)` pulls
/// up to this much off the socket per call.
const DECODE_SCRATCH: usize = 64 * 1024;

/// Accumulation threshold past which the decoder compacts its buffer by
/// memmoving unconsumed bytes to the front rather than letting the
/// consumed prefix grow without bound.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// Incremental frame decoder for nonblocking streams.
///
/// The blocking read path ([`read_frame`]) can simply block until a frame
/// completes; a readiness loop cannot — a wakeup delivers *some* bytes,
/// which may be half a header, three frames and a tail, or the middle of
/// a body. `FrameDecoder` owns that reassembly: [`fill`](Self::fill)
/// moves whatever the socket has into an internal buffer, and
/// [`next`](Self::next) yields complete frames from it until it runs dry.
///
/// Error recovery mirrors the blocking path's session semantics: a
/// [`FrameError::Corrupt`] frame is consumed (the stream stays in sync —
/// framing is still trustworthy, the CRC just failed) and decoding
/// continues with the next frame; a [`FrameError::TooLarge`] header arms
/// an internal skip state so the announced body is discarded as it
/// arrives without ever being buffered — the nonblocking equivalent of
/// [`discard_frame_body`].
#[derive(Debug)]
pub struct FrameDecoder {
    scratch: Box<[u8]>,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    pos: usize,
    /// Remaining body bytes of an oversized frame to discard on arrival.
    skip: u64,
}

impl Default for FrameDecoder {
    fn default() -> FrameDecoder {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A fresh decoder (one 64 KiB read scratch, empty reassembly buffer).
    pub fn new() -> FrameDecoder {
        FrameDecoder {
            scratch: vec![0u8; DECODE_SCRATCH].into_boxed_slice(),
            buf: Vec::new(),
            pos: 0,
            skip: 0,
        }
    }

    /// Bytes buffered but not yet consumed by [`next`](Self::next).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pull one `read`'s worth of bytes from `r` into the decoder.
    ///
    /// Returns the byte count on success — `Ok(0)` means EOF. A
    /// `WouldBlock` error propagates (the readiness loop's "drained for
    /// now" signal); `Interrupted` is retried internally. Bytes owed to
    /// an armed oversized-frame skip are discarded here and still count
    /// toward the return value.
    pub fn fill(&mut self, r: &mut impl Read) -> io::Result<usize> {
        let n = loop {
            match r.read(&mut self.scratch) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        if n == 0 {
            return Ok(0);
        }
        let mut fresh = &self.scratch[..n];
        if self.skip > 0 {
            let discard = (self.skip).min(fresh.len() as u64) as usize;
            self.skip -= discard as u64;
            net_metrics().bytes_in.add(discard as u64);
            fresh = &fresh[discard..];
        }
        if !fresh.is_empty() {
            if self.pos == self.buf.len() {
                self.buf.clear();
                self.pos = 0;
            } else if self.pos >= COMPACT_THRESHOLD {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            self.buf.extend_from_slice(fresh);
        }
        Ok(n)
    }

    /// Decode the next complete frame out of the buffered bytes.
    ///
    /// `Ok(None)` means more bytes are needed ([`fill`](Self::fill)
    /// again on the next readiness event). `Ok(Some(_))` borrows the body
    /// from the decoder's buffer — process it before the next call.
    /// `Err(Corrupt)`/`Err(TooLarge)` consume the offending frame and
    /// leave the decoder in sync for the one after it.
    // Not an Iterator: items borrow from the decoder's buffer (lending),
    // and errors are in-band — the signature cannot be `Option<Item>`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(FrameHeader, &[u8])>, FrameError> {
        let avail = self.buf.len() - self.pos;
        if avail < FRAME_HEADER_SIZE {
            return Ok(None);
        }
        let h = &self.buf[self.pos..self.pos + FRAME_HEADER_SIZE];
        let header = FrameHeader {
            kind: h[0],
            a: u32::from_be_bytes([h[1], h[2], h[3], h[4]]),
            b: u32::from_be_bytes([h[5], h[6], h[7], h[8]]),
            len: u32::from_be_bytes([h[9], h[10], h[11], h[12]]) as usize,
            crc: u32::from_be_bytes([h[13], h[14], h[15], h[16]]),
        };
        if header.len > MAX_FRAME_BODY {
            // Consume the header plus any body bytes already buffered and
            // arm the skip for the rest, so a hostile length never drives
            // a proportional allocation (same bound as read_frame_body).
            let buffered_body = (avail - FRAME_HEADER_SIZE).min(header.len);
            self.pos += FRAME_HEADER_SIZE + buffered_body;
            self.skip = (header.len - buffered_body) as u64;
            net_metrics()
                .bytes_in
                .add((FRAME_HEADER_SIZE + buffered_body) as u64);
            return Err(FrameError::TooLarge(header.len));
        }
        if avail < FRAME_HEADER_SIZE + header.len {
            return Ok(None);
        }
        let body_start = self.pos + FRAME_HEADER_SIZE;
        let actual = crc32_finish(crc32_update(
            header_prefix_crc(&header),
            &self.buf[body_start..body_start + header.len],
        ));
        self.pos += FRAME_HEADER_SIZE + header.len;
        let m = net_metrics();
        m.frames_in.inc();
        m.bytes_in.add((FRAME_HEADER_SIZE + header.len) as u64);
        if actual != header.crc {
            m.frames_corrupt.inc();
            return Err(FrameError::Corrupt {
                expected: header.crc,
                actual,
            });
        }
        Ok(Some((
            header,
            &self.buf[body_start..body_start + header.len],
        )))
    }
}

/// What one [`write_frames_nonblocking`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushProgress {
    /// Frames written to completion — the caller drains exactly this many
    /// from the front of its pending queue.
    pub frames_done: usize,
    /// Bytes written by this call (partial frames included).
    pub bytes: usize,
    /// The socket refused further bytes (`WouldBlock`): the caller should
    /// arm writable interest and resume on the next wakeup.
    pub blocked: bool,
}

/// Batched vectored writes for a nonblocking stream, resumable across
/// `WouldBlock` at any byte boundary.
///
/// `cursor` is the connection's partial-write state: how many bytes of
/// `frames[0]` a previous call already put on the wire (`0` for a fresh
/// queue). On return it holds the same for the new front of the queue —
/// after the caller drains `frames_done` frames. Headers are recomputed
/// deterministically from the frame on resume, so only the byte offset
/// needs remembering, never header bytes.
///
/// The batching shape matches [`write_frames`]: up to [`MAX_WRITE_BATCH`]
/// frames (stack headers + borrowed bodies) per `writev`.
pub fn write_frames_nonblocking(
    w: &mut impl Write,
    frames: &[Frame],
    cursor: &mut usize,
) -> io::Result<FlushProgress> {
    let m = net_metrics();
    let mut done = 0usize;
    let mut bytes = 0usize;
    let mut skip = *cursor;
    let mut blocked = false;
    while done < frames.len() {
        let chunk = &frames[done..(done + MAX_WRITE_BATCH).min(frames.len())];
        debug_assert!(skip < FRAME_HEADER_SIZE + chunk[0].body.len());
        let mut headers = [[0u8; FRAME_HEADER_SIZE]; MAX_WRITE_BATCH];
        for (h, frame) in headers.iter_mut().zip(chunk) {
            debug_assert!(frame.body.len() <= MAX_FRAME_BODY);
            *h = encode_header(frame);
        }
        let mut slices = [IoSlice::new(&[]); 2 * MAX_WRITE_BATCH];
        let mut n = 0;
        for (i, (h, frame)) in headers.iter().zip(chunk).enumerate() {
            // The in-progress front frame enters the iovec list at its
            // resume offset, which may fall inside the header or the body.
            let (hdr, body): (&[u8], &[u8]) = if i == 0 && skip > 0 {
                if skip < FRAME_HEADER_SIZE {
                    (&h[skip..], &frame.body)
                } else {
                    (&[], &frame.body[skip - FRAME_HEADER_SIZE..])
                }
            } else {
                (&h[..], &frame.body)
            };
            if !hdr.is_empty() {
                slices[n] = IoSlice::new(hdr);
                n += 1;
            }
            if !body.is_empty() {
                slices[n] = IoSlice::new(body);
                n += 1;
            }
        }
        let written = match w.write_vectored(&slices[..n]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame batch",
                ))
            }
            Ok(written) => written,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                blocked = true;
                break;
            }
            Err(e) => return Err(e),
        };
        bytes += written;
        m.writes.inc();
        m.bytes_out.add(written as u64);
        // Attribute the written bytes to frames: those fully covered are
        // finished; the remainder becomes the new front frame's cursor.
        let mut rem = written;
        let mut fin = 0usize;
        for (i, frame) in chunk.iter().enumerate() {
            let left = FRAME_HEADER_SIZE + frame.body.len() - if i == 0 { skip } else { 0 };
            if rem < left {
                break;
            }
            rem -= left;
            fin += 1;
        }
        if fin > 0 {
            m.frames_out.add(fin as u64);
            m.write_batch.record(fin as u64);
        }
        skip = if fin == 0 { skip + rem } else { rem };
        done += fin;
    }
    *cursor = skip;
    Ok(FlushProgress {
        frames_done: done,
        bytes,
        blocked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let frames = [
            Frame::control(0x10, 7, 9),
            Frame::with_body(0x22, 0, u32::MAX, b"payload".to_vec()),
            Frame::with_body(0x01, 1, 2, vec![0u8; 100_000]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = Cursor::new(wire);
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn batched_write_is_byte_identical_to_sequential() {
        // More frames than one batch, mixed control/body, so the chunking
        // and empty-body iovec elision paths are all exercised.
        let mut frames = Vec::new();
        for i in 0..(MAX_WRITE_BATCH as u32 * 2 + 3) {
            if i % 3 == 0 {
                frames.push(Frame::control(0x30, i, i * 2));
            } else {
                frames.push(Frame::with_body(0x31, i, 0, vec![i as u8; i as usize]));
            }
        }
        let mut sequential = Vec::new();
        for f in &frames {
            write_frame(&mut sequential, f).unwrap();
        }
        let mut batched = Vec::new();
        let n = write_frames(&mut batched, &frames).unwrap();
        assert_eq!(batched, sequential);
        assert_eq!(n, batched.len());
        // And the batch decodes back to the same frames.
        let mut r = Cursor::new(batched);
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
    }

    #[test]
    fn write_vectored_partial_writes_are_completed() {
        /// Writes at most 5 bytes of the first buffer per call.
        struct Trickle(Vec<u8>);
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(5);
                self.0.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let frame = Frame::with_body(0x11, 1, 2, b"a somewhat longer body".to_vec());
        let mut t = Trickle(Vec::new());
        write_frame(&mut t, &frame).unwrap();
        let mut r = Cursor::new(t.0);
        assert_eq!(read_frame(&mut r).unwrap(), frame);
    }

    #[test]
    fn read_into_reuses_the_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::with_body(0x21, 3, 4, vec![7u8; 64])).unwrap();
        write_frame(&mut wire, &Frame::with_body(0x22, 5, 6, vec![9u8; 8])).unwrap();
        let mut r = Cursor::new(wire);
        let mut buf = Vec::new();
        let h1 = read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!((h1.kind, h1.a, h1.b, h1.len), (0x21, 3, 4, 64));
        assert_eq!(buf, vec![7u8; 64]);
        let cap = buf.capacity();
        let h2 = read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!((h2.kind, h2.len), (0x22, 8));
        assert_eq!(buf, vec![9u8; 8]);
        assert_eq!(buf.capacity(), cap, "smaller body reuses the allocation");
    }

    #[test]
    fn body_read_retries_through_mid_body_timeouts() {
        /// Yields the wire three bytes at a time with a timeout between
        /// every chunk, as a socket under load would.
        struct Stutter {
            data: Vec<u8>,
            pos: usize,
            ready: bool,
        }
        impl Read for Stutter {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if !self.ready {
                    self.ready = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
                }
                self.ready = false;
                let n = out.len().min(3).min(self.data.len() - self.pos);
                out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let frame = Frame::with_body(0x21, 1, 2, (0u8..100).collect::<Vec<u8>>());
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut r = Stutter {
            data: wire,
            pos: 0,
            ready: false,
        };
        let mut buf = Vec::new();
        // The header's first byte surfaces the timeout (idle peer)…
        assert!(matches!(
            read_frame_into(&mut r, &mut buf),
            Err(FrameError::Timeout)
        ));
        // …after which the frame reads to completion through every
        // mid-header and mid-body timeout.
        let h = read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!((h.kind, h.len), (0x21, 100));
        assert_eq!(buf, (0u8..100).collect::<Vec<u8>>());
    }

    #[test]
    fn body_reads_leave_no_stale_bytes() {
        // A big body then a small one through the same buffer: the second
        // read must end at exactly `len` with the first frame's bytes gone.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::with_body(0x21, 0, 0, vec![0xAAu8; 300])).unwrap();
        write_frame(&mut wire, &Frame::with_body(0x22, 0, 0, vec![0x55u8; 5])).unwrap();
        write_frame(&mut wire, &Frame::control(0x23, 0, 0)).unwrap();
        let mut r = Cursor::new(wire);
        let mut buf = Vec::new();
        read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!(buf, vec![0xAAu8; 300]);
        read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!(buf, vec![0x55u8; 5]);
        let h = read_frame_into(&mut r, &mut buf).unwrap();
        assert_eq!(h.len, 0);
        assert!(buf.is_empty(), "zero-length body clears the buffer");
    }

    #[test]
    fn oversized_length_rejected() {
        let mut wire = Vec::new();
        wire.push(0x10);
        wire.extend_from_slice(&0u32.to_be_bytes());
        wire.extend_from_slice(&0u32.to_be_bytes());
        wire.extend_from_slice(&(MAX_FRAME_BODY as u32 + 1).to_be_bytes());
        wire.extend_from_slice(&0u32.to_be_bytes());
        let mut r = Cursor::new(wire);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn oversized_length_rejected_before_any_allocation_in_body_read() {
        // A caller that hand-builds a header cannot drive an allocation:
        // the bound is re-checked inside `read_frame_body` itself.
        let header = FrameHeader {
            kind: 0x10,
            a: 0,
            b: 0,
            len: usize::MAX,
            crc: 0,
        };
        let mut buf = Vec::new();
        let mut r = Cursor::new(Vec::new());
        assert!(matches!(
            read_frame_body(&mut r, &header, &mut buf),
            Err(FrameError::TooLarge(_))
        ));
        assert_eq!(buf.capacity(), 0, "rejected before reserving");
    }

    #[test]
    fn corrupted_byte_is_detected_anywhere_in_the_frame() {
        let frame = Frame::with_body(0x21, 7, 9, (0u8..64).collect::<Vec<u8>>());
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        // Flip one byte at every offset: header corruption surfaces as
        // Corrupt or TooLarge (when the length field inflates past the
        // cursor's EOF, as Io); body corruption is always Corrupt. No
        // offset ever yields a silently different frame.
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x40;
            let mut r = Cursor::new(bad);
            match read_frame(&mut r) {
                Ok(f) => panic!("corruption at byte {i} went undetected: {f:?}"),
                Err(
                    FrameError::Corrupt { .. }
                    | FrameError::TooLarge(_)
                    | FrameError::Io(_)
                    | FrameError::Closed,
                ) => {}
                Err(e) => panic!("unexpected error for corruption at byte {i}: {e}"),
            }
        }
        // The pristine wire still decodes.
        let mut r = Cursor::new(wire);
        assert_eq!(read_frame(&mut r).unwrap(), frame);
    }

    #[test]
    fn discard_skips_the_body_and_resyncs() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::with_body(0x21, 1, 2, vec![0xEE; 5000])).unwrap();
        write_frame(&mut wire, &Frame::control(0x22, 3, 4)).unwrap();
        let mut r = Cursor::new(wire);
        let h = read_frame_header(&mut r).unwrap();
        assert_eq!(h.len, 5000);
        discard_frame_body(&mut r, h.len).unwrap();
        let next = read_frame(&mut r).unwrap();
        assert_eq!((next.kind, next.a, next.b), (0x22, 3, 4));
    }

    #[test]
    fn truncated_mid_frame_is_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::with_body(0x11, 1, 2, b"abcdef".to_vec())).unwrap();
        wire.truncate(wire.len() - 3);
        let mut r = Cursor::new(wire);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn timeout_maps_to_typed_error() {
        struct TimeoutReader;
        impl Read for TimeoutReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "timeout",
                ))
            }
        }
        assert!(matches!(
            read_frame(&mut TimeoutReader),
            Err(FrameError::Timeout)
        ));
    }

    /// Yields at most `step` bytes per read — a socket delivering a frame
    /// stream in arbitrary fragments.
    struct Dribble {
        data: Vec<u8>,
        pos: usize,
        step: usize,
    }
    impl Read for Dribble {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            let n = out.len().min(self.step).min(self.data.len() - self.pos);
            out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn decoder_reassembles_frames_from_any_fragmentation() {
        let frames = [
            Frame::control(0x10, 7, 9),
            Frame::with_body(0x21, 1, 2, (0u8..200).collect::<Vec<u8>>()),
            Frame::with_body(0x22, 3, 4, b"tail".to_vec()),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        // Worst case: one byte per read. Every header and body boundary
        // is split.
        for step in [1usize, 3, 16, 4096] {
            let mut r = Dribble {
                data: wire.clone(),
                pos: 0,
                step,
            };
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            loop {
                let n = dec.fill(&mut r).unwrap();
                while let Some((h, body)) = dec.next().unwrap() {
                    got.push(Frame::with_body(h.kind, h.a, h.b, body.to_vec()));
                }
                if n == 0 {
                    break;
                }
            }
            assert_eq!(got.as_slice(), &frames, "fragmentation step {step}");
            assert_eq!(dec.buffered(), 0);
        }
    }

    #[test]
    fn decoder_consumes_a_corrupt_frame_and_stays_in_sync() {
        let good = Frame::with_body(0x21, 1, 2, vec![0xAB; 64]);
        let tail = Frame::control(0x22, 5, 6);
        let mut wire = Vec::new();
        write_frame(&mut wire, &good).unwrap();
        let corrupt_at = FRAME_HEADER_SIZE + 10;
        wire[corrupt_at] ^= 0x40;
        write_frame(&mut wire, &tail).unwrap();
        let mut dec = FrameDecoder::new();
        let mut r = Cursor::new(wire);
        dec.fill(&mut r).unwrap();
        assert!(matches!(dec.next(), Err(FrameError::Corrupt { .. })));
        let (h, _) = dec.next().unwrap().expect("frame after the corrupt one");
        assert_eq!((h.kind, h.a, h.b), (0x22, 5, 6));
    }

    #[test]
    fn decoder_skips_an_oversized_body_without_buffering_it() {
        let announced = MAX_FRAME_BODY + 1;
        let mut bad_header = Vec::new();
        bad_header.push(0x21u8);
        bad_header.extend_from_slice(&1u32.to_be_bytes());
        bad_header.extend_from_slice(&2u32.to_be_bytes());
        bad_header.extend_from_slice(&(announced as u32).to_be_bytes());
        bad_header.extend_from_slice(&0u32.to_be_bytes());
        let mut tail_wire = Vec::new();
        write_frame(&mut tail_wire, &Frame::control(0x22, 7, 8)).unwrap();
        // Oversized header, then the announced body (produced lazily, so
        // the test itself never allocates 64 MB), then a valid frame.
        let mut r = Cursor::new(bad_header)
            .chain(io::repeat(0xEE).take(announced as u64))
            .chain(Cursor::new(tail_wire));
        let mut dec = FrameDecoder::new();
        let mut saw_too_large = false;
        let mut tail = None;
        loop {
            let n = dec.fill(&mut r).unwrap();
            loop {
                match dec.next() {
                    Ok(Some((h, _))) => tail = Some(h),
                    Ok(None) => break,
                    Err(FrameError::TooLarge(len)) => {
                        assert_eq!(len, announced);
                        saw_too_large = true;
                    }
                    Err(e) => panic!("unexpected decode error: {e}"),
                }
            }
            assert!(
                dec.buffered() <= DECODE_SCRATCH,
                "oversized body must not accumulate"
            );
            if n == 0 {
                break;
            }
        }
        assert!(saw_too_large);
        let h = tail.expect("frame after the oversized one");
        assert_eq!((h.kind, h.a, h.b), (0x22, 7, 8));
    }

    #[test]
    fn nonblocking_writes_resume_byte_identically_through_wouldblock() {
        /// Accepts at most 5 bytes per write and interleaves WouldBlock
        /// between every acceptance — a congested nonblocking socket.
        struct Choked {
            out: Vec<u8>,
            open: bool,
        }
        impl Write for Choked {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if !self.open {
                    self.open = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                self.open = false;
                let n = buf.len().min(5);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut frames = Vec::new();
        for i in 0..(MAX_WRITE_BATCH as u32 + 5) {
            if i % 4 == 0 {
                frames.push(Frame::control(0x30, i, i));
            } else {
                frames.push(Frame::with_body(0x31, i, 0, vec![i as u8; 3 + i as usize]));
            }
        }
        let mut sequential = Vec::new();
        for f in &frames {
            write_frame(&mut sequential, f).unwrap();
        }
        let mut w = Choked {
            out: Vec::new(),
            open: false,
        };
        let mut pending: Vec<Frame> = frames.clone();
        let mut cursor = 0usize;
        let mut spins = 0;
        while !pending.is_empty() {
            let p = write_frames_nonblocking(&mut w, &pending, &mut cursor).unwrap();
            pending.drain(..p.frames_done);
            if pending.is_empty() {
                assert_eq!(cursor, 0, "cursor must clear with the queue");
            }
            spins += 1;
            assert!(spins < 10_000, "writer failed to make progress");
        }
        assert_eq!(w.out, sequential);
    }

    #[test]
    fn nonblocking_write_progress_accounting_is_exact() {
        let frames = vec![
            Frame::with_body(0x21, 1, 2, vec![7u8; 40]),
            Frame::control(0x22, 3, 4),
        ];
        let mut out = Vec::new();
        let mut cursor = 0usize;
        let p = write_frames_nonblocking(&mut out, &frames, &mut cursor).unwrap();
        assert_eq!(p.frames_done, 2);
        assert!(!p.blocked);
        assert_eq!(cursor, 0);
        assert_eq!(p.bytes, out.len());
        let mut r = Cursor::new(out);
        assert_eq!(read_frame(&mut r).unwrap(), frames[0]);
        assert_eq!(read_frame(&mut r).unwrap(), frames[1]);
    }
}
