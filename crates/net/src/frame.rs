//! Session-frame codec for networked PBIO services.
//!
//! `pbio-serv` (and anything else that runs PBIO over a socket) speaks a
//! stream of fixed-header frames, one level *below* the PBIO record stream:
//! PBIO's own format/data messages ride inside frame bodies, while the
//! frame header carries session-protocol concerns (frame kind plus two
//! 32-bit arguments whose meaning the kind defines — channel ids, format
//! ids, status codes).
//!
//! ```text
//! frame := kind:u8  a:u32be  b:u32be  len:u32be  body[len]
//! ```
//!
//! The codec is transport-agnostic over `std::io` streams and is
//! timeout-aware: with a read timeout armed on the underlying socket,
//! [`read_frame`] returns [`FrameError::Timeout`] *only* when it fires
//! before the first byte of a frame. Once a header byte has arrived the
//! codec keeps reading until the frame completes — senders write frames
//! atomically, so a partially received frame means bytes in flight, not an
//! idle peer — which keeps the stream from desynchronizing on a timeout.

use std::fmt;
use std::io::{self, Read, Write};

/// Size of the fixed frame header.
pub const FRAME_HEADER_SIZE: usize = 13;

/// Upper bound on a frame body; larger lengths are rejected as corrupt
/// (protects the reader from allocating on a garbage length field).
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// One session frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind; meanings are assigned by the protocol layer above.
    pub kind: u8,
    /// First kind-defined argument.
    pub a: u32,
    /// Second kind-defined argument.
    pub b: u32,
    /// Frame body.
    pub body: Vec<u8>,
}

impl Frame {
    /// A frame with an empty body.
    pub fn control(kind: u8, a: u32, b: u32) -> Frame {
        Frame {
            kind,
            a,
            b,
            body: Vec::new(),
        }
    }

    /// A frame with a body.
    pub fn with_body(kind: u8, a: u32, b: u32, body: Vec<u8>) -> Frame {
        Frame { kind, a, b, body }
    }
}

/// Errors surfaced by the frame codec.
#[derive(Debug)]
pub enum FrameError {
    /// The socket's read timeout fired while waiting for a frame to begin.
    Timeout,
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
    /// The header announced a body longer than [`MAX_FRAME_BODY`].
    TooLarge(usize),
    /// Connection truncated mid-frame, or any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Timeout => write!(f, "timed out waiting for a frame"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge(n) => {
                write!(
                    f,
                    "frame body of {n} bytes exceeds the {MAX_FRAME_BODY} byte limit"
                )
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::Timeout,
            _ => FrameError::Io(e),
        }
    }
}

/// True for the error kinds a read timeout produces (platform-dependent).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fill `buf` completely, retrying through timeouts and interrupts.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted || is_timeout(&e) => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Serialize `frame` to `w` as one atomic write (single `write_all` of a
/// pre-assembled buffer, so concurrent writers interleave only at frame
/// granularity when each frame is written under the same lock).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    debug_assert!(frame.body.len() <= MAX_FRAME_BODY);
    let mut buf = Vec::with_capacity(FRAME_HEADER_SIZE + frame.body.len());
    buf.push(frame.kind);
    buf.extend_from_slice(&frame.a.to_be_bytes());
    buf.extend_from_slice(&frame.b.to_be_bytes());
    buf.extend_from_slice(&(frame.body.len() as u32).to_be_bytes());
    buf.extend_from_slice(&frame.body);
    w.write_all(&buf)
}

/// Read one frame from `r`.
///
/// With a read timeout armed on `r`, returns [`FrameError::Timeout`] if it
/// fires before a frame begins, and [`FrameError::Closed`] on EOF at a
/// frame boundary. Mid-frame EOF is an [`FrameError::Io`] error.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    // First byte separately: a timeout or EOF *here* is an idle peer or a
    // clean close, not a protocol error.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(FrameError::Timeout),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; FRAME_HEADER_SIZE - 1];
    read_full(r, &mut rest)?;
    let a = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
    let b = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
    let len = u32::from_be_bytes([rest[8], rest[9], rest[10], rest[11]]) as usize;
    if len > MAX_FRAME_BODY {
        return Err(FrameError::TooLarge(len));
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body)?;
    Ok(Frame {
        kind: first[0],
        a,
        b,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let frames = [
            Frame::control(0x10, 7, 9),
            Frame::with_body(0x22, 0, u32::MAX, b"payload".to_vec()),
            Frame::with_body(0x01, 1, 2, vec![0u8; 100_000]),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = Cursor::new(wire);
        for f in &frames {
            assert_eq!(&read_frame(&mut r).unwrap(), f);
        }
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut wire = Vec::new();
        wire.push(0x10);
        wire.extend_from_slice(&0u32.to_be_bytes());
        wire.extend_from_slice(&0u32.to_be_bytes());
        wire.extend_from_slice(&(MAX_FRAME_BODY as u32 + 1).to_be_bytes());
        let mut r = Cursor::new(wire);
        assert!(matches!(read_frame(&mut r), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn truncated_mid_frame_is_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::with_body(0x11, 1, 2, b"abcdef".to_vec())).unwrap();
        wire.truncate(wire.len() - 3);
        let mut r = Cursor::new(wire);
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }

    #[test]
    fn timeout_maps_to_typed_error() {
        struct TimeoutReader;
        impl Read for TimeoutReader {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "timeout",
                ))
            }
        }
        assert!(matches!(
            read_frame(&mut TimeoutReader),
            Err(FrameError::Timeout)
        ));
    }
}
