//! Shared immutable wire buffers.
//!
//! A published event is fanned out to every subscriber on a channel. If
//! each delivery owns its bytes, one event costs one allocation *per
//! subscriber* — exactly the copy regime NDR exists to avoid. [`WireBuf`]
//! makes the body of a frame a reference-counted, immutable byte slice:
//! materialized once when the event enters the daemon, then handed to any
//! number of outbound queues by bumping a refcount. Cloning and
//! sub-slicing never touch the bytes.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer (a view into an
/// `Arc<[u8]>`).
///
/// `WireBuf` dereferences to `&[u8]`, so read-side code is unchanged;
/// producers choose between [`WireBuf::from`] (takes ownership of an
/// existing allocation) and [`WireBuf::copy_from`] (one copy into fresh
/// shared storage — the *single* allocation a published event pays).
#[derive(Clone)]
pub struct WireBuf {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl WireBuf {
    /// The empty buffer. Does not allocate.
    pub fn empty() -> WireBuf {
        WireBuf {
            data: Arc::from([] as [u8; 0]),
            start: 0,
            len: 0,
        }
    }

    /// Copy `bytes` into fresh shared storage (one allocation).
    pub fn copy_from(bytes: &[u8]) -> WireBuf {
        let data: Arc<[u8]> = Arc::from(bytes);
        WireBuf {
            start: 0,
            len: data.len(),
            data,
        }
    }

    /// A sub-slice sharing this buffer's storage. No bytes move.
    ///
    /// # Panics
    /// Panics if `offset + len` exceeds this buffer's length.
    pub fn slice(&self, offset: usize, len: usize) -> WireBuf {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "slice {offset}+{len} out of bounds of {} byte WireBuf",
            self.len
        );
        WireBuf {
            data: self.data.clone(),
            start: self.start + offset,
            len,
        }
    }

    /// Length of the view in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of the view.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// True when both views share storage *and* window — a refcount bump
    /// produced one from the other (diagnostic, used in tests).
    pub fn ptr_eq(a: &WireBuf, b: &WireBuf) -> bool {
        Arc::ptr_eq(&a.data, &b.data) && a.start == b.start && a.len == b.len
    }
}

impl Deref for WireBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for WireBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for WireBuf {
    /// Take ownership of `v`'s bytes. (`Arc<[u8]>` stores its refcounts
    /// inline, so this moves the bytes into one fresh shared allocation.)
    fn from(v: Vec<u8>) -> WireBuf {
        let data: Arc<[u8]> = Arc::from(v);
        WireBuf {
            start: 0,
            len: data.len(),
            data,
        }
    }
}

impl From<Arc<[u8]>> for WireBuf {
    /// Share an existing `Arc<[u8]>` — a refcount bump, no allocation.
    fn from(data: Arc<[u8]>) -> WireBuf {
        WireBuf {
            start: 0,
            len: data.len(),
            data,
        }
    }
}

impl From<&[u8]> for WireBuf {
    fn from(bytes: &[u8]) -> WireBuf {
        WireBuf::copy_from(bytes)
    }
}

impl<const N: usize> From<&[u8; N]> for WireBuf {
    fn from(bytes: &[u8; N]) -> WireBuf {
        WireBuf::copy_from(bytes)
    }
}

impl PartialEq for WireBuf {
    fn eq(&self, other: &WireBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for WireBuf {}

impl PartialEq<[u8]> for WireBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for WireBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for WireBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireBuf({} bytes", self.len)?;
        if self.start != 0 || self.len != self.data.len() {
            write!(
                f,
                " @{}..{} of {}",
                self.start,
                self.start + self.len,
                self.data.len()
            )?;
        }
        write!(f, ")")
    }
}

impl Default for WireBuf {
    fn default() -> WireBuf {
        WireBuf::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = WireBuf::copy_from(b"hello world");
        let b = a.clone();
        assert!(WireBuf::ptr_eq(&a, &b));
        assert_eq!(b, *b"hello world".as_slice());
    }

    #[test]
    fn slice_is_a_view() {
        let a = WireBuf::from(b"hello world".to_vec());
        let hello = a.slice(0, 5);
        let world = a.slice(6, 5);
        assert_eq!(&hello[..], b"hello");
        assert_eq!(&world[..], b"world");
        assert!(!WireBuf::ptr_eq(&a, &world));
        // Sub-slicing a sub-slice composes offsets.
        assert_eq!(&world.slice(1, 3)[..], b"orl");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        WireBuf::copy_from(b"abc").slice(1, 3);
    }

    #[test]
    fn empty_and_equality() {
        assert!(WireBuf::empty().is_empty());
        assert_eq!(WireBuf::empty(), WireBuf::from(Vec::new()));
        assert_eq!(WireBuf::copy_from(b"ab"), b"ab".to_vec());
        assert_ne!(WireBuf::copy_from(b"ab"), WireBuf::copy_from(b"ba"));
    }

    #[test]
    fn from_arc_does_not_copy() {
        let arc: Arc<[u8]> = Arc::from(b"meta".as_slice());
        let buf = WireBuf::from(arc.clone());
        assert_eq!(Arc::strong_count(&arc), 2);
        assert_eq!(&buf[..], b"meta");
    }
}
