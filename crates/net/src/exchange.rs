//! The exchange measurement harness.
//!
//! Produces the encode / network / decode breakdowns of Figures 1 and 5:
//! encode and decode closures are *measured* (real CPU time on the host,
//! averaged over iterations); the network leg is *modeled* from the wire
//! size through a [`SimLink`]. This mirrors how the paper reports its
//! numbers: CPU components measured on each machine, network component a
//! size-dependent term.

use std::time::{Duration, Instant};

use crate::link::SimLink;

/// One direction of a message exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LegCosts {
    /// Sender-side CPU time to produce the wire bytes.
    pub encode: Duration,
    /// Modeled network transfer time for the wire bytes.
    pub network: Duration,
    /// Receiver-side CPU time to make the data usable.
    pub decode: Duration,
    /// Bytes that crossed the wire.
    pub wire_bytes: usize,
}

impl LegCosts {
    /// Total leg time.
    pub fn total(&self) -> Duration {
        self.encode + self.network + self.decode
    }

    /// Fraction of the leg spent on encode+decode CPU work.
    pub fn cpu_fraction(&self) -> f64 {
        let t = self.total();
        if t.is_zero() {
            return 0.0;
        }
        (self.encode + self.decode).as_secs_f64() / t.as_secs_f64()
    }
}

/// A full round trip (request leg + reply leg).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTripCosts {
    /// The A→B leg.
    pub forward: LegCosts,
    /// The B→A leg.
    pub back: LegCosts,
}

impl RoundTripCosts {
    /// Total round-trip time.
    pub fn total(&self) -> Duration {
        self.forward.total() + self.back.total()
    }

    /// Combined CPU (encode+decode) fraction — the paper's "typically 66%"
    /// observation for MPI (§4.1).
    pub fn cpu_fraction(&self) -> f64 {
        let t = self.total();
        if t.is_zero() {
            return 0.0;
        }
        let cpu = self.forward.encode + self.forward.decode + self.back.encode + self.back.decode;
        cpu.as_secs_f64() / t.as_secs_f64()
    }
}

/// Average wall time of `f` over `iters` runs (at least one).
pub fn time_avg<F: FnMut()>(mut f: F, iters: u32) -> Duration {
    let iters = iters.max(1);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

/// Measure one leg: `encode` runs on the "sender" (returns the wire byte
/// count), `decode` on the "receiver". Each is averaged over `iters`
/// iterations; the network term comes from `link`.
pub fn measure_leg<E, D>(link: &SimLink, mut encode: E, decode: D, iters: u32) -> LegCosts
where
    E: FnMut() -> usize,
    D: FnMut(),
{
    let mut wire_bytes = 0usize;
    let encode_t = {
        let iters = iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            wire_bytes = encode();
        }
        start.elapsed() / iters
    };
    let decode_t = time_avg(decode, iters);
    LegCosts {
        encode: encode_t,
        network: link.transfer_time(wire_bytes),
        decode: decode_t,
        wire_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leg_composition() {
        let link = SimLink {
            latency: Duration::from_micros(100),
            byte_time: Duration::from_nanos(100),
        };
        let leg = measure_leg(&link, || 1000, || {}, 10);
        assert_eq!(leg.wire_bytes, 1000);
        assert_eq!(leg.network, Duration::from_micros(200));
        assert!(leg.total() >= leg.network);
    }

    #[test]
    fn cpu_fraction_bounds() {
        let leg = LegCosts {
            encode: Duration::from_micros(30),
            network: Duration::from_micros(40),
            decode: Duration::from_micros(30),
            wire_bytes: 0,
        };
        assert!((leg.cpu_fraction() - 0.6).abs() < 1e-9);
        let rt = RoundTripCosts {
            forward: leg,
            back: leg,
        };
        assert!((rt.cpu_fraction() - 0.6).abs() < 1e-9);
        assert_eq!(rt.total(), Duration::from_micros(200));
    }

    #[test]
    fn time_avg_measures_something() {
        let d = time_avg(
            || {
                std::hint::black_box((0..1000).sum::<u64>());
            },
            100,
        );
        assert!(d > Duration::ZERO);
    }
}
