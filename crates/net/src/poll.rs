//! A thin, dependency-free readiness-polling abstraction.
//!
//! The serv daemon's reactor threads need one primitive the standard
//! library does not expose: "sleep until any of these sockets is readable
//! or writable, or until someone wakes me". This module provides it as a
//! [`Poller`] trait with two implementations, selected at runtime by
//! [`poller()`]:
//!
//! * On Linux (x86_64 / aarch64) a real `ppoll(2)` backend, invoked as a
//!   raw syscall through `core::arch::asm!` — no `libc`, no new crates.
//!   The registered set is rebuilt as a `pollfd` array per call, which
//!   makes interest changes free and keeps the implementation small; at
//!   the few thousand descriptors a single reactor shard owns, the
//!   kernel-side scan is not the bottleneck (the daemon shards
//!   connections across reactors precisely so no single set grows
//!   unboundedly).
//! * Everywhere else, a portable fallback that sleeps in short slices and
//!   reports every registered source as ready. Spurious readiness is safe
//!   by construction: reactor handlers treat `WouldBlock` as "nothing to
//!   do", so the fallback costs latency and idle wakeups, never
//!   correctness.
//!
//! Cross-thread wakeups come from a [`Waker`]: on the syscall backend a
//! self-connected nonblocking UDP socket whose descriptor is part of every
//! poll set (one datagram = one wakeup, drained inside [`Poller::poll`]),
//! on the fallback a flag + condvar. A `Waker` is cheaply cloneable and
//! may be fired from any thread.

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The OS-level identity of a pollable source. On Unix this is the raw
/// file descriptor; elsewhere it is an opaque integer the fallback poller
/// carries but never interprets.
#[cfg(unix)]
pub type RawSource = std::os::unix::io::RawFd;
/// The OS-level identity of a pollable source (non-Unix placeholder).
#[cfg(not(unix))]
pub type RawSource = i32;

/// The raw readiness source of a socket-like object.
#[cfg(unix)]
pub fn source_of(s: &impl std::os::unix::io::AsRawFd) -> RawSource {
    s.as_raw_fd()
}

/// The raw readiness source of a socket-like object (non-Unix: sources
/// are opaque and the fallback poller reports them all ready anyway).
#[cfg(not(unix))]
pub fn source_of<T>(_s: &T) -> RawSource {
    0
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the source has bytes (or EOF / an error) to read.
    pub readable: bool,
    /// Wake when the source can accept bytes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Readable and writable — armed while a partial write is pending.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::poll`]. Error and hang-up
/// conditions are folded into `readable`/`writable` (the handler's next
/// read or write surfaces the actual error), the convention every
/// readiness-based loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the source was registered with.
    pub token: usize,
    /// The source is readable (or in an error/EOF state a read reveals).
    pub readable: bool,
    /// The source is writable (or in an error state a write reveals).
    pub writable: bool,
}

/// A readiness selector over a set of registered sources.
///
/// Not thread-safe by design: each reactor owns its poller outright.
/// Cross-thread signalling goes through the paired [`Waker`] instead.
pub trait Poller: Send {
    /// Add `src` to the set under `token`. Registering an already-present
    /// source updates its token and interest.
    fn register(&mut self, src: RawSource, token: usize, interest: Interest);
    /// Change the interest (and token) of an already-registered source.
    fn modify(&mut self, src: RawSource, token: usize, interest: Interest);
    /// Remove `src` from the set. Unknown sources are ignored.
    fn deregister(&mut self, src: RawSource);
    /// Wait up to `timeout` for readiness, appending events to `events`
    /// (which the caller clears). Returns early — possibly with zero
    /// events — when the paired [`Waker`] fires. Interrupted waits
    /// (`EINTR`) are reported as an empty, successful poll.
    fn poll(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()>;
}

/// Cross-thread wakeup handle paired with one [`Poller`]: firing it makes
/// the poller's current (or next) [`Poller::poll`] return promptly.
/// Cloneable, cheap, and safe to fire from any thread; coalescing
/// multiple wakes into one poll return is allowed and expected.
#[derive(Clone)]
pub struct Waker(WakerInner);

#[derive(Clone)]
enum WakerInner {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Udp(Arc<std::net::UdpSocket>),
    #[allow(dead_code)]
    Flag(Arc<(Mutex<bool>, Condvar)>),
}

impl Waker {
    /// Wake the paired poller. Never blocks; errors (e.g. a full socket
    /// buffer, which already implies a pending wakeup) are swallowed.
    pub fn wake(&self) {
        match &self.0 {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            WakerInner::Udp(sock) => {
                let _ = sock.send(&[1u8]);
            }
            WakerInner::Flag(flag) => {
                let (lock, cond) = &**flag;
                *lock.lock().unwrap_or_else(|p| p.into_inner()) = true;
                cond.notify_all();
            }
        }
    }
}

/// Build the best poller available on this platform, paired with its
/// [`Waker`].
pub fn poller() -> io::Result<(Box<dyn Poller>, Waker)> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        let (p, w) = SysPoller::new()?;
        Ok((Box::new(p), w))
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let (p, w) = FallbackPoller::new();
        Ok((Box::new(p), w))
    }
}

// ---------------------------------------------------------------------------
// Linux ppoll(2) backend — raw syscalls, no libc.

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::io;
    use std::time::Duration;

    /// `struct pollfd` as the kernel ABI defines it.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLPRI: i16 = 0x002;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    const EINTR: isize = 4;

    #[cfg(target_arch = "x86_64")]
    const SYS_PPOLL: isize = 271;
    #[cfg(target_arch = "aarch64")]
    const SYS_PPOLL: isize = 73;

    /// Raw `ppoll(2)`. The kernel may update the timespec in place (the
    /// raw syscall writes back remaining time), which is why a fresh one
    /// is built per call.
    pub fn ppoll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
        let mut ts = Timespec {
            sec: timeout.as_secs().min(i64::MAX as u64) as i64,
            nsec: timeout.subsec_nanos() as i64,
        };
        let ret = sys_ppoll(fds.as_mut_ptr(), fds.len(), &mut ts);
        if ret < 0 {
            if -ret == EINTR {
                return Ok(0);
            }
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as usize)
    }

    #[cfg(target_arch = "x86_64")]
    fn sys_ppoll(fds: *mut PollFd, nfds: usize, ts: *mut Timespec) -> isize {
        let ret: isize;
        // SAFETY: ppoll reads `nfds` pollfd structs from `fds` (a live
        // mutable slice), writes their `revents`, and may write back the
        // timespec; a null sigmask (r10) leaves the signal mask alone.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") SYS_PPOLL => ret,
                in("rdi") fds,
                in("rsi") nfds,
                in("rdx") ts,
                in("r10") 0usize,
                in("r8") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn sys_ppoll(fds: *mut PollFd, nfds: usize, ts: *mut Timespec) -> isize {
        let ret: isize;
        // SAFETY: as above; aarch64 passes the syscall number in x8 and
        // arguments in x0..x4 (sigmask and its size are null/zero).
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") SYS_PPOLL,
                inlateout("x0") fds => ret,
                in("x1") nfds,
                in("x2") ts,
                in("x3") 0usize,
                in("x4") 0usize,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
struct SysPoller {
    /// Registered sources: fd → (token, interest). Order is irrelevant —
    /// the pollfd array is rebuilt per call.
    registered: std::collections::HashMap<RawSource, (usize, Interest)>,
    /// Reused pollfd array (slot 0 is always the waker socket).
    fds: Vec<sys::PollFd>,
    /// Tokens parallel to `fds`, rebuilt with it.
    tokens: Vec<usize>,
    /// Receive side of the self-connected waker socket.
    wake_rx: Arc<std::net::UdpSocket>,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl SysPoller {
    fn new() -> io::Result<(SysPoller, Waker)> {
        // A UDP socket connected to itself: the cheapest portable
        // self-pipe. One datagram per wake, drained on poll return.
        let sock = std::net::UdpSocket::bind("127.0.0.1:0")?;
        sock.connect(sock.local_addr()?)?;
        sock.set_nonblocking(true)?;
        let sock = Arc::new(sock);
        let poller = SysPoller {
            registered: std::collections::HashMap::new(),
            fds: Vec::new(),
            tokens: Vec::new(),
            wake_rx: sock.clone(),
        };
        Ok((poller, Waker(WakerInner::Udp(sock))))
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl Poller for SysPoller {
    fn register(&mut self, src: RawSource, token: usize, interest: Interest) {
        self.registered.insert(src, (token, interest));
    }

    fn modify(&mut self, src: RawSource, token: usize, interest: Interest) {
        self.registered.insert(src, (token, interest));
    }

    fn deregister(&mut self, src: RawSource) {
        self.registered.remove(&src);
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        use sys::*;
        self.fds.clear();
        self.tokens.clear();
        self.fds.push(PollFd {
            fd: source_of(&*self.wake_rx),
            events: POLLIN,
            revents: 0,
        });
        self.tokens.push(usize::MAX);
        for (&fd, &(token, interest)) in &self.registered {
            let mut ev = 0i16;
            if interest.readable {
                ev |= POLLIN;
            }
            if interest.writable {
                ev |= POLLOUT;
            }
            self.fds.push(PollFd {
                fd,
                events: ev,
                revents: 0,
            });
            self.tokens.push(token);
        }
        let n = ppoll(&mut self.fds, timeout)?;
        if n == 0 {
            return Ok(());
        }
        // Waker datagrams are drained here: the wakeup's purpose is the
        // poll return itself.
        if self.fds[0].revents != 0 {
            let mut sink = [0u8; 64];
            while self.wake_rx.recv(&mut sink).is_ok() {}
        }
        for (pfd, &token) in self.fds.iter().zip(&self.tokens).skip(1) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            // ERR/HUP/NVAL surface as readable *and* writable so whichever
            // operation the connection is blocked on runs and observes the
            // failure directly.
            let fail = r & (POLLERR | POLLHUP | POLLNVAL) != 0;
            events.push(Event {
                token,
                readable: r & (POLLIN | POLLPRI) != 0 || fail,
                writable: r & POLLOUT != 0 || fail,
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Portable fallback: timed sleep + report-everything-ready.

/// Longest slice the fallback sleeps before spuriously reporting
/// readiness — its worst-case added latency per event.
#[allow(dead_code)]
const FALLBACK_SLICE: Duration = Duration::from_millis(2);

#[allow(dead_code)]
struct FallbackPoller {
    registered: Vec<(RawSource, usize, Interest)>,
    flag: Arc<(Mutex<bool>, Condvar)>,
}

#[allow(dead_code)]
impl FallbackPoller {
    fn new() -> (FallbackPoller, Waker) {
        let flag = Arc::new((Mutex::new(false), Condvar::new()));
        (
            FallbackPoller {
                registered: Vec::new(),
                flag: flag.clone(),
            },
            Waker(WakerInner::Flag(flag)),
        )
    }
}

impl Poller for FallbackPoller {
    fn register(&mut self, src: RawSource, token: usize, interest: Interest) {
        self.deregister(src);
        self.registered.push((src, token, interest));
    }

    fn modify(&mut self, src: RawSource, token: usize, interest: Interest) {
        self.register(src, token, interest);
    }

    fn deregister(&mut self, src: RawSource) {
        self.registered.retain(|&(s, _, _)| s != src);
    }

    fn poll(&mut self, events: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        let (lock, cond) = &*self.flag;
        let mut woken = lock.lock().unwrap_or_else(|p| p.into_inner());
        if !*woken && !self.registered.is_empty() {
            // Readiness is unknowable here, so trade latency for
            // correctness: nap briefly, then report everything ready and
            // let WouldBlock sort out the truth.
            let (g, _) = cond
                .wait_timeout(woken, timeout.min(FALLBACK_SLICE))
                .unwrap_or_else(|p| p.into_inner());
            woken = g;
        } else if !*woken {
            let (g, _) = cond
                .wait_timeout(woken, timeout)
                .unwrap_or_else(|p| p.into_inner());
            woken = g;
        }
        *woken = false;
        drop(woken);
        for &(_, token, interest) in &self.registered {
            events.push(Event {
                token,
                readable: interest.readable,
                writable: interest.writable,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    /// Readiness round trip on whatever backend this platform builds:
    /// writable when the send buffer is empty, readable once bytes land.
    #[test]
    fn tcp_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let (mut p, _waker) = poller().unwrap();
        p.register(source_of(&server), 7, Interest::READ_WRITE);

        let mut events = Vec::new();
        p.poll(&mut events, Duration::from_millis(500)).unwrap();
        let ev = events.iter().find(|e| e.token == 7).expect("event");
        assert!(ev.writable, "fresh socket has send-buffer space");

        let mut tx = client.try_clone().unwrap();
        tx.write_all(b"ping").unwrap();
        // Readable-only interest must still surface the inbound bytes.
        p.modify(source_of(&server), 7, Interest::READABLE);
        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while got.len() < 4 && std::time::Instant::now() < deadline {
            events.clear();
            p.poll(&mut events, Duration::from_millis(100)).unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                let mut buf = [0u8; 16];
                let mut s = &server;
                match s.read(&mut buf) {
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
                    Err(e) => panic!("read failed: {e}"),
                }
            }
        }
        assert_eq!(got, b"ping");
    }

    /// A waker fired from another thread ends a long poll early.
    #[test]
    fn waker_interrupts_poll() {
        let (mut p, waker) = poller().unwrap();
        let t0 = std::time::Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        p.poll(&mut events, Duration::from_secs(30)).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "waker cut the 30s poll short"
        );
        handle.join().unwrap();
    }

    /// Wakes are level-cheap: many wakes coalesce, and a drained poller
    /// sleeps the full timeout again afterwards.
    #[test]
    fn wakes_coalesce_and_drain() {
        let (mut p, waker) = poller().unwrap();
        for _ in 0..32 {
            waker.wake();
        }
        let mut events = Vec::new();
        p.poll(&mut events, Duration::from_secs(5)).unwrap();
        // All pending wakes consumed: the next short poll times out
        // rather than returning instantly forever.
        let t0 = std::time::Instant::now();
        p.poll(&mut events, Duration::from_millis(40)).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "stale wakeups left behind"
        );
    }

    /// Deregistered sources produce no further events.
    #[test]
    fn deregister_silences_a_source() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let (mut p, _w) = poller().unwrap();
        p.register(source_of(&server), 3, Interest::READ_WRITE);
        p.deregister(source_of(&server));
        drop(client);
        let mut events = Vec::new();
        p.poll(&mut events, Duration::from_millis(50)).unwrap();
        assert!(
            events.iter().all(|e| e.token != 3),
            "deregistered source still reported"
        );
    }
}
