//! The network model: one-way transfer time as latency + bytes / throughput.

use std::time::Duration;

/// A point-to-point link model. Transfer time for an `n`-byte message is
/// `latency + n * byte_time` — the standard first-order model of a TCP
/// stream on a LAN, and exactly how the paper's figures account for the
/// network component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimLink {
    /// Fixed per-message cost (protocol stacks, interrupt handling,
    /// propagation).
    pub latency: Duration,
    /// Time per payload byte (inverse effective throughput).
    pub byte_time: Duration,
}

impl SimLink {
    /// A link calibrated to the paper's testbed (Figure 1): 100 Mbps
    /// Ethernet between Solaris 7 hosts, where the measured one-way network
    /// times were 0.227 ms (100 B), 0.345 ms (1 KB), 1.94 ms (10 KB) and
    /// 15.39 ms (100 KB). A least-squares fit of `latency + n·t_byte` gives
    /// ≈ 212 µs latency and ≈ 152 ns/byte (≈ 52 Mbps effective — TCP on
    /// 100 Mbps Ethernet of that era delivered roughly half the line rate
    /// for these message sizes).
    pub fn paper_ethernet() -> SimLink {
        SimLink {
            latency: Duration::from_nanos(212_000),
            byte_time: Duration::from_nanos(152),
        }
    }

    /// An idealized 100 Mbps link: 100 µs latency, full line rate.
    pub fn ideal_100mbps() -> SimLink {
        SimLink {
            latency: Duration::from_micros(100),
            byte_time: Duration::from_nanos(80),
        }
    }

    /// A modern-ish 10 Gbps datacenter link, for what-if sweeps.
    pub fn datacenter_10g() -> SimLink {
        SimLink {
            latency: Duration::from_micros(10),
            byte_time: Duration::from_nanos(1),
        }
    }

    /// One-way transfer time for `bytes` payload bytes.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        self.latency + self.byte_time * (bytes as u32)
    }

    /// Round-trip time for a request of `fwd` bytes and a reply of `back`
    /// bytes (no processing time included).
    pub fn round_trip_time(&self, fwd: usize, back: usize) -> Duration {
        self.transfer_time(fwd) + self.transfer_time(back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let l = SimLink {
            latency: Duration::from_micros(100),
            byte_time: Duration::from_nanos(100),
        };
        assert_eq!(l.transfer_time(0), Duration::from_micros(100));
        assert_eq!(l.transfer_time(1000), Duration::from_micros(200));
        assert_eq!(l.round_trip_time(1000, 0), Duration::from_micros(300));
    }

    #[test]
    fn paper_calibration_matches_figure_1() {
        // One-way network times from Figure 1, with tolerance: the paper's
        // four points aren't exactly affine, so allow 15%.
        let l = SimLink::paper_ethernet();
        let cases = [
            (100usize, 227.0f64),
            (1_000, 345.0),
            (10_000, 1_940.0),
            (100_000, 15_390.0),
        ];
        for (bytes, expect_us) in cases {
            let got = l.transfer_time(bytes).as_secs_f64() * 1e6;
            let err = (got - expect_us).abs() / expect_us;
            assert!(
                err < 0.15,
                "{bytes} B: got {got:.1} µs, paper {expect_us} µs"
            );
        }
    }

    #[test]
    fn faster_links_are_faster() {
        let n = 100_000;
        assert!(
            SimLink::datacenter_10g().transfer_time(n) < SimLink::ideal_100mbps().transfer_time(n)
        );
        assert!(
            SimLink::ideal_100mbps().transfer_time(n) < SimLink::paper_ethernet().transfer_time(n)
        );
    }
}
