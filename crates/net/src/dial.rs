//! Blocking TCP dialing with capped exponential backoff.
//!
//! The serv layer has two long-lived dialers — resuming clients and
//! daemon↔daemon mesh links — and both want the same connect loop: try,
//! sleep, double the delay up to a cap, give up only when told to. The
//! backoff schedule is deterministic (no jitter) so seeded fault runs
//! replay identically.

use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Deterministic capped exponential backoff schedule: `initial`,
/// `2*initial`, … clamped to `max`. `attempt` counts from 0.
pub fn backoff_delay(initial: Duration, max: Duration, attempt: u32) -> Duration {
    let factor = 1u32 << attempt.min(16);
    initial.saturating_mul(factor).min(max)
}

/// Dial `addr` until a connection succeeds or `give_up` flips true.
/// Sleeps the [`backoff_delay`] schedule between attempts (in small
/// slices, so a shutdown is honored mid-sleep). Returns `None` only on
/// give-up; transient resolve/connect errors just burn an attempt.
pub fn dial_retry(
    addr: &str,
    initial: Duration,
    max: Duration,
    give_up: &AtomicBool,
) -> Option<TcpStream> {
    let mut attempt = 0u32;
    loop {
        if give_up.load(Ordering::Acquire) {
            return None;
        }
        if let Ok(mut addrs) = addr.to_socket_addrs() {
            if let Some(a) = addrs.next() {
                if let Ok(stream) = TcpStream::connect(a) {
                    let _ = stream.set_nodelay(true);
                    return Some(stream);
                }
            }
        }
        let mut left = backoff_delay(initial, max, attempt);
        attempt = attempt.saturating_add(1);
        let slice = Duration::from_millis(10);
        while left > Duration::ZERO {
            if give_up.load(Ordering::Acquire) {
                return None;
            }
            let nap = left.min(slice);
            std::thread::sleep(nap);
            left -= nap;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_to_cap() {
        let i = Duration::from_millis(10);
        let m = Duration::from_millis(80);
        assert_eq!(backoff_delay(i, m, 0), Duration::from_millis(10));
        assert_eq!(backoff_delay(i, m, 1), Duration::from_millis(20));
        assert_eq!(backoff_delay(i, m, 3), Duration::from_millis(80));
        assert_eq!(backoff_delay(i, m, 30), Duration::from_millis(80));
    }

    #[test]
    fn dial_retry_honors_give_up() {
        let stop = AtomicBool::new(true);
        // Unroutable in practice, but give_up short-circuits before any
        // sleep either way.
        assert!(dial_retry(
            "127.0.0.1:1",
            Duration::from_millis(1),
            Duration::from_millis(2),
            &stop
        )
        .is_none());
    }

    #[test]
    fn dial_retry_connects_to_a_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let stop = AtomicBool::new(false);
        let got = dial_retry(
            &addr,
            Duration::from_millis(1),
            Duration::from_millis(2),
            &stop,
        );
        assert!(got.is_some());
    }
}
