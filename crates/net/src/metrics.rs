//! Process-global frame-I/O metrics.
//!
//! The frame codec counts bytes, frames, and vectored writes (≈ syscalls)
//! into the global obs registry, and records the batch size of every
//! coalesced write — the "send" component's raw material in the paper's
//! decomposition. Handles resolve once; counting is a relaxed atomic add.

use std::sync::{Arc, OnceLock};

use pbio_obs::{Counter, Histogram, Registry};

/// Pre-resolved handles for the frame codec's counters.
pub struct NetMetrics {
    /// Bytes read off the wire (headers + bodies).
    pub bytes_in: Arc<Counter>,
    /// Bytes written to the wire (headers + bodies).
    pub bytes_out: Arc<Counter>,
    /// Frames fully read.
    pub frames_in: Arc<Counter>,
    /// Frames rejected by the checksum (corrupted in flight).
    pub frames_corrupt: Arc<Counter>,
    /// Frames fully written.
    pub frames_out: Arc<Counter>,
    /// Vectored write calls issued (≈ syscalls on a raw socket).
    pub writes: Arc<Counter>,
    /// Frames coalesced per vectored write.
    pub write_batch: Arc<Histogram>,
}

/// The codec's metric handles (resolved into [`Registry::global`] once).
pub fn net_metrics() -> &'static NetMetrics {
    static M: OnceLock<NetMetrics> = OnceLock::new();
    M.get_or_init(|| {
        let r = Registry::global();
        NetMetrics {
            bytes_in: r.counter("net_bytes_in"),
            bytes_out: r.counter("net_bytes_out"),
            frames_in: r.counter("net_frames_in"),
            frames_corrupt: r.counter("net_frames_corrupt"),
            frames_out: r.counter("net_frames_out"),
            writes: r.counter("net_writes"),
            write_batch: r.histogram("net_write_batch"),
        }
    })
}
