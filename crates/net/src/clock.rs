//! Clocks: a virtual clock mixing simulated network time with measured
//! CPU time, and a cross-process offset estimator for distributed
//! tracing.

use std::time::Duration;

/// Estimated offset between this process's observation timebase and a
/// peer's, from one request/reply timestamp exchange (the classic
/// NTP-style midpoint estimate, bounded by half the round trip).
///
/// `pbio-obs` timestamps are nanoseconds since each process's *own*
/// first observation — two processes' raw stamps are incomparable, even
/// on one host. A client captures `t_send` before its `HELLO`, the
/// daemon replies with its local time `t_peer`, and the client captures
/// `t_recv` on receipt; [`ClockSync::to_peer`] then maps any later local
/// stamp into the peer's timebase, which is how every hop of one trace
/// ends up on a single comparable axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockSync {
    offset_ns: i64,
    rtt_ns: u64,
}

impl ClockSync {
    /// The identity correction (peer timebase == local timebase).
    pub fn identity() -> ClockSync {
        ClockSync::default()
    }

    /// Estimate the offset from one exchange: `t_send`/`t_recv` are
    /// local stamps around the round trip, `t_peer` is the peer's stamp
    /// taken while serving it. Assumes symmetric paths; the error is
    /// bounded by `rtt / 2`.
    pub fn from_exchange(t_send: u64, t_peer: u64, t_recv: u64) -> ClockSync {
        let rtt_ns = t_recv.saturating_sub(t_send);
        let midpoint = t_send.saturating_add(rtt_ns / 2);
        ClockSync {
            offset_ns: t_peer as i64 - midpoint as i64,
            rtt_ns,
        }
    }

    /// Estimated `peer - local` offset in nanoseconds.
    pub fn offset_ns(&self) -> i64 {
        self.offset_ns
    }

    /// Round-trip time of the measuring exchange (the error bound is
    /// half of it).
    pub fn rtt_ns(&self) -> u64 {
        self.rtt_ns
    }

    /// Map a local timestamp into the peer's timebase.
    pub fn to_peer(&self, local_ns: u64) -> u64 {
        local_ns.saturating_add_signed(self.offset_ns)
    }
}

/// Accumulates time from two sources: real measured durations (encode and
/// decode CPU work, measured on the host) and simulated durations (network
/// transfer per the [`crate::SimLink`] model). The figure binaries use one
/// clock per exchange to report totals consistent with the per-leg
/// breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    elapsed: Duration,
    cpu: Duration,
    network: Duration,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Add measured CPU time.
    pub fn advance_cpu(&mut self, d: Duration) {
        self.elapsed += d;
        self.cpu += d;
    }

    /// Add simulated network time.
    pub fn advance_network(&mut self, d: Duration) {
        self.elapsed += d;
        self.network += d;
    }

    /// Total virtual time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// CPU component.
    pub fn cpu(&self) -> Duration {
        self.cpu
    }

    /// Network component.
    pub fn network(&self) -> Duration {
        self.network
    }

    /// Fraction of total time spent in CPU (encode/decode) work — the
    /// paper's "66% of the total cost" observation for MPI exchanges (§4.1).
    pub fn cpu_fraction(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.cpu.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_components() {
        let mut c = VirtualClock::new();
        c.advance_cpu(Duration::from_millis(2));
        c.advance_network(Duration::from_millis(1));
        c.advance_cpu(Duration::from_millis(2));
        assert_eq!(c.elapsed(), Duration::from_millis(5));
        assert_eq!(c.cpu(), Duration::from_millis(4));
        assert_eq!(c.network(), Duration::from_millis(1));
        assert!((c.cpu_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_clock_fraction_is_zero() {
        assert_eq!(VirtualClock::new().cpu_fraction(), 0.0);
    }

    #[test]
    fn clock_sync_recovers_a_known_offset() {
        // Peer's clock runs 1_000_000 ns ahead; symmetric 10_000 ns legs.
        let t_send = 5_000_000;
        let t_peer = (t_send + 10_000) + 1_000_000;
        let t_recv = t_send + 20_000;
        let sync = ClockSync::from_exchange(t_send, t_peer, t_recv);
        assert_eq!(sync.offset_ns(), 1_000_000);
        assert_eq!(sync.rtt_ns(), 20_000);
        assert_eq!(sync.to_peer(t_recv), t_recv + 1_000_000);
    }

    #[test]
    fn clock_sync_handles_a_peer_behind_us() {
        let sync = ClockSync::from_exchange(2_000_000, 500_000, 2_002_000);
        assert!(sync.offset_ns() < 0);
        assert_eq!(
            sync.to_peer(2_001_000),
            (2_001_000i64 + sync.offset_ns()) as u64
        );
        assert_eq!(ClockSync::identity().to_peer(42), 42);
        // Saturation: a local stamp earlier than the offset clamps at
        // zero instead of wrapping.
        let far = ClockSync::from_exchange(2_000_000, 0, 2_002_000);
        assert_eq!(far.to_peer(5), 0);
    }
}
