//! A virtual clock mixing simulated network time with measured CPU time.

use std::time::Duration;

/// Accumulates time from two sources: real measured durations (encode and
/// decode CPU work, measured on the host) and simulated durations (network
/// transfer per the [`crate::SimLink`] model). The figure binaries use one
/// clock per exchange to report totals consistent with the per-leg
/// breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    elapsed: Duration,
    cpu: Duration,
    network: Duration,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// Add measured CPU time.
    pub fn advance_cpu(&mut self, d: Duration) {
        self.elapsed += d;
        self.cpu += d;
    }

    /// Add simulated network time.
    pub fn advance_network(&mut self, d: Duration) {
        self.elapsed += d;
        self.network += d;
    }

    /// Total virtual time.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// CPU component.
    pub fn cpu(&self) -> Duration {
        self.cpu
    }

    /// Network component.
    pub fn network(&self) -> Duration {
        self.network
    }

    /// Fraction of total time spent in CPU (encode/decode) work — the
    /// paper's "66% of the total cost" observation for MPI exchanges (§4.1).
    pub fn cpu_fraction(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.cpu.as_secs_f64() / self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_components() {
        let mut c = VirtualClock::new();
        c.advance_cpu(Duration::from_millis(2));
        c.advance_network(Duration::from_millis(1));
        c.advance_cpu(Duration::from_millis(2));
        assert_eq!(c.elapsed(), Duration::from_millis(5));
        assert_eq!(c.cpu(), Duration::from_millis(4));
        assert_eq!(c.network(), Duration::from_millis(1));
        assert!((c.cpu_fraction() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn zero_clock_fraction_is_zero() {
        assert_eq!(VirtualClock::new().cpu_fraction(), 0.0);
    }
}
