//! Real byte transports for end-to-end integration tests.
//!
//! The cost model uses [`crate::SimLink`]; these transports exist so the
//! integration suite can push actual PBIO/MPI/XML/CDR byte streams through
//! real channels (in-process and TCP loopback) and verify framing survives
//! arbitrary segmentation.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// One end of an in-process duplex byte pipe.
pub struct PipeEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Bytes received but not yet consumed.
    pending: Vec<u8>,
}

/// Create a connected pair of in-process pipe ends.
pub fn duplex_pipe() -> (PipeEnd, PipeEnd) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        PipeEnd { tx: atx, rx: arx, pending: Vec::new() },
        PipeEnd { tx: btx, rx: brx, pending: Vec::new() },
    )
}

impl PipeEnd {
    /// Send a chunk of bytes (a message or any segment of a stream).
    pub fn send(&mut self, bytes: &[u8]) {
        // Channel failure means the peer was dropped; for tests that is a
        // silent discard, matching a closed socket.
        let _ = self.tx.send(bytes.to_vec());
    }

    /// Drain everything currently available into the internal buffer and
    /// return it (stream semantics: segmentation is not preserved).
    pub fn drain(&mut self) -> &[u8] {
        while let Ok(chunk) = self.rx.try_recv() {
            self.pending.extend_from_slice(&chunk);
        }
        &self.pending
    }

    /// Mark `n` bytes of the drained buffer as consumed.
    pub fn consume(&mut self, n: usize) {
        self.pending.drain(..n);
    }
}

/// A TCP loopback transport: a connected (client, server) socket pair.
pub struct TcpPipe {
    /// Client-side stream.
    pub client: TcpStream,
    /// Server-side stream.
    pub server: TcpStream,
}

impl TcpPipe {
    /// Open a loopback socket pair on an ephemeral port.
    pub fn open() -> std::io::Result<TcpPipe> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        client.set_nodelay(true)?;
        server.set_nodelay(true)?;
        Ok(TcpPipe { client, server })
    }

    /// Write all of `bytes` on the client side.
    pub fn client_send(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.client.write_all(bytes)
    }

    /// Read exactly `n` bytes on the server side.
    pub fn server_recv(&mut self, n: usize) -> std::io::Result<Vec<u8>> {
        let mut buf = vec![0u8; n];
        self.server.read_exact(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_is_a_byte_stream() {
        let (mut a, mut b) = duplex_pipe();
        a.send(b"hel");
        a.send(b"lo ");
        a.send(b"world");
        assert_eq!(b.drain(), b"hello world");
        b.consume(6);
        assert_eq!(b.drain(), b"world");
        b.consume(5);
        assert_eq!(b.drain(), b"");
    }

    #[test]
    fn pipe_is_full_duplex() {
        let (mut a, mut b) = duplex_pipe();
        a.send(b"ping");
        b.send(b"pong");
        assert_eq!(b.drain(), b"ping");
        assert_eq!(a.drain(), b"pong");
    }

    #[test]
    fn send_after_peer_drop_does_not_panic() {
        let (mut a, b) = duplex_pipe();
        drop(b);
        a.send(b"into the void");
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let mut pipe = TcpPipe::open().unwrap();
        pipe.client_send(b"0123456789").unwrap();
        let got = pipe.server_recv(10).unwrap();
        assert_eq!(got, b"0123456789");
    }
}
