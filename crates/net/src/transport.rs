//! Real byte transports for end-to-end integration tests.
//!
//! The cost model uses [`crate::SimLink`]; these transports exist so the
//! integration suite can push actual PBIO/MPI/XML/CDR byte streams through
//! real channels (in-process and TCP loopback) and verify framing survives
//! arbitrary segmentation.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Errors from the TCP transport, distinguishing "the read timeout fired"
/// from real failures so callers can poll without parsing `io::Error`s.
#[derive(Debug)]
pub enum TransportError {
    /// The armed read timeout elapsed before any byte arrived.
    Timeout,
    /// The peer closed the connection.
    Closed,
    /// Any other I/O failure.
    Io(io::Error),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "read timed out"),
            TransportError::Closed => write!(f, "connection closed"),
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => TransportError::Timeout,
            io::ErrorKind::UnexpectedEof => TransportError::Closed,
            _ => TransportError::Io(e),
        }
    }
}

/// One end of an in-process duplex byte pipe.
pub struct PipeEnd {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Bytes received but not yet consumed.
    pending: Vec<u8>,
}

/// Create a connected pair of in-process pipe ends.
pub fn duplex_pipe() -> (PipeEnd, PipeEnd) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        PipeEnd {
            tx: atx,
            rx: arx,
            pending: Vec::new(),
        },
        PipeEnd {
            tx: btx,
            rx: brx,
            pending: Vec::new(),
        },
    )
}

impl PipeEnd {
    /// Send a chunk of bytes (a message or any segment of a stream).
    pub fn send(&mut self, bytes: &[u8]) {
        // Channel failure means the peer was dropped; for tests that is a
        // silent discard, matching a closed socket.
        let _ = self.tx.send(bytes.to_vec());
    }

    /// Drain everything currently available into the internal buffer and
    /// return it (stream semantics: segmentation is not preserved).
    pub fn drain(&mut self) -> &[u8] {
        while let Ok(chunk) = self.rx.try_recv() {
            self.pending.extend_from_slice(&chunk);
        }
        &self.pending
    }

    /// Mark `n` bytes of the drained buffer as consumed.
    pub fn consume(&mut self, n: usize) {
        self.pending.drain(..n);
    }
}

/// A TCP loopback transport: a connected (client, server) socket pair.
pub struct TcpPipe {
    /// Client-side stream.
    pub client: TcpStream,
    /// Server-side stream.
    pub server: TcpStream,
}

impl TcpPipe {
    /// Open a loopback socket pair on an ephemeral port.
    pub fn open() -> std::io::Result<TcpPipe> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        client.set_nodelay(true)?;
        server.set_nodelay(true)?;
        Ok(TcpPipe { client, server })
    }

    /// Arm (or clear, with `None`) a read timeout on both ends. While armed,
    /// the receive methods return [`TransportError::Timeout`] instead of
    /// blocking forever when the peer goes quiet.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.client.set_read_timeout(timeout)?;
        self.server.set_read_timeout(timeout)
    }

    /// Arm a read timeout on the client end only.
    pub fn set_client_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.client.set_read_timeout(timeout)
    }

    /// Arm a read timeout on the server end only.
    pub fn set_server_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.server.set_read_timeout(timeout)
    }

    /// Write all of `bytes` on the client side.
    pub fn client_send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.client.write_all(bytes)
    }

    /// Write all of `bytes` on the server side.
    pub fn server_send(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.server.write_all(bytes)
    }

    /// Read exactly `n` bytes on the server side. With a read timeout
    /// armed, a quiet peer yields [`TransportError::Timeout`].
    pub fn server_recv(&mut self, n: usize) -> Result<Vec<u8>, TransportError> {
        Self::recv_exact(&mut self.server, n)
    }

    /// Read exactly `n` bytes on the client side. With a read timeout
    /// armed, a quiet peer yields [`TransportError::Timeout`].
    pub fn client_recv(&mut self, n: usize) -> Result<Vec<u8>, TransportError> {
        Self::recv_exact(&mut self.client, n)
    }

    fn recv_exact(stream: &mut TcpStream, n: usize) -> Result<Vec<u8>, TransportError> {
        let mut buf = vec![0u8; n];
        let mut filled = 0;
        while filled < n {
            match stream.read(&mut buf[filled..]) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(got) => filled += got,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A timeout with some bytes already read means data is in
                // flight (sender mid-write); keep waiting for the rest so
                // the caller never observes a torn read.
                Err(e)
                    if filled > 0
                        && matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                {
                    continue
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_is_a_byte_stream() {
        let (mut a, mut b) = duplex_pipe();
        a.send(b"hel");
        a.send(b"lo ");
        a.send(b"world");
        assert_eq!(b.drain(), b"hello world");
        b.consume(6);
        assert_eq!(b.drain(), b"world");
        b.consume(5);
        assert_eq!(b.drain(), b"");
    }

    #[test]
    fn pipe_is_full_duplex() {
        let (mut a, mut b) = duplex_pipe();
        a.send(b"ping");
        b.send(b"pong");
        assert_eq!(b.drain(), b"ping");
        assert_eq!(a.drain(), b"pong");
    }

    #[test]
    fn send_after_peer_drop_does_not_panic() {
        let (mut a, b) = duplex_pipe();
        drop(b);
        a.send(b"into the void");
    }

    #[test]
    fn tcp_loopback_round_trip() {
        let mut pipe = TcpPipe::open().unwrap();
        pipe.client_send(b"0123456789").unwrap();
        let got = pipe.server_recv(10).unwrap();
        assert_eq!(got, b"0123456789");
        pipe.server_send(b"ack").unwrap();
        assert_eq!(pipe.client_recv(3).unwrap(), b"ack");
    }

    #[test]
    fn read_timeout_yields_typed_error() {
        let mut pipe = TcpPipe::open().unwrap();
        pipe.set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        let t = std::time::Instant::now();
        assert!(matches!(pipe.server_recv(1), Err(TransportError::Timeout)));
        assert!(t.elapsed() < Duration::from_secs(5));
        // Data sent after a timeout is still received in order.
        pipe.client_send(b"x").unwrap();
        assert_eq!(pipe.server_recv(1).unwrap(), b"x");
    }

    #[test]
    fn peer_close_yields_typed_error() {
        let mut pipe = TcpPipe::open().unwrap();
        pipe.set_read_timeout(Some(Duration::from_millis(30)))
            .unwrap();
        drop(pipe.client.try_clone().map(|_| ()));
        pipe.client.shutdown(std::net::Shutdown::Both).unwrap();
        assert!(matches!(pipe.server_recv(1), Err(TransportError::Closed)));
    }
}
