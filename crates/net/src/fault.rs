//! Deterministic, seeded fault injection for byte transports.
//!
//! The serv layer's recovery paths — reconnect, session resume, heartbeat
//! eviction, checksum rejection — are only trustworthy if they are
//! *exercised*, and the network faults that trigger them (resets, stalls,
//! half-open peers, bit flips, torn writes) do not occur on a quiet
//! loopback. [`FaultyStream`] wraps any `Read + Write` transport and
//! injects faults from a [`FaultPlan`]: a sorted list of [`FaultOp`]s,
//! each anchored to a **byte offset** in the stream rather than to wall
//! time, which is what makes runs reproducible — the same seed and plan
//! fire the same faults at the same points in the byte stream no matter
//! how the OS segments reads and writes or how threads are scheduled.
//!
//! Plans compose: hand-built (`FaultPlan::new().corrupt_read(40, 0x01)`)
//! for targeted regression tests, or generated from a seed
//! ([`FaultPlan::from_seed`]) for the CI fault matrix. Every fault that
//! actually fires is appended to a shared [`FaultLog`], so tests can
//! assert the injected sequence — not just the observed damage — is
//! identical across runs.
//!
//! The wrapper is deliberately passive once its plan is exhausted: a
//! drained [`FaultyStream`] is byte-transparent, so a recovered session
//! keeps running at full fidelity after its faults have fired.

use std::fmt;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// One injected fault, anchored to a byte offset within one direction of
/// a stream (offsets count bytes delivered to/accepted from the wrapped
/// transport in that direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// The write covering offset `at` is truncated to at most `max`
    /// bytes (min 1): a torn `write`/`writev`, exercising every caller's
    /// short-write completion loop.
    PartialWrite {
        /// Stream offset the truncation anchors to.
        at: u64,
        /// Maximum bytes the anchored write may move.
        max: usize,
    },
    /// The read that would deliver offset `at` first sleeps `millis`:
    /// a stalled peer, exercising timeout arming and heartbeat paths.
    ReadStall {
        /// Stream offset the stall anchors to.
        at: u64,
        /// Stall duration in milliseconds (keep small in tests).
        millis: u32,
    },
    /// The byte at offset `at` is XORed with `xor` in flight. With
    /// `xor != 0` this guarantees the delivered byte differs — the frame
    /// checksum must catch it.
    CorruptByte {
        /// Stream offset of the corrupted byte.
        at: u64,
        /// Mask XORed into the byte.
        xor: u8,
    },
    /// The direction is severed once offset `at` is reached: reads
    /// return EOF (a peer that vanished, possibly mid-frame), writes
    /// fail with `ConnectionReset`.
    Disconnect {
        /// Stream offset after which the direction is dead.
        at: u64,
    },
}

impl FaultOp {
    /// The byte offset this fault anchors to.
    pub fn at(&self) -> u64 {
        match *self {
            FaultOp::PartialWrite { at, .. }
            | FaultOp::ReadStall { at, .. }
            | FaultOp::CorruptByte { at, .. }
            | FaultOp::Disconnect { at } => at,
        }
    }
}

impl fmt::Display for FaultOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultOp::PartialWrite { at, max } => write!(f, "partial-write@{at} (max {max})"),
            FaultOp::ReadStall { at, millis } => write!(f, "read-stall@{at} ({millis}ms)"),
            FaultOp::CorruptByte { at, xor } => write!(f, "corrupt@{at} (^{xor:#04x})"),
            FaultOp::Disconnect { at } => write!(f, "disconnect@{at}"),
        }
    }
}

/// A composable fault schedule: one sorted op list per direction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Faults applied to bytes read from the transport.
    pub read: Vec<FaultOp>,
    /// Faults applied to bytes written to the transport.
    pub write: Vec<FaultOp>,
}

impl FaultPlan {
    /// An empty (transparent) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Generate a deterministic plan from a seed: a mix of partial
    /// writes, short read stalls, and byte corruption in the first
    /// ~64 KiB of each direction, and (for odd seeds) a mid-stream
    /// disconnect — the profile of a flaky LAN rather than a dead one.
    /// The same seed always yields the same plan.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for dir in 0..2u8 {
            let ops = rng.gen_range(1..=3usize);
            let mut v: Vec<FaultOp> = Vec::with_capacity(ops + 1);
            for _ in 0..ops {
                let at = rng.gen_range(64..65_536u64);
                v.push(match rng.gen_range(0..3u8) {
                    0 if dir == 1 => FaultOp::PartialWrite {
                        at,
                        max: rng.gen_range(1..=7usize),
                    },
                    0 | 1 => FaultOp::ReadStall {
                        at,
                        millis: rng.gen_range(1..=15u32),
                    },
                    _ => FaultOp::CorruptByte {
                        at,
                        xor: rng.gen_range(1..=255u64) as u8,
                    },
                });
            }
            if seed % 2 == 1 {
                v.push(FaultOp::Disconnect {
                    at: rng.gen_range(4_096..131_072u64),
                });
            }
            v.sort_by_key(FaultOp::at);
            if dir == 0 {
                plan.read = v;
            } else {
                plan.write = v;
            }
        }
        plan
    }

    /// Derive the plan for one connection of a multi-connection run: a
    /// distinct but seed-deterministic stream per `conn` index.
    pub fn for_conn(seed: u64, conn: u64) -> FaultPlan {
        FaultPlan::from_seed(seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Add a read-side corruption.
    pub fn corrupt_read(mut self, at: u64, xor: u8) -> FaultPlan {
        self.read.push(FaultOp::CorruptByte { at, xor });
        self.read.sort_by_key(FaultOp::at);
        self
    }

    /// Add a write-side corruption.
    pub fn corrupt_write(mut self, at: u64, xor: u8) -> FaultPlan {
        self.write.push(FaultOp::CorruptByte { at, xor });
        self.write.sort_by_key(FaultOp::at);
        self
    }

    /// Add a read-side stall.
    pub fn stall_read(mut self, at: u64, millis: u32) -> FaultPlan {
        self.read.push(FaultOp::ReadStall { at, millis });
        self.read.sort_by_key(FaultOp::at);
        self
    }

    /// Add a write-side truncation.
    pub fn partial_write(mut self, at: u64, max: usize) -> FaultPlan {
        self.write.push(FaultOp::PartialWrite { at, max });
        self.write.sort_by_key(FaultOp::at);
        self
    }

    /// Add a *short write on flush*: the write covering offset `at`
    /// accepts at most `keep` bytes and every later write fails, as if
    /// the process died (or the disk vanished) mid-append. This is the
    /// torn-tail generator for durable-log recovery tests: exactly
    /// `keep` bytes of the in-flight record land, the completion loop's
    /// retry is refused, and whatever was buffered past the tear never
    /// reaches the file.
    pub fn short_write_on_flush(self, at: u64, keep: usize) -> FaultPlan {
        self.partial_write(at, keep.max(1))
            .disconnect_write(at + keep.max(1) as u64)
    }

    /// Sever the read direction at `at` (the peer vanishes mid-frame).
    pub fn disconnect_read(mut self, at: u64) -> FaultPlan {
        self.read.push(FaultOp::Disconnect { at });
        self.read.sort_by_key(FaultOp::at);
        self
    }

    /// Sever the write direction at `at`.
    pub fn disconnect_write(mut self, at: u64) -> FaultPlan {
        self.write.push(FaultOp::Disconnect { at });
        self.write.sort_by_key(FaultOp::at);
        self
    }

    /// This plan with only its read-side ops (for wrapping the read half
    /// of a split connection).
    pub fn read_half(&self) -> FaultPlan {
        FaultPlan {
            read: self.read.clone(),
            write: Vec::new(),
        }
    }

    /// This plan with only its write-side ops.
    pub fn write_half(&self) -> FaultPlan {
        FaultPlan {
            read: Vec::new(),
            write: self.write.clone(),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.read.is_empty() && self.write.is_empty()
    }
}

/// One fault that actually fired, as recorded in a [`FaultLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// `true` if the fault fired on the write direction.
    pub write: bool,
    /// The op that fired (anchor offset included).
    pub op: FaultOp,
}

/// Shared, append-only record of every fault a [`FaultyStream`] injected.
/// Ops fire in plan order per direction, so for a fixed seed + plan the
/// per-direction sequences are identical across runs — the property the
/// reproducibility test asserts.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    events: Arc<Mutex<Vec<FaultEvent>>>,
}

impl FaultLog {
    /// A fresh, empty log.
    pub fn new() -> FaultLog {
        FaultLog::default()
    }

    fn push(&self, write: bool, op: FaultOp) {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(FaultEvent { write, op });
    }

    /// Snapshot of every fault fired so far (both directions, in firing
    /// order).
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The fired ops of one direction, in order.
    pub fn direction(&self, write: bool) -> Vec<FaultOp> {
        self.events()
            .into_iter()
            .filter(|e| e.write == write)
            .map(|e| e.op)
            .collect()
    }
}

/// Per-direction injection state.
struct DirState {
    /// Pending ops, sorted by anchor offset; drained as they fire.
    ops: Vec<FaultOp>,
    /// Next pending op index.
    next: usize,
    /// Bytes moved in this direction so far.
    offset: u64,
    /// Set once a [`FaultOp::Disconnect`] fired.
    severed: bool,
}

impl DirState {
    fn new(mut ops: Vec<FaultOp>) -> DirState {
        ops.sort_by_key(FaultOp::at);
        DirState {
            ops,
            next: 0,
            offset: 0,
            severed: false,
        }
    }

    fn peek(&self) -> Option<FaultOp> {
        self.ops.get(self.next).copied()
    }

    fn pop(&mut self) -> Option<FaultOp> {
        let op = self.peek();
        if op.is_some() {
            self.next += 1;
        }
        op
    }
}

/// A `Read + Write` wrapper that injects the faults of a [`FaultPlan`]
/// into the wrapped transport. See the module docs for semantics.
pub struct FaultyStream<S> {
    inner: S,
    read: DirState,
    write: DirState,
    log: FaultLog,
    /// Scratch for write-side corruption (a corrupted write goes out of a
    /// modified copy; reused so steady state allocates nothing).
    scratch: Vec<u8>,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner` with `plan`, recording fired faults into `log`.
    pub fn new(inner: S, plan: FaultPlan, log: FaultLog) -> FaultyStream<S> {
        FaultyStream {
            inner,
            read: DirState::new(plan.read),
            write: DirState::new(plan.write),
            log,
            scratch: Vec::new(),
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// The shared fault log.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return self.inner.read(out);
        }
        // Fire every matured stall/disconnect before touching the inner
        // transport, then clamp the request so the next offset-anchored
        // fault lands exactly on its boundary.
        let mut want = out.len();
        while let Some(op) = self.read.peek() {
            match op {
                FaultOp::ReadStall { at, millis } if at <= self.read.offset => {
                    self.read.pop();
                    self.log.push(false, op);
                    std::thread::sleep(Duration::from_millis(millis as u64));
                }
                FaultOp::Disconnect { at } if at <= self.read.offset => {
                    self.read.pop();
                    self.log.push(false, op);
                    self.read.severed = true;
                }
                FaultOp::ReadStall { at, .. } | FaultOp::Disconnect { at } => {
                    want = want.min((at - self.read.offset) as usize);
                    break;
                }
                // Corruption is applied to delivered bytes below; it
                // never bounds the read size.
                FaultOp::CorruptByte { .. } | FaultOp::PartialWrite { .. } => break,
            }
        }
        if self.read.severed {
            return Ok(0);
        }
        let want = want.max(1).min(out.len());
        let n = self.inner.read(&mut out[..want])?;
        if n > 0 {
            let end = self.read.offset + n as u64;
            while let Some(op) = self.read.peek() {
                match op {
                    FaultOp::CorruptByte { at, xor } if at < end => {
                        self.read.pop();
                        if at >= self.read.offset {
                            out[(at - self.read.offset) as usize] ^= xor;
                            self.log.push(false, op);
                        }
                    }
                    // A stray write-side op in a read plan is inert.
                    FaultOp::PartialWrite { at, .. } if at < end => {
                        self.read.pop();
                        let _ = at;
                    }
                    _ => break,
                }
            }
            self.read.offset = end;
        }
        Ok(n)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if self.write.severed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected disconnect",
            ));
        }
        let mut want = buf.len();
        // Only the first pending op can shape this write; later ops wait
        // for the offset to reach them. Nothing is popped or logged until
        // the inner write *succeeds*: a nonblocking transport returning
        // `WouldBlock` must leave every op pending so it fires on the
        // retry instead of being silently consumed.
        let mut partial_pending = false;
        if let Some(op) = self.write.peek() {
            match op {
                FaultOp::Disconnect { at } if at <= self.write.offset => {
                    self.write.pop();
                    self.log.push(true, op);
                    self.write.severed = true;
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "injected disconnect",
                    ));
                }
                FaultOp::PartialWrite { at, max } if at <= self.write.offset => {
                    partial_pending = true;
                    want = want.min(max.max(1));
                }
                FaultOp::Disconnect { at } | FaultOp::PartialWrite { at, .. } => {
                    want = want.min((at - self.write.offset) as usize).max(1);
                }
                // Read-side ops in a write plan are inert; corruption is
                // applied to the accepted bytes below.
                FaultOp::ReadStall { .. } | FaultOp::CorruptByte { .. } => {}
            }
        }
        let want = want.max(1).min(buf.len());
        // Apply any corruption landing inside this write to a scratch
        // copy, so the caller's buffer is never mutated. The ops stay in
        // the plan for now — corrupted bytes past what the transport
        // accepts are re-corrupted identically on the retry.
        let end = self.write.offset + want as u64;
        let mut corrupted = false;
        let mut probe = self.write.next;
        while let Some(op) = self.write.ops.get(probe).copied() {
            if op.at() >= end {
                break;
            }
            if let FaultOp::CorruptByte { at, .. } = op {
                if at >= self.write.offset {
                    corrupted = true;
                    break;
                }
            }
            probe += 1;
        }
        let n = if corrupted {
            self.scratch.clear();
            self.scratch.extend_from_slice(&buf[..want]);
            let mut i = self.write.next;
            while let Some(op) = self.write.ops.get(i).copied() {
                if op.at() >= end {
                    break;
                }
                if let FaultOp::CorruptByte { at, xor } = op {
                    if at >= self.write.offset {
                        self.scratch[(at - self.write.offset) as usize] ^= xor;
                    }
                }
                i += 1;
            }
            let scratch = std::mem::take(&mut self.scratch);
            let r = self.inner.write(&scratch);
            self.scratch = scratch;
            r?
        } else {
            self.inner.write(&buf[..want])?
        };
        // The write landed: now retire the ops it consumed, bounded by the
        // bytes the transport actually accepted.
        let accepted_end = self.write.offset + n as u64;
        if partial_pending {
            if let Some(op) = self.write.pop() {
                self.log.push(true, op);
            }
        }
        while let Some(op) = self.write.peek() {
            match op {
                FaultOp::CorruptByte { at, xor } if at < accepted_end => {
                    self.write.pop();
                    let _ = xor;
                    if at >= self.write.offset {
                        self.log.push(true, op);
                    }
                }
                FaultOp::ReadStall { at, .. } if at < accepted_end => {
                    self.write.pop();
                    let _ = at;
                }
                _ => break,
            }
        }
        self.write.offset = accepted_end;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A transport that is either transparent or fault-injected, decided at
/// connection setup: the daemon compiles fault injection in permanently
/// and pays one enum discriminant test per I/O call when it is off.
pub enum MaybeFaulty<S> {
    /// Pass-through (production path).
    Plain(S),
    /// Fault-injected (test/bench path).
    Faulty(Box<FaultyStream<S>>),
}

impl<S> MaybeFaulty<S> {
    /// Wrap `inner`: transparent when `plan` is `None`.
    pub fn new(inner: S, plan: Option<FaultPlan>, log: FaultLog) -> MaybeFaulty<S> {
        match plan {
            None => MaybeFaulty::Plain(inner),
            Some(p) => MaybeFaulty::Faulty(Box::new(FaultyStream::new(inner, p, log))),
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        match self {
            MaybeFaulty::Plain(s) => s,
            MaybeFaulty::Faulty(f) => f.get_ref(),
        }
    }
}

impl<S: Read> Read for MaybeFaulty<S> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        match self {
            MaybeFaulty::Plain(s) => s.read(out),
            MaybeFaulty::Faulty(f) => f.read(out),
        }
    }
}

impl<S: Write> Write for MaybeFaulty<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            MaybeFaulty::Plain(s) => s.write(buf),
            MaybeFaulty::Faulty(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            MaybeFaulty::Plain(s) => s.flush(),
            MaybeFaulty::Faulty(f) => f.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn drain(r: &mut impl Read) -> (Vec<u8>, Option<io::Error>) {
        let mut out = Vec::new();
        let mut chunk = [0u8; 7]; // odd size: exercises offset spans
        loop {
            match r.read(&mut chunk) {
                Ok(0) => return (out, None),
                Ok(n) => out.extend_from_slice(&chunk[..n]),
                Err(e) => return (out, Some(e)),
            }
        }
    }

    #[test]
    fn corruption_fires_at_the_exact_offset() {
        let data: Vec<u8> = (0u8..=99).collect();
        let plan = FaultPlan::new()
            .corrupt_read(10, 0xFF)
            .corrupt_read(63, 0x01);
        let log = FaultLog::new();
        let mut s = FaultyStream::new(Cursor::new(data.clone()), plan, log.clone());
        let (got, err) = drain(&mut s);
        assert!(err.is_none());
        let mut want = data;
        want[10] ^= 0xFF;
        want[63] ^= 0x01;
        assert_eq!(got, want);
        assert_eq!(log.direction(false).len(), 2);
    }

    #[test]
    fn read_disconnect_truncates_at_the_offset() {
        let data = vec![7u8; 100];
        let plan = FaultPlan::new().disconnect_read(40);
        let mut s = FaultyStream::new(Cursor::new(data), plan, FaultLog::new());
        let (got, err) = drain(&mut s);
        assert!(err.is_none(), "read disconnect is EOF, not an error");
        assert_eq!(got.len(), 40, "exactly the pre-disconnect bytes arrive");
    }

    #[test]
    fn write_faults_truncate_and_sever() {
        let plan = FaultPlan::new().partial_write(0, 3).disconnect_write(10);
        let mut s = FaultyStream::new(Vec::new(), plan, FaultLog::new());
        // First write is clamped to 3 bytes.
        assert_eq!(s.write(&[1u8; 8]).unwrap(), 3);
        // Next writes are clamped at the disconnect boundary, then fail.
        assert_eq!(s.write(&[2u8; 8]).unwrap(), 7);
        let err = s.write(&[3u8; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.get_ref().len(), 10);
    }

    #[test]
    fn write_corruption_modifies_a_copy_not_the_caller_buffer() {
        let plan = FaultPlan::new().corrupt_write(2, 0x80);
        let mut s = FaultyStream::new(Vec::new(), plan, FaultLog::new());
        let buf = [0u8; 6];
        let mut written = 0;
        while written < buf.len() {
            written += s.write(&buf[written..]).unwrap();
        }
        assert_eq!(buf, [0u8; 6], "caller buffer untouched");
        assert_eq!(s.get_ref().as_slice(), &[0, 0, 0x80, 0, 0, 0]);
    }

    #[test]
    fn seeded_plans_and_logs_are_reproducible() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            assert_eq!(FaultPlan::from_seed(seed), FaultPlan::from_seed(seed));
            let data = vec![0x5Au8; 200_000];
            let run = |seed: u64| {
                let log = FaultLog::new();
                let mut s = FaultyStream::new(
                    Cursor::new(data.clone()),
                    FaultPlan::from_seed(seed).read_half(),
                    log.clone(),
                );
                let (got, _) = drain(&mut s);
                (got, log.direction(false))
            };
            let (a_bytes, a_log) = run(seed);
            let (b_bytes, b_log) = run(seed);
            assert_eq!(a_bytes, b_bytes, "seed {seed}: delivered bytes differ");
            assert_eq!(a_log, b_log, "seed {seed}: fault sequences differ");
            assert!(!a_log.is_empty(), "seed {seed}: plan fired nothing");
        }
        assert_ne!(
            FaultPlan::from_seed(1),
            FaultPlan::from_seed(2),
            "distinct seeds produce distinct plans"
        );
    }

    #[test]
    fn write_faults_survive_wouldblock_and_fire_on_retry() {
        /// Refuses the first attempt at every offset, then accepts — a
        /// nonblocking socket with a momentarily full buffer.
        struct Congested {
            out: Vec<u8>,
            open: bool,
        }
        impl Write for Congested {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if !self.open {
                    self.open = true;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                self.open = false;
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let plan = FaultPlan::new().partial_write(0, 3).corrupt_write(5, 0x80);
        let log = FaultLog::new();
        let mut s = FaultyStream::new(
            Congested {
                out: Vec::new(),
                open: false,
            },
            plan,
            log.clone(),
        );
        let data = [0u8; 10];
        let mut written = 0;
        while written < data.len() {
            match s.write(&data[written..]) {
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        // Both faults fired exactly once despite every offset first
        // hitting WouldBlock: the truncation clamped the opening write
        // and the corruption landed at byte 5.
        assert_eq!(s.get_ref().out, [0, 0, 0, 0, 0, 0x80, 0, 0, 0, 0]);
        assert_eq!(log.direction(true).len(), 2);
    }

    #[test]
    fn drained_plan_is_transparent() {
        let plan = FaultPlan::new().corrupt_read(0, 0x01);
        let data = vec![0u8; 50];
        let mut s = FaultyStream::new(Cursor::new(data), plan, FaultLog::new());
        let (got, err) = drain(&mut s);
        assert!(err.is_none());
        assert_eq!(got[0], 0x01);
        assert!(got[1..].iter().all(|&b| b == 0), "tail untouched");
    }
}
