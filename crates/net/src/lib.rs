//! # pbio-net — network model, transports, and the exchange harness
//!
//! The paper's evaluation ran between a Sun Ultra 30 and a Pentium II over
//! 100 Mbps Ethernet. Figures 1 and 5 decompose each message round-trip
//! into *encode → network → decode* legs; the network component is a
//! size-proportional term, the encode/decode components are measured CPU
//! time. This crate provides:
//!
//! * [`link::SimLink`] — a latency + bandwidth model of the wire, including
//!   [`link::SimLink::paper_ethernet`], calibrated so that its one-way times
//!   for 100 B / 1 KB / 10 KB / 100 KB messages match the network components
//!   the paper reports in Figure 1,
//! * [`clock::VirtualClock`] — accumulates simulated network time alongside
//!   real measured CPU time; [`clock::ClockSync`] estimates cross-process
//!   clock offsets from one timestamp exchange (distributed tracing's
//!   skew correction),
//! * [`transport`] — real byte transports (in-process duplex pipe and a TCP
//!   loopback, with read-timeout plumbing) used by integration tests to run
//!   actual PBIO/MPI/XML/CDR streams end to end,
//! * [`frame`] — the timeout-aware session-frame codec `pbio-serv` speaks
//!   on the wire (PBIO record streams ride inside frame bodies), with a
//!   CRC-32 header checksum so in-flight corruption is detected rather
//!   than decoded,
//! * [`fault`] — seeded, deterministic fault injection
//!   ([`fault::FaultyStream`]) for exercising the serv layer's recovery
//!   paths from tests, benches, and the daemon's `--faults` mode,
//! * [`dial`] — blocking connect with a deterministic capped-backoff
//!   schedule, shared by resuming clients and daemon mesh links,
//! * [`buf`] — [`buf::WireBuf`], the shared immutable byte buffer frame
//!   bodies are made of, so fanning one event out to many connections is
//!   refcount bumps rather than copies,
//! * [`poll`] — a dependency-free readiness selector ([`poll::Poller`]
//!   over raw `ppoll(2)` on Linux, a portable fallback elsewhere) plus a
//!   cross-thread [`poll::Waker`], the foundation of the serv daemon's
//!   sharded reactor event loop,
//! * [`affinity`] — thread → CPU pinning (raw `sched_setaffinity(2)` on
//!   Linux, unsupported elsewhere) so those reactor shards can stop
//!   migrating between cores,
//! * [`exchange`] — the measurement harness that produces the per-leg cost
//!   breakdowns the figure binaries print.

#![warn(missing_docs)]

pub mod affinity;
pub mod buf;
pub mod clock;
pub mod dial;
pub mod exchange;
pub mod fault;
pub mod frame;
pub mod link;
pub mod metrics;
pub mod poll;
pub mod transport;

pub use buf::WireBuf;
pub use clock::{ClockSync, VirtualClock};
pub use dial::{backoff_delay, dial_retry};
pub use exchange::{measure_leg, time_avg, LegCosts, RoundTripCosts};
pub use fault::{FaultLog, FaultOp, FaultPlan, FaultyStream, MaybeFaulty};
pub use frame::{read_frame, write_frame, Frame, FrameError};
pub use link::SimLink;
pub use poll::{poller, Event as PollEvent, Interest, Poller, Waker};
pub use transport::{duplex_pipe, PipeEnd, TcpPipe, TransportError};
