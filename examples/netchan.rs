//! Networked event channels: publish/subscribe between threads over real
//! loopback TCP, through the `pbio-serv` daemon.
//!
//! A simulation thread (compiled for big-endian SPARC, as far as the wire
//! is concerned) publishes telemetry in its native memory layout; the
//! daemon filters at the source; a monitoring thread on x86-64 receives
//! only the alarming readings, converted by code generated on first
//! contact with the publisher's format.
//!
//! ```text
//! cargo run -p pbio-examples --bin netchan
//! ```

use std::time::Duration;

use pbio_chan::Predicate;
use pbio_serv::{ServClient, ServDaemon};
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;
use pbio_types::ArchProfile;

fn telemetry() -> Schema {
    Schema::new(
        "telemetry",
        vec![
            FieldDecl::atom("step", AtomType::CInt),
            FieldDecl::atom("max_temp", AtomType::CDouble),
            FieldDecl::atom("diverged", AtomType::Bool),
        ],
    )
    .unwrap()
}

fn main() {
    // The daemon: in production a standalone process; here, in-process.
    let daemon = ServDaemon::bind("127.0.0.1:0").unwrap();
    let addr = daemon.local_addr();
    println!("daemon listening on {addr}");

    // Subscriber thread: a monitor on x86-64 that only wants trouble.
    // Its predicate ships to the daemon and runs against the publisher's
    // wire bytes, so calm readings never cross the socket.
    let monitor = std::thread::spawn(move || {
        let mut client = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
        let chan = client.open_channel("telemetry").unwrap();
        let alarms = Predicate::gt("max_temp", 1000.0).or(Predicate::eq("diverged", true));
        client.subscribe(chan, &telemetry(), Some(&alarms)).unwrap();
        println!("[monitor/x86-64] subscribed with filter: max_temp > 1000 || diverged");

        let mut seen = 0;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seen < 3 && std::time::Instant::now() < deadline {
            if let Some(event) = client.poll(Duration::from_millis(500)).unwrap() {
                println!(
                    "[monitor/x86-64] ALARM step={} max_temp={} diverged={} (converted: {})",
                    event.view.get("step").unwrap(),
                    event.view.get("max_temp").unwrap(),
                    event.view.get("diverged").unwrap(),
                    !event.view.is_zero_copy(),
                );
                seen += 1;
            }
        }
        client.disconnect().unwrap();
    });

    // Publisher thread: the simulation, publishing every step in its
    // native layout — constant per-event cost, no packing.
    let sim = std::thread::spawn(move || {
        let mut client = ServClient::connect(addr, &ArchProfile::SPARC_V8).unwrap();
        let fmt = client.register_format(&telemetry()).unwrap();
        let chan = client.open_channel("telemetry").unwrap();
        // Give the monitor a moment to attach its subscription.
        std::thread::sleep(Duration::from_millis(300));
        for step in 0..20 {
            let temp = 900.0 + f64::from(step) * 20.0; // crosses 1000 at step 6
            let diverged = step == 13;
            let r = RecordValue::new()
                .with("step", step)
                .with("max_temp", temp)
                .with("diverged", diverged);
            client.publish_value(chan, fmt, &r).unwrap();
        }
        println!("[sim/sparc-v8] published 20 steps");
        client.disconnect().unwrap();
    });

    sim.join().unwrap();
    monitor.join().unwrap();

    let stats = daemon.stats();
    println!(
        "daemon: {} events in, {} out, {} filtered at the source",
        stats.events_in, stats.events_out, stats.filtered_at_source
    );
    daemon.shutdown();
}
