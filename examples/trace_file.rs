//! Portable binary trace files — the original "I/O" use of PBIO: a
//! simulation writes its native records to a file; tools on any
//! architecture read them back later, including generic tools that know
//! nothing about the formats inside.
//!
//! ```text
//! cargo run -p pbio-examples --bin trace_file
//! ```

use std::io::Cursor;

use pbio::{FileReader, FileWriter};
use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};
use pbio_types::ArchProfile;

fn main() {
    let schema = Schema::new(
        "checkpoint",
        vec![
            FieldDecl::atom("step", AtomType::CInt),
            FieldDecl::atom("t", AtomType::CDouble),
            FieldDecl::new("state", TypeDesc::array(AtomType::CDouble, 4)),
            FieldDecl::new("note", TypeDesc::String),
        ],
    )
    .unwrap();

    // A big-endian MIPS machine writes the trace.
    let mut fw = FileWriter::create(Vec::new(), &ArchProfile::MIPS_N32).unwrap();
    let id = fw.register(&schema).unwrap();
    for step in 0..4 {
        fw.write_value(
            id,
            &RecordValue::new()
                .with("step", step)
                .with("t", step as f64 * 0.01)
                .with(
                    "state",
                    Value::Array((0..4).map(|i| Value::F64((step * 4 + i) as f64)).collect()),
                )
                .with("note", format!("checkpoint {step}").as_str()),
        )
        .unwrap();
    }
    let bytes = fw.finish().unwrap();
    println!(
        "mips-n32 wrote a {}-byte trace with {} records\n",
        bytes.len(),
        4
    );

    // Years later: an x86-64 analysis tool that KNOWS the format.
    let mut fr = FileReader::open(Cursor::new(&bytes), &ArchProfile::X86_64).unwrap();
    fr.expect(&schema).unwrap();
    println!("x86-64 analysis tool (declared schema, DCG conversion):");
    fr.read_all(|view| {
        println!(
            "  step {} t={} note={}",
            view.get("step").unwrap(),
            view.get("t").unwrap(),
            view.get("note").unwrap()
        );
    })
    .unwrap();

    // ...and a generic dump tool that knows NOTHING (pure reflection).
    let mut dump = FileReader::open(Cursor::new(&bytes), &ArchProfile::X86).unwrap();
    println!("\ngeneric dump tool (no schema declared, reflection):");
    let mut first = true;
    dump.read_all(|view| {
        if first {
            first = false;
            println!(
                "  format {:?} written on {:?}:",
                view.layout().format_name(),
                view.layout().arch_name()
            );
            for f in view.layout().fields() {
                println!("    field {:<8} : {}", f.name, f.ty.describe());
            }
        }
    })
    .unwrap();
}
