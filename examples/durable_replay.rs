//! Durable channels: crash the daemon mid-stream, restart it over the
//! same store directory, and replay every acked event from disk.
//!
//! A telemetry publisher writes to a *durable* channel — the daemon
//! appends each event to a `pbio-store` segment log (self-describing
//! PBIO files) and acks once the bytes are flushed. The daemon is then
//! shut down and restarted over the same directory; a late monitor uses
//! `subscribe_from(0)` to replay the full history from disk and hands
//! off gaplessly to live delivery of post-restart events.
//!
//! ```text
//! cargo run -p pbio-examples --bin durable_replay
//! ```

use std::time::{Duration, Instant};

use pbio_serv::{ServClient, ServConfig, ServDaemon, StoreConfig, TraceConfig};
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;
use pbio_types::ArchProfile;

fn telemetry() -> Schema {
    Schema::new(
        "telemetry",
        vec![
            FieldDecl::atom("step", AtomType::I64),
            FieldDecl::atom("max_temp", AtomType::CDouble),
        ],
    )
    .unwrap()
}

fn durable_config(dir: &std::path::Path) -> ServConfig {
    ServConfig {
        durability: Some(StoreConfig::new(dir)),
        stats_interval: None,
        trace: TraceConfig {
            sample_mod: 0,
            publish_interval: None,
            sink_capacity: 16,
        },
        ..ServConfig::default()
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("pbio-durable-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Life 1: publish ten acked events, then crash. -----------------
    let daemon = ServDaemon::bind_with("127.0.0.1:0", durable_config(&dir)).unwrap();
    let addr = daemon.local_addr();
    println!("daemon listening on {addr}, store at {}", dir.display());

    let mut sim = ServClient::connect(addr, &ArchProfile::SPARC_V8).unwrap();
    assert!(sim.durable_negotiated());
    let fmt = sim.register_format(&telemetry()).unwrap();
    let chan = sim.open_channel_durable("telemetry").unwrap();
    for step in 0..10i64 {
        let r = RecordValue::new()
            .with("step", step)
            .with("max_temp", 900.0 + step as f64 * 20.0);
        sim.publish_value(chan, fmt, &r).unwrap();
    }
    // An ack is a durability promise: these ten events are on disk.
    let deadline = Instant::now() + Duration::from_secs(10);
    while sim.stats().publishes_acked < 10 && Instant::now() < deadline {
        let _ = sim.poll(Duration::from_millis(50)).unwrap();
    }
    println!(
        "[sim/sparc] 10 events acked, last durable offset = {:?}",
        sim.last_durable_offset(chan)
    );
    drop(sim);
    daemon.shutdown();
    println!("daemon stopped — the store directory is all that survives");

    // ---- Life 2: restart over the same directory and replay. -----------
    let daemon = ServDaemon::bind_with("127.0.0.1:0", durable_config(&dir)).unwrap();
    let addr = daemon.local_addr();
    println!("daemon restarted on {addr}");

    // A publisher from *this* life appends past the recovered head.
    let mut sim = ServClient::connect(addr, &ArchProfile::SPARC_V8).unwrap();
    let fmt = sim.register_format(&telemetry()).unwrap();
    let chan = sim.open_channel_durable("telemetry").unwrap();

    // The monitor replays history it never witnessed, then goes live.
    let mut monitor = ServClient::connect(addr, &ArchProfile::X86_64).unwrap();
    let m_chan = monitor.open_channel("telemetry").unwrap();
    monitor.subscribe_from(m_chan, &telemetry(), 0).unwrap();

    for step in 10..15i64 {
        let r = RecordValue::new()
            .with("step", step)
            .with("max_temp", 900.0 + step as f64 * 20.0);
        sim.publish_value(chan, fmt, &r).unwrap();
    }

    let mut seen = 0u32;
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen < 15 && Instant::now() < deadline {
        if let Some(event) = monitor.poll(Duration::from_millis(200)).unwrap() {
            let source = if event.offset.unwrap() < 10 {
                "replayed from disk"
            } else {
                "live"
            };
            println!(
                "[monitor/x86-64] offset={} step={} max_temp={} ({source})",
                event.offset.unwrap(),
                event.view.get("step").unwrap(),
                event.view.get("max_temp").unwrap(),
            );
            seen += 1;
        }
    }
    assert_eq!(seen, 15, "full history + live tail, gapless");
    println!("replay → live handoff complete: 15 events, offsets 0..15, no gaps");

    monitor.disconnect().unwrap();
    sim.disconnect().unwrap();
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
