//! Application evolution / type extension (§4.4): a producer adds fields to
//! its message format; deployed consumers keep working without
//! recompilation — new fields are simply ignored, and a consumer expecting
//! a field the producer dropped sees a zero default plus a report.
//!
//! Also demonstrates the paper's advice that appending new fields (rather
//! than inserting them) keeps old consumers on cheaper conversion paths.
//!
//! ```text
//! cargo run -p pbio-examples --bin evolution
//! ```

use pbio::{FieldStatus, Reader, Writer};
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;
use pbio_types::ArchProfile;

fn v1_schema() -> Schema {
    Schema::new(
        "status",
        vec![
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("load", AtomType::CDouble),
        ],
    )
    .unwrap()
}

fn main() {
    let arch = ArchProfile::X86_64;

    // --- Generation 1: producer and consumer agree. ---
    let mut producer_v1 = Writer::new(&arch);
    let fmt1 = producer_v1.register(&v1_schema()).unwrap();
    let mut stream = Vec::new();
    producer_v1
        .write_value(
            fmt1,
            &RecordValue::new().with("seq", 1i32).with("load", 0.25f64),
            &mut stream,
        )
        .unwrap();

    let mut old_consumer = Reader::new(&arch);
    old_consumer.expect(&v1_schema()).unwrap();
    old_consumer
        .process(&stream, |view| {
            println!(
                "v1 -> old consumer: seq={} load={} (zero-copy: {})",
                view.get("seq").unwrap(),
                view.get("load").unwrap(),
                view.is_zero_copy()
            );
        })
        .unwrap();

    // --- Generation 2: the producer evolves, appending two fields. The old
    //     consumer binary is untouched. ---
    let v2_schema = v1_schema()
        .with_field_appended(FieldDecl::atom("temperature", AtomType::CDouble))
        .unwrap()
        .with_field_appended(FieldDecl::atom("alarm", AtomType::Bool))
        .unwrap();
    let mut producer_v2 = Writer::new(&arch);
    let fmt2 = producer_v2.register(&v2_schema).unwrap();
    let mut stream2 = Vec::new();
    producer_v2
        .write_value(
            fmt2,
            &RecordValue::new()
                .with("seq", 2i32)
                .with("load", 0.75f64)
                .with("temperature", 341.5f64)
                .with("alarm", true),
            &mut stream2,
        )
        .unwrap();

    old_consumer
        .process(&stream2, |view| {
            println!(
                "v2 -> old consumer: seq={} load={} — new fields invisible, no re-deploy",
                view.get("seq").unwrap(),
                view.get("load").unwrap(),
            );
            assert!(view.get("temperature").is_none());
        })
        .unwrap();
    let reports = old_consumer.field_reports(0).unwrap();
    println!(
        "  old consumer match report: {:?}",
        reports
            .iter()
            .map(|r| (r.name.as_str(), r.status))
            .collect::<Vec<_>>()
    );

    // --- A NEW consumer expecting v2 reads old v1 data: the missing fields
    //     are defaulted and reported. ---
    let mut new_consumer = Reader::new(&arch);
    new_consumer.expect(&v2_schema).unwrap();
    new_consumer
        .process(&stream, |view| {
            println!(
                "v1 -> new consumer: seq={} load={} temperature={} alarm={}",
                view.get("seq").unwrap(),
                view.get("load").unwrap(),
                view.get("temperature").unwrap(), // defaulted to 0
                view.get("alarm").unwrap(),       // defaulted to false
            );
        })
        .unwrap();
    let reports = new_consumer.field_reports(0).unwrap();
    for r in reports {
        if r.status == FieldStatus::Missing {
            println!(
                "  new consumer: field {:?} missing from sender (defaulted)",
                r.name
            );
        }
    }

    println!();
    println!("Contrast with MPI: any of these format changes would require");
    println!("simultaneously updating every component — 'any variation in");
    println!("message content invalidates communication' (§2).");
}
