//! Wire-format shootout: one record, four wire formats.
//!
//! Sends the same mixed-field record through PBIO (NDR), the MPICH-model
//! packed format, CORBA CDR and XML — printing wire sizes and rough
//! per-record encode/decode costs for a heterogeneous exchange
//! (Sparc sender, x86 receiver).
//!
//! ```text
//! cargo run -p pbio-examples --release --bin wire_shootout
//! ```

use pbio_bench::workloads::{workload, MsgSize};
use pbio_bench::{prepare, WireFormat};
use pbio_net::time_avg;
use pbio_types::ArchProfile;

fn main() {
    let sparc = &ArchProfile::SPARC_V8;
    let x86 = &ArchProfile::X86;
    let size = MsgSize::K1;
    let w = workload(size);

    println!(
        "One {} mixed-field record ({} fields), sparc-v8 -> x86:\n",
        size.label(),
        w.schema.fields().len()
    );
    println!(
        "{:<18} {:>12} {:>16} {:>16}",
        "wire format", "wire bytes", "encode (µs)", "decode (µs)"
    );
    println!("{}", "-".repeat(66));

    for fmt in [
        WireFormat::PbioDcg,
        WireFormat::PbioInterp,
        WireFormat::Mpi,
        WireFormat::Cdr,
        WireFormat::Xml,
    ] {
        let mut pb = prepare(fmt, &w.schema, &w.schema, sparc, x86, &w.value);
        let iters = 5_000;
        let enc = time_avg(
            || {
                (pb.encode)();
            },
            iters,
        )
        .as_secs_f64()
            * 1e6;
        let dec = time_avg(|| (pb.decode)(), iters).as_secs_f64() * 1e6;
        println!(
            "{:<18} {:>12} {:>16.2} {:>16.2}",
            fmt.label(),
            pb.wire.len(),
            enc,
            dec
        );
    }

    println!();
    println!("Things to notice (the paper's Figures 2-4 in miniature):");
    println!(" * PBIO's wire carries native padding + a 9-byte header, yet encode");
    println!("   cost is near zero — the bytes go out as they sit in memory.");
    println!(" * The packed formats (MPICH, CDR) have slightly smaller wires but");
    println!("   pay per-element copies on BOTH ends.");
    println!(" * XML's wire is several times larger and its text conversion");
    println!("   dominates everything else.");
}
