//! Online monitoring — the paper's motivating scenario (§1): a
//! visualization/monitoring component attaches to a running simulation's
//! output stream with **no a priori knowledge** of the message formats, and
//! uses PBIO's reflection (the format meta-information on the wire) to
//! discover fields at run time.
//!
//! ```text
//! cargo run -p pbio-examples --bin monitoring
//! ```

use pbio::{Reader, Writer};
use pbio_types::schema::{AtomType, FieldDecl, Schema, TypeDesc};
use pbio_types::value::{RecordValue, Value};
use pbio_types::ArchProfile;

/// The "simulation": a mechanical-engineering code on a big-endian MIPS box
/// emitting two different record types.
fn run_simulation(stream: &mut Vec<u8>) {
    let mut writer = Writer::new(&ArchProfile::MIPS_N32);

    let mesh_schema = Schema::new(
        "mesh_update",
        vec![
            FieldDecl::atom("timestep", AtomType::CInt),
            FieldDecl::atom("node_count", AtomType::CUInt),
            FieldDecl::new("displacements", TypeDesc::array(AtomType::CDouble, 6)),
        ],
    )
    .unwrap();
    let diag_schema = Schema::new(
        "diagnostics",
        vec![
            FieldDecl::atom("timestep", AtomType::CInt),
            FieldDecl::atom("residual", AtomType::CDouble),
            FieldDecl::atom("converged", AtomType::Bool),
            FieldDecl::new("solver", TypeDesc::String),
        ],
    )
    .unwrap();

    let mesh = writer.register(&mesh_schema).unwrap();
    let diag = writer.register(&diag_schema).unwrap();

    for step in 0..3 {
        let displacements: Vec<Value> = (0..6)
            .map(|i| Value::F64((step * 6 + i) as f64 * 0.01))
            .collect();
        writer
            .write_value(
                mesh,
                &RecordValue::new()
                    .with("timestep", step)
                    .with("node_count", 12_345u32)
                    .with("displacements", Value::Array(displacements)),
                stream,
            )
            .unwrap();
        writer
            .write_value(
                diag,
                &RecordValue::new()
                    .with("timestep", step)
                    .with("residual", 1.0 / (step + 1) as f64)
                    .with("converged", step == 2)
                    .with("solver", "conjugate-gradient"),
                stream,
            )
            .unwrap();
    }
}

fn main() {
    let mut stream = Vec::new();
    run_simulation(&mut stream);
    println!("simulation (mips-n32) emitted {} bytes\n", stream.len());

    // The monitor runs on x86-64 and declares NOTHING in advance.
    let mut monitor = Reader::new(&ArchProfile::X86_64);
    let mut record_no = 0;
    monitor
        .process(&stream, |view| {
            record_no += 1;
            let layout = view.layout().clone();
            println!(
                "record {record_no}: format {:?} from {:?} ({} fields):",
                layout.format_name(),
                layout.arch_name(),
                layout.fields().len()
            );
            // Reflection: walk the discovered fields and print generically.
            for field in layout.fields() {
                let value = view.get(&field.name);
                println!(
                    "    {:<14} {:<8} = {}",
                    field.name,
                    field.ty.describe(),
                    value.map_or("<unreadable>".into(), |v| v.to_string()),
                );
            }
        })
        .unwrap();

    println!("\nThe monitor never declared a schema: formats, field names and");
    println!("types all came from the wire meta-information (PBIO reflection).");
}
