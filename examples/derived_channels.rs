//! Derived event channels — the paper's future-work direction (§5), built
//! on PBIO: a simulation publishes telemetry once; heterogeneous
//! subscribers attach with their own schemas and **runtime-compiled
//! filters**, so uninteresting events are dropped at the source before any
//! conversion or transmission work is spent on them.
//!
//! ```text
//! cargo run -p pbio-examples --bin derived_channels
//! ```

use pbio_chan::{Channel, Predicate};
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::RecordValue;
use pbio_types::ArchProfile;

fn main() {
    // The source: a solver on a big-endian Sparc publishing per-step state.
    let schema = Schema::new(
        "solver_state",
        vec![
            FieldDecl::atom("step", AtomType::CInt),
            FieldDecl::atom("residual", AtomType::CDouble),
            FieldDecl::atom("max_temp", AtomType::CDouble),
            FieldDecl::atom("diverged", AtomType::Bool),
        ],
    )
    .unwrap();
    let mut chan = Channel::new(&schema, &ArchProfile::SPARC_V8).unwrap();

    // Subscriber 1: a dashboard on x86-64 that only wants alarming states.
    let alarm_filter = Predicate::gt("max_temp", 1000.0).or(Predicate::eq("diverged", true));
    chan.subscribe(&schema, &ArchProfile::X86_64, Some(alarm_filter), |view| {
        println!(
            "  [dashboard/x86-64] ALARM at step {}: max_temp={} diverged={}",
            view.get("step").unwrap(),
            view.get("max_temp").unwrap(),
            view.get("diverged").unwrap()
        );
    })
    .unwrap();

    // Subscriber 2: a convergence logger that only cares about `step` and
    // `residual` (subset schema) on every 100th step... expressed as a
    // residual threshold here since the filter language is field-based.
    let log_schema = Schema::new(
        "solver_state",
        vec![
            FieldDecl::atom("step", AtomType::CInt),
            FieldDecl::atom("residual", AtomType::CDouble),
        ],
    )
    .unwrap();
    chan.subscribe(
        &log_schema,
        &ArchProfile::MIPS_N32,
        Some(Predicate::lt("residual", 0.15)),
        |view| {
            println!(
                "  [logger/mips-n32] near convergence: step {} residual {}",
                view.get("step").unwrap(),
                view.get("residual").unwrap()
            );
        },
    )
    .unwrap();

    // Subscriber 3: an archiver on the same architecture as the source —
    // zero-copy delivery, no filter.
    chan.subscribe(&schema, &ArchProfile::SPARC_V8, None, |view| {
        assert!(view.is_zero_copy());
    })
    .unwrap();

    println!("publishing 8 solver steps to 3 subscribers...\n");
    for step in 0..8 {
        let state = RecordValue::new()
            .with("step", step)
            .with("residual", 0.8 / (step + 1) as f64)
            .with("max_temp", 900.0 + (step as f64) * 30.0)
            .with("diverged", step == 5);
        chan.publish_value(&state).unwrap();
    }

    let stats = chan.stats();
    println!(
        "\npublished {} events; {} deliveries; {} suppressed by compiled filters",
        stats.published, stats.delivered, stats.filtered_out
    );
    println!("(filters ran against the sender's native bytes — events the");
    println!(" dashboard/logger didn't want were never converted for them)");
}
