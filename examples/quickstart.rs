//! Quickstart: register a format, send a record in Natural Data
//! Representation, and read it on a machine with a *different* architecture
//! and a *differently declared* record — fields match by name, sizes and
//! offsets convert automatically.
//!
//! ```text
//! cargo run -p pbio-examples --bin quickstart
//! ```

use pbio::{Reader, Writer};
use pbio_types::schema::{AtomType, FieldDecl, Schema};
use pbio_types::value::{RecordValue, Value};
use pbio_types::ArchProfile;

fn main() {
    // --- Sender: a simulation running on a big-endian Sparc (ILP32). ---
    let sender_schema = Schema::new(
        "sample",
        vec![
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("timestep", AtomType::CLong), // 4 bytes here!
            FieldDecl::atom("pressure", AtomType::CDouble),
            FieldDecl::atom("tag", AtomType::Char),
        ],
    )
    .unwrap();

    let mut writer = Writer::new(&ArchProfile::SPARC_V8);
    let fmt = writer.register(&sender_schema).unwrap();

    let mut stream = Vec::new();
    for seq in 0..3 {
        let record = RecordValue::new()
            .with("seq", seq)
            .with("timestep", (seq * 100) as i64)
            .with("pressure", 101.325 + seq as f64)
            .with("tag", Value::Char(b'A' + seq as u8));
        writer.write_value(fmt, &record, &mut stream).unwrap();
    }
    println!(
        "sender (sparc-v8): wrote 3 records, {} bytes on the wire (format meta included once)",
        stream.len()
    );

    // --- Receiver: a tool on little-endian x86-64 (LP64: long is 8 bytes),
    //     declaring the fields in a different order. PBIO matches by name.
    let receiver_schema = Schema::new(
        "sample",
        vec![
            FieldDecl::atom("pressure", AtomType::CDouble),
            FieldDecl::atom("timestep", AtomType::CLong), // 8 bytes here
            FieldDecl::atom("seq", AtomType::CInt),
            FieldDecl::atom("tag", AtomType::Char),
        ],
    )
    .unwrap();

    let mut reader = Reader::new(&ArchProfile::X86_64);
    reader.expect(&receiver_schema).unwrap();

    println!("receiver (x86-64): conversion generated on first record, then applied per record:");
    reader
        .process(&stream, |view| {
            println!(
                "  seq={} timestep={} pressure={} tag={} (zero-copy: {})",
                view.get("seq").unwrap(),
                view.get("timestep").unwrap(),
                view.get("pressure").unwrap(),
                view.get("tag").unwrap(),
                view.is_zero_copy(),
            );
        })
        .unwrap();

    // The generated conversion routine is inspectable:
    if let Some(stats) = reader.dcg_stats(0) {
        println!(
            "receiver: DCG compiled a {}-instruction conversion routine in {:?}",
            stats.program_len, stats.elapsed
        );
    }
}
